//! Property battery for the duty-cycle MAC layer (`wsnem_wsn::RadioSpec`).
//!
//! Pins the contracts the README documents: the derived duty cycle is
//! monotonic in the listen window (and antitonic in the period), mean radio
//! power is monotonic in traffic and saturates at (never overshoots) the
//! full-on power, every preset and MAC variant survives serde round-trips
//! in both JSON and TOML, and the clamping at the `listen_s == period_s`
//! boundary stays consistent.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::stats::rng::{Rng64, StreamFactory};
use wsnem::wsn::radio::CHANNEL_SAMPLE_S;
use wsnem::wsn::{RadioModel, RadioSpec};

fn uniform<R: Rng64>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// A random valid radio model: positive powers, a listen window inside the
/// period, positive airtime.
fn random_model<R: Rng64>(rng: &mut R) -> RadioModel {
    let period_s = uniform(rng, 0.01, 2.0);
    RadioModel {
        sleep_mw: uniform(rng, 0.0, 1.0),
        listen_mw: uniform(rng, 5.0, 80.0),
        tx_mw: uniform(rng, 5.0, 80.0),
        period_s,
        listen_s: uniform(rng, 0.0, 1.0) * period_s,
        tx_airtime_s: uniform(rng, 0.0005, 0.05),
        rx_airtime_s: uniform(rng, 0.0005, 0.05),
    }
}

#[test]
fn duty_cycle_monotonic_in_listen_window_and_antitonic_in_period() {
    let factory = StreamFactory::new(0x0D10_CAFE);
    for i in 0..64 {
        let mut rng = factory.stream(i);
        let period_s = uniform(&mut rng, 0.01, 2.0);
        // Growing the listen window at a fixed period never lowers the duty
        // cycle...
        let mut last = -1.0;
        for k in 0..=10 {
            let spec = RadioSpec::Lpl {
                period_s,
                listen_s: period_s * (k as f64 / 10.0),
            };
            let duty = spec
                .lower()
                .unwrap_or_else(|e| panic!("case {i}/{k}: {e}"))
                .duty_cycle();
            assert!(duty >= last, "case {i}: duty fell from {last} to {duty}");
            last = duty;
        }
        assert!((last - 1.0).abs() < 1e-12, "full window is 100% duty");
        // ...and growing the period at a fixed listen window never raises it.
        let listen_s = uniform(&mut rng, 0.0005, 0.01);
        let mut last = f64::INFINITY;
        for k in 1..=10 {
            let duty = RadioSpec::Lpl {
                period_s: listen_s + 0.05 * k as f64,
                listen_s,
            }
            .lower()
            .unwrap()
            .duty_cycle();
            assert!(duty <= last, "case {i}: duty rose from {last} to {duty}");
            last = duty;
        }
    }
}

#[test]
fn mean_power_monotonic_in_traffic_and_saturating_at_full_on() {
    let factory = StreamFactory::new(0x0D10_BEEF);
    for i in 0..128 {
        let mut rng = factory.stream(i);
        let mut m = random_model(&mut rng);
        // The monotonicity contract holds when carrying a packet is at
        // least as expensive as what it displaces (sleep, then listen);
        // keep tx above listen for this half of the battery and check the
        // envelope separately below for arbitrary models.
        if m.tx_mw < m.listen_mw {
            std::mem::swap(&mut m.tx_mw, &mut m.listen_mw);
        }
        m.validate().unwrap();
        let mut last = -1.0;
        for k in 0..40 {
            // Geometric traffic grid from idle far past saturation.
            let rate = if k == 0 { 0.0 } else { 0.01 * 1.45f64.powi(k) };
            let p = m.mean_power_mw(rate, rate / 2.0);
            assert!(
                p >= last - 1e-9,
                "case {i}: power fell from {last} to {p} at rate {rate}"
            );
            assert!(
                p <= m.full_on_power_mw() + 1e-9,
                "case {i}: {p} overshoots full-on {}",
                m.full_on_power_mw()
            );
            last = p;
        }
        // Saturated all-tx traffic converges to exactly the tx power.
        assert!(
            (m.mean_power_mw(1e9, 0.0) - m.tx_mw).abs() < 1e-6,
            "case {i}"
        );
    }
}

#[test]
fn mean_power_stays_in_the_state_power_envelope_for_any_model() {
    // Without the tx >= listen ordering, monotonicity is not physical
    // (transmitting can be cheaper than listening) — but the power must
    // still always stay inside [min state power, max state power].
    let factory = StreamFactory::new(0x0D10_0123);
    for i in 0..128 {
        let mut rng = factory.stream(i);
        let m = random_model(&mut rng);
        m.validate().unwrap();
        let floor = m.sleep_mw.min(m.listen_mw).min(m.tx_mw);
        for rate in [0.0, 0.1, 1.0, 10.0, 1e3, 1e7] {
            let p = m.mean_power_mw(rate, rate);
            assert!(
                p >= floor - 1e-9 && p <= m.full_on_power_mw() + 1e-9,
                "case {i}: {p} outside [{floor}, {}] at {rate} pkt/s",
                m.full_on_power_mw()
            );
            let t = m.time_split(rate, rate);
            assert!(
                (t.tx + t.rx + t.listen + t.sleep - 1.0).abs() < 1e-9,
                "case {i}: split not a simplex: {t:?}"
            );
        }
    }
}

#[test]
fn every_preset_round_trips_through_serde() {
    for name in RadioSpec::preset_names() {
        let spec = RadioSpec::Preset((*name).to_owned());
        spec.validate().unwrap();

        let json = serde_json::to_string(&spec).unwrap();
        let back: RadioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec, "{name} JSON: {json}");

        // TOML has no bare top-level enum, so round-trip through the
        // lowered model (a plain struct) and a wrapping scenario exercises
        // the spec itself in `scenario_roundtrip.rs`.
        let model = spec.lower().unwrap();
        let toml_text = toml::to_string(&model).unwrap();
        let back: RadioModel = toml::from_str(&toml_text).unwrap();
        assert_eq!(back, model, "{name} TOML:\n{toml_text}");
    }
}

#[test]
fn random_mac_specs_round_trip_bit_exactly() {
    let factory = StreamFactory::new(0x0D10_5EED);
    for i in 0..64 {
        let mut rng = factory.stream(i);
        let period = uniform(&mut rng, 0.02, 1.0);
        let specs = [
            RadioSpec::Lpl {
                period_s: period,
                listen_s: uniform(&mut rng, 0.0, 1.0) * period,
            },
            RadioSpec::BMac {
                check_interval_s: period,
                preamble_s: period * uniform(&mut rng, 1.0, 2.0),
            },
            RadioSpec::XMac {
                check_interval_s: period,
                strobe_s: period * uniform(&mut rng, 0.01, 0.4),
                ack_s: period * uniform(&mut rng, 0.0, 0.4),
            },
            {
                let m = random_model(&mut rng);
                RadioSpec::Custom {
                    sleep_mw: m.sleep_mw,
                    listen_mw: m.listen_mw,
                    tx_mw: m.tx_mw,
                    period_s: m.period_s,
                    listen_s: m.listen_s,
                    tx_airtime_s: m.tx_airtime_s,
                    rx_airtime_s: m.rx_airtime_s,
                }
            },
        ];
        for spec in specs {
            spec.validate()
                .unwrap_or_else(|e| panic!("case {i} {spec:?}: {e}"));
            let json = serde_json::to_string(&spec).unwrap();
            let back: RadioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "case {i}: {json}");
            // Serialization is canonical: re-serializing reproduces the
            // same bytes (shortest-round-trip floats end to end).
            assert_eq!(serde_json::to_string(&back).unwrap(), json, "case {i}");
        }
    }
}

#[test]
fn bmac_interior_optimum_exists_in_the_period_sweep() {
    // The README's worked LPL-tuning example, as a property: with traffic
    // present, mean power over the check interval is U-shaped — both a very
    // short and a very long period lose to an interior optimum near
    // sqrt(sample * listen_mw / (rate * tx_mw)).
    let rate = 0.5;
    let power_at = |period: f64| {
        RadioSpec::BMac {
            check_interval_s: period,
            preamble_s: period,
        }
        .lower()
        .unwrap()
        .mean_power_mw(rate, 0.0)
    };
    let expected_opt = (CHANNEL_SAMPLE_S * 56.0 / (rate * 52.0)).sqrt();
    assert!((0.05..0.15).contains(&expected_opt), "{expected_opt}");
    let near_opt = power_at(expected_opt);
    assert!(
        near_opt < power_at(0.01),
        "short periods burn idle listening"
    );
    assert!(near_opt < power_at(1.0), "long periods burn preambles");
    // And the analytic optimum is close: within 20% of a fine grid search.
    let grid_best = (1..=200)
        .map(|k| power_at(0.005 * k as f64))
        .fold(f64::INFINITY, f64::min);
    assert!(near_opt <= grid_best * 1.2, "{near_opt} vs {grid_best}");
}
