//! Registry-driven cross-backend property battery.
//!
//! The paper's Table 4 claim, generalized: at *stable, small-`D`* operating
//! points, every registered backend must agree on the steady-state
//! occupancy within 2 percentage points of the ground truth — not just at
//! the paper's single Table 2 point, but across seeded random parameter
//! draws. The test iterates the [`wsnem::core::BackendRegistry`], so a
//! newly registered backend is automatically held to the same bar.
//!
//! The battery also pins the capability contract: a non-exponential
//! [`ServiceDist`] requested from an analytic backend must return
//! [`CoreError::Unsupported`] — wrong numbers are not an option — while the
//! capable backends (Petri net, DES) must agree with *each other* under the
//! general service law.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::backend::global;
use wsnem::core::{BackendId, CoreError, CpuModelParams, EvalOptions, ServiceDist};
use wsnem::stats::rng::{Rng64, Xoshiro256PlusPlus};

/// A seeded random *stable* parameter point in the regime where all four
/// backends are valid: ρ well below 1, strictly positive `T`/`D`, and `D`
/// small enough that the supplementary-variable approximation holds.
fn random_stable_params(rng: &mut Xoshiro256PlusPlus) -> CpuModelParams {
    let mu = 5.0 + 10.0 * rng.next_f64(); // 5..15 jobs/s
    let rho = 0.05 + 0.4 * rng.next_f64(); // utilization 5%..45%
    let lambda = rho * mu;
    let t = 0.1 + 1.4 * rng.next_f64(); // T in 0.1..1.5 s
    let d = 0.001 + 0.02 * rng.next_f64(); // D in 1..21 ms (small-D regime)
    CpuModelParams::paper_defaults()
        .with_lambda(lambda)
        .with_mu(mu)
        .with_power_down_threshold(t)
        .with_power_up_delay(d)
        .with_replications(6)
        .with_horizon(3000.0)
        .with_warmup(150.0)
        .with_seed(rng.next_u64())
}

#[test]
fn every_registered_backend_agrees_at_stable_points() {
    let registry = global();
    let reference = registry
        .capabilities()
        .iter()
        .find(|c| c.ground_truth)
        .map(|c| c.id)
        .expect("a ground-truth backend is registered");

    let mut rng = Xoshiro256PlusPlus::new(0x7AB1E4);
    for point in 0..4 {
        let params = random_stable_params(&mut rng);
        params.validate().unwrap();
        let truth = registry
            .solve(reference, &params, &EvalOptions::default())
            .unwrap();
        for id in registry.ids() {
            if id == reference {
                continue;
            }
            let eval = registry
                .solve(id, &params, &EvalOptions::default())
                .unwrap_or_else(|e| panic!("point {point}: {id}: {e} ({params:?})"));
            assert_eq!(eval.kind, id);
            assert!(
                eval.fractions.is_normalized(1e-6),
                "point {point}: {id}: {:?}",
                eval.fractions
            );
            let delta = eval.fractions.mean_abs_delta_pct(&truth.fractions);
            assert!(
                delta < 2.0,
                "point {point}: {id} vs {reference}: Δ = {delta:.3} pp at {params:?}"
            );
        }
    }
}

#[test]
fn capabilities_are_consistent_with_behaviour() {
    let registry = global();
    let params = CpuModelParams::paper_defaults()
        .with_replications(2)
        .with_horizon(300.0);
    let deterministic_service = EvalOptions::default().with_service(ServiceDist::Deterministic);
    for solver in registry.iter() {
        let caps = solver.capabilities();
        let result = solver.solve(&params, &deterministic_service);
        if caps.supports_service_dist {
            let eval = result.unwrap_or_else(|e| panic!("{}: {e}", caps.id));
            assert!(eval.fractions.is_normalized(1e-6));
        } else {
            // The satellite contract: Unsupported, never a silent
            // exponential fallback.
            match result {
                Err(CoreError::Unsupported { backend, what }) => {
                    assert_eq!(backend, caps.id);
                    assert!(what.contains("service"), "{what}");
                }
                other => panic!(
                    "{}: expected CoreError::Unsupported, got {other:?}",
                    caps.id
                ),
            }
        }
    }
}

#[test]
fn capable_backends_agree_under_non_exponential_service() {
    // M/G/1 sanity: with deterministic and Erlang-4 service, the Petri net
    // (general-`Dist` SR transition) and the DES must agree within the
    // same 2 pp bar — and utilization must stay ρ regardless of the law.
    let registry = global();
    let params = CpuModelParams::paper_defaults()
        .with_replications(6)
        .with_horizon(3000.0)
        .with_warmup(150.0);
    for service in [ServiceDist::Deterministic, ServiceDist::Erlang { k: 4 }] {
        let opts = EvalOptions::default().with_service(service);
        let pn = registry.solve(BackendId::PetriNet, &params, &opts).unwrap();
        let des = registry.solve(BackendId::Des, &params, &opts).unwrap();
        let delta = pn.fractions.mean_abs_delta_pct(&des.fractions);
        assert!(delta < 2.0, "{service:?}: Δ = {delta:.3} pp");
        for eval in [&pn, &des] {
            assert!(
                (eval.fractions.active - 0.1).abs() < 0.02,
                "{service:?}: active = {}",
                eval.fractions.active
            );
        }
    }
}

#[test]
fn general_exponential_service_cannot_split_the_backends() {
    // Regression: `General { Exponential { rate } }` with rate != mu must
    // NOT slip past the capability gate — the analytic backends would
    // silently solve at mu while the simulators honor the requested rate
    // (observed divergence ~24 pp before the fix). The simulators, which
    // do honor it, must agree with each other at the requested rate.
    use wsnem::stats::dist::Dist;
    let registry = global();
    let params = CpuModelParams::paper_defaults()
        .with_replications(6)
        .with_horizon(3000.0)
        .with_warmup(150.0);
    let slow_exp = EvalOptions::default().with_service(ServiceDist::General {
        dist: Dist::Exponential { rate: 3.0 },
    });
    for id in [BackendId::Markov, BackendId::ErlangPhase] {
        let err = registry.solve(id, &params, &slow_exp).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "{id}: {err}");
    }
    let pn = registry
        .solve(BackendId::PetriNet, &params, &slow_exp)
        .unwrap();
    let des = registry.solve(BackendId::Des, &params, &slow_exp).unwrap();
    let delta = pn.fractions.mean_abs_delta_pct(&des.fractions);
    assert!(delta < 2.0, "Δ = {delta:.3} pp");
    // Both honored rate 3: utilization is lambda/3 = 1/3, not lambda/mu.
    for eval in [&pn, &des] {
        assert!(
            (eval.fractions.active - 1.0 / 3.0).abs() < 0.03,
            "active = {} (exponential service must run at the requested \
             rate, not mu)",
            eval.fractions.active
        );
    }
}

#[test]
fn eval_option_overrides_change_stochastic_backends_only() {
    let registry = global();
    let params = CpuModelParams::paper_defaults()
        .with_replications(3)
        .with_horizon(500.0);
    for solver in registry.iter() {
        let caps = solver.capabilities();
        let a = solver
            .solve(&params, &EvalOptions::default().with_seed(11))
            .unwrap();
        let b = solver
            .solve(&params, &EvalOptions::default().with_seed(12))
            .unwrap();
        if caps.uses_seed {
            assert_ne!(
                a.fractions, b.fractions,
                "{}: stochastic backend must respond to the seed",
                caps.id
            );
        } else {
            assert_eq!(
                a.fractions, b.fractions,
                "{}: analytic backend must ignore the seed",
                caps.id
            );
        }
    }
}
