//! SoA topology core vs the per-node oracle.
//!
//! The million-node fast path analyzes networks in structure-of-arrays
//! form (`wsnem::wsn::SoaNetwork`) instead of building one
//! `NodeConfig`/`RoutedNodeAnalysis` struct per node. This battery holds
//! the two implementations to *equality* — not closeness — on seeded
//! random forests up to 10^5 nodes: identical hop depths, bit-identical
//! forwarded-rate sums (the SoA pass replays the oracle's deepest-first
//! stable order), identical subtree sizes and bottleneck ranking, and
//! aggregate accessors that match a from-scratch recomputation over the
//! oracle's per-node results.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::backend::global;
use wsnem::core::{BackendId, EvalOptions};
use wsnem::stats::rng::{Rng64, Xoshiro256PlusPlus};
use wsnem::wsn::{
    chain_parents, star_parents, tree_parents, Network, NextHop, NodeConfig, SoaNetwork, SINK,
};

/// A seeded random forest over `n` nodes: each node forwards either to the
/// sink or to a strictly lower index, so the routing is acyclic by
/// construction and typically has many sink-adjacent roots. Workloads are
/// heterogeneous (per-node event and rx rates) but small enough that even
/// the heaviest relay stays stable under Mg1.
fn random_forest(n: usize, seed: u64) -> Network {
    let mut rng = Xoshiro256PlusPlus::new(seed);
    let mut nodes = Vec::with_capacity(n);
    let mut next_hop = Vec::with_capacity(n);
    for i in 0..n {
        let mut node = NodeConfig::monitoring(format!("n{}", i + 1), 60.0);
        // Rates sum to well under mu even if one root drains everything.
        node.event_rate = (0.2 + 0.8 * rng.next_f64()) * 2.0 / n as f64;
        node.rx_rate = 0.1 * rng.next_f64() / n as f64;
        node.tx_per_event = 1.0;
        nodes.push(node);
        // ~1/8 of nodes are sink-adjacent; the rest attach uniformly below.
        next_hop.push(if i == 0 || rng.next_u64().is_multiple_of(8) {
            NextHop::Sink
        } else {
            NextHop::Node(rng.next_u64() as usize % i)
        });
    }
    let net = Network { nodes, next_hop };
    net.validate().unwrap();
    net
}

#[test]
fn parent_array_helpers_match_the_next_hop_constructors() {
    use wsnem::wsn::topology::{chain_next_hops, star_next_hops, tree_next_hops};
    let to_parents = |hops: Vec<NextHop>| -> Vec<u32> {
        hops.iter()
            .map(|h| match *h {
                NextHop::Sink => SINK,
                NextHop::Node(j) => j as u32,
            })
            .collect()
    };
    for n in [0usize, 1, 2, 7, 100] {
        assert_eq!(star_parents(n), to_parents(star_next_hops(n)));
        assert_eq!(chain_parents(n), to_parents(chain_next_hops(n)));
        for fanout in [1usize, 2, 3, 8] {
            assert_eq!(
                tree_parents(n, fanout),
                to_parents(tree_next_hops(n, fanout)),
                "n = {n}, fanout = {fanout}"
            );
        }
    }
}

#[test]
fn soa_routing_is_bit_identical_to_the_oracle_on_random_forests() {
    for (n, seed) in [(1usize, 1u64), (2, 2), (17, 3), (1000, 4), (100_000, 5)] {
        let net = random_forest(n, seed);
        let oracle = net.routing().unwrap();
        let soa = SoaNetwork::from_network(&net).unwrap();
        soa.validate().unwrap();
        let routing = soa.routing().unwrap();
        assert_eq!(routing.depths, oracle.depths, "n = {n}: depths");
        assert_eq!(
            routing.subtree_sizes,
            oracle
                .subtree_sizes
                .iter()
                .map(|&s| s as u32)
                .collect::<Vec<_>>(),
            "n = {n}: subtree sizes"
        );
        // Bit-identical, not approximately equal: the SoA pass promises the
        // oracle's exact summation order.
        for i in 0..n {
            assert!(
                routing.forwarded[i].to_bits() == oracle.forwarded[i].to_bits(),
                "n = {n}, node {i}: forwarded {} vs oracle {}",
                routing.forwarded[i],
                oracle.forwarded[i]
            );
        }
        assert_eq!(
            soa.sink_arrival_pkts_s().to_bits(),
            net.sink_arrival_pkts_s().to_bits(),
            "n = {n}: sink arrival"
        );
    }
}

#[test]
fn soa_analysis_matches_the_oracle_per_node_and_in_aggregate() {
    let n = 5000;
    let net = random_forest(n, 0x50A);
    let soa = SoaNetwork::from_network(&net).unwrap();
    let oracle = net.analyze_with_threads(BackendId::Mg1, Some(1)).unwrap();
    let analysis = soa
        .analyze_with(global(), BackendId::Mg1, &EvalOptions::default(), Some(1))
        .unwrap();
    assert_eq!(analysis.len(), n);

    // Per-node: power and lifetime must agree to the last bit — both paths
    // evaluate the identical closed-form recipe on identical inputs.
    for (i, routed) in oracle.per_node.iter().enumerate() {
        assert_eq!(soa.name(i), routed.analysis.name, "node {i}: name");
        assert_eq!(analysis.depths[i], routed.hop_depth, "node {i}: depth");
        assert_eq!(
            analysis.subtree_sizes[i] as usize, routed.subtree_size,
            "node {i}: subtree"
        );
        assert_eq!(
            analysis.forwarded[i].to_bits(),
            routed.forwarded_rx_pkts_s.to_bits(),
            "node {i}: forwarded"
        );
        assert_eq!(
            analysis.total_power_mw[i].to_bits(),
            routed.analysis.total_power_mw.to_bits(),
            "node {i}: total power"
        );
        assert_eq!(
            analysis.lifetime_days[i].to_bits(),
            routed.analysis.lifetime_days.to_bits(),
            "node {i}: lifetime"
        );
    }

    // Aggregates vs a from-scratch recomputation over the oracle results.
    let lifetimes: Vec<f64> = oracle
        .per_node
        .iter()
        .map(|r| r.analysis.lifetime_days)
        .collect();
    let min = lifetimes.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = lifetimes.iter().sum::<f64>() / n as f64;
    assert_eq!(analysis.first_death_days().to_bits(), min.to_bits());
    assert!((analysis.mean_lifetime_days() - mean).abs() <= 1e-12 * mean);
    let total: f64 = oracle
        .per_node
        .iter()
        .map(|r| r.analysis.total_power_mw)
        .sum();
    assert!((analysis.total_power_mw() - total).abs() <= 1e-9);
    assert_eq!(
        analysis.max_hop_depth(),
        oracle.per_node.iter().map(|r| r.hop_depth).max().unwrap()
    );
    assert_eq!(
        analysis.sink_arrival_pkts_s.to_bits(),
        oracle.sink_arrival_pkts_s.to_bits()
    );

    // Ranking: bottleneck, bottleneck relay and the worst-k cohort must
    // name the same nodes as the oracle's accessors / a full sort.
    let bottleneck = analysis.bottleneck().unwrap();
    assert_eq!(
        soa.name(bottleneck),
        oracle.bottleneck().unwrap().analysis.name
    );
    let relay = analysis.bottleneck_relay().unwrap();
    assert_eq!(
        soa.name(relay),
        oracle.bottleneck_relay().unwrap().analysis.name
    );
    let mut by_lifetime: Vec<usize> = (0..n).collect();
    by_lifetime.sort_by(|&a, &b| lifetimes[a].total_cmp(&lifetimes[b]).then(a.cmp(&b)));
    for k in [0usize, 1, 10, 137] {
        assert_eq!(
            analysis.worst_lifetime_cohort(k),
            by_lifetime[..k].to_vec(),
            "worst-{k} cohort"
        );
    }

    // Histogram and percentile accessors agree with naive recomputations.
    let near = analysis.near_unstable_count(0.5);
    let naive_near = analysis.rho.iter().filter(|&&r| r >= 0.5).count();
    assert_eq!(near, naive_near);
    let hist = analysis.lifetime_histogram(16);
    assert_eq!(hist.len(), 16);
    assert_eq!(hist.iter().map(|b| b.count).sum::<u64>(), n as u64);
    assert!(hist[0].lo <= min && min < hist[0].hi);
    let pcts = analysis.hop_depth_percentiles(&[50.0, 90.0, 100.0]);
    assert!(pcts.windows(2).all(|w| w[0].1 <= w[1].1), "{pcts:?}");
    assert_eq!(pcts.last().unwrap().1, analysis.max_hop_depth());
    let mut sorted_depths = analysis.depths.clone();
    sorted_depths.sort_unstable();
    for &(p, v) in &pcts {
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        assert_eq!(v, sorted_depths[rank - 1], "p{p}");
    }
}

#[test]
fn homogeneous_constructor_matches_the_oracle_on_regular_topologies() {
    // The template fast path builds SoA networks directly (no per-node
    // specs ever exist); those must equal the oracle's star/chain/tree
    // constructors node for node.
    // Period 100 s keeps even the chain's root relay stable: it forwards
    // 299 × 0.01 pkt/s, so its CPU runs at rho ≈ 0.3.
    let n = 300;
    let proto = NodeConfig::monitoring("n1", 100.0);
    let mk_nodes = || {
        (0..n)
            .map(|i| {
                let mut nd = proto.clone();
                nd.name = format!("n{}", i + 1);
                nd
            })
            .collect::<Vec<_>>()
    };
    let cases: [(Vec<u32>, Network); 3] = [
        (star_parents(n), Network::star(mk_nodes())),
        (chain_parents(n), Network::chain(mk_nodes())),
        (tree_parents(n, 3), Network::tree(mk_nodes(), 3)),
    ];
    for (parents, net) in cases {
        let soa = SoaNetwork::homogeneous(
            parents,
            "n",
            proto.event_rate,
            proto.tx_per_event,
            proto.rx_rate,
            proto.cpu,
            proto.cpu_profile.clone(),
            proto.radio,
            proto.battery,
        );
        let a = soa
            .analyze_with(global(), BackendId::Mg1, &EvalOptions::default(), Some(1))
            .unwrap();
        let b = net.analyze_with_threads(BackendId::Mg1, Some(1)).unwrap();
        for (i, routed) in b.per_node.iter().enumerate() {
            assert_eq!(soa.name(i), routed.analysis.name);
            assert_eq!(a.depths[i], routed.hop_depth);
            assert_eq!(
                a.total_power_mw[i].to_bits(),
                routed.analysis.total_power_mw.to_bits()
            );
            assert_eq!(
                a.lifetime_days[i].to_bits(),
                routed.analysis.lifetime_days.to_bits()
            );
        }
    }
}
