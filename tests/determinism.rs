//! Reproducibility contract: identical results for identical seeds,
//! regardless of thread count, across every simulation layer.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::experiments::ThresholdSweep;
use wsnem::core::{CpuModel, CpuModelParams, DesCpuModel, PetriCpuModel};
use wsnem::des::cpu::{CpuDes, CpuSimParams};
use wsnem::des::replication::run_replications;
use wsnem::des::workload::Workload;

fn params() -> CpuModelParams {
    CpuModelParams::paper_defaults()
        .with_replications(6)
        .with_horizon(400.0)
}

#[test]
fn des_layer_thread_invariant() {
    let sim = CpuDes::new(
        CpuSimParams::exponential_service(10.0, 0.5, 0.001),
        Workload::open_poisson(1.0),
    )
    .unwrap();
    let a = run_replications(&sim, 9, 7, Some(1));
    let b = run_replications(&sim, 9, 7, Some(3));
    let c = run_replications(&sim, 9, 7, Some(9));
    assert_eq!(a.reports, b.reports);
    assert_eq!(b.reports, c.reports);
}

#[test]
fn model_layer_thread_invariant() {
    for threads in [Some(1), Some(2), None] {
        let pn = PetriCpuModel::new(params())
            .with_threads(threads)
            .evaluate()
            .unwrap();
        let des = DesCpuModel::new(params())
            .with_threads(threads)
            .evaluate()
            .unwrap();
        let pn1 = PetriCpuModel::new(params())
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        let des1 = DesCpuModel::new(params())
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        assert_eq!(pn.fractions, pn1.fractions, "threads = {threads:?}");
        assert_eq!(des.fractions, des1.fractions, "threads = {threads:?}");
    }
}

#[test]
fn sweep_layer_reproducible() {
    let sweep = ThresholdSweep {
        params: params().with_replications(3).with_horizon(200.0),
        t_values: vec![0.1, 0.6],
    };
    let a = sweep.run().unwrap();
    let b = sweep.run().unwrap();
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.petri.fractions, y.petri.fractions);
        assert_eq!(x.des.fractions, y.des.fractions);
        assert_eq!(x.markov.fractions, y.markov.fractions);
    }
}

#[test]
fn different_seeds_differ() {
    let a = DesCpuModel::new(params().with_seed(1)).evaluate().unwrap();
    let b = DesCpuModel::new(params().with_seed(2)).evaluate().unwrap();
    assert_ne!(a.fractions, b.fractions);
}
