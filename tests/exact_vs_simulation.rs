//! Exact-solution cross-checks: closed forms ↔ CTMC solvers ↔ token game ↔
//! DES, spanning four crates.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::markov::{mm1, mm1k, PhaseCpuChain, SteadyStateMethod};
use wsnem::petri::analysis::{tangible_chain, ReachOptions};
use wsnem::petri::models::{mm1_net, mm1k_net, producer_consumer_net};
use wsnem::petri::{simulate, SimConfig};
use wsnem::stats::rng::Xoshiro256PlusPlus;

/// M/M/1/K: closed form == net-CTMC == net-simulation.
#[test]
fn mm1k_three_ways() {
    let (lam, mu, k) = (2.0, 3.0, 6u32);
    let closed = mm1k(lam, mu, k).unwrap();
    let (net, q) = mm1k_net(lam, mu, k).unwrap();

    // Exact via vanishing elimination.
    let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
    let pi = chain.steady_state().unwrap();
    let l_exact = chain.expected_tokens(&pi, q);
    assert!((l_exact - closed.mean_jobs()).abs() < 1e-9);

    // Simulated.
    let cfg = SimConfig {
        horizon: 50_000.0,
        warmup: 1000.0,
        ..SimConfig::default()
    };
    let mut rng = Xoshiro256PlusPlus::new(11);
    let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
    assert!(
        (out.place_means[q.index()] - closed.mean_jobs()).abs() < 0.05,
        "sim {} vs exact {}",
        out.place_means[q.index()],
        closed.mean_jobs()
    );
}

/// Unbounded M/M/1 net simulation matches the closed form.
#[test]
fn mm1_simulation_matches_closed_form() {
    let closed = mm1(1.0, 2.5).unwrap();
    let (net, q) = mm1_net(1.0, 2.5).unwrap();
    let cfg = SimConfig {
        horizon: 80_000.0,
        warmup: 2000.0,
        ..SimConfig::default()
    };
    let mut rng = Xoshiro256PlusPlus::new(5);
    let out = simulate(&net, &cfg, &[], &mut rng).unwrap();
    assert!(
        (out.place_means[q.index()] - closed.mean_jobs()).abs() < 0.05,
        "L sim {} vs {}",
        out.place_means[q.index()],
        closed.mean_jobs()
    );
    // Arrival throughput equals λ.
    let arrive = net.find_transition("arrive").unwrap();
    assert!((out.throughput(arrive.index()) - 1.0).abs() < 0.02);
}

/// Producer–consumer: the GSPN bridge and birth–death closed form agree.
#[test]
fn producer_consumer_is_a_birth_death_chain() {
    let (net, buffer, _) = producer_consumer_net(4, 1.5, 2.0).unwrap();
    let chain = tangible_chain(&net, ReachOptions::default()).unwrap();
    let pi = chain.steady_state().unwrap();
    let closed = mm1k(1.5, 2.0, 4).unwrap();
    let l = chain.expected_tokens(&pi, buffer);
    assert!((l - closed.mean_jobs()).abs() < 1e-9);
}

/// The Erlang-phase CPU chain converges to the DES truth as phases grow —
/// and with enough phases it beats the paper's supplementary-variable
/// approximation at a moderately large D.
#[test]
fn phase_chain_converges_to_des() {
    use wsnem::core::{CpuModel, CpuModelParams, DesCpuModel, MarkovCpuModel};
    let params = CpuModelParams::paper_defaults()
        .with_power_up_delay(1.0)
        .with_replications(8)
        .with_horizon(6000.0)
        .with_warmup(300.0);
    let des = DesCpuModel::new(params).evaluate().unwrap();
    let sv = MarkovCpuModel::new(params).evaluate().unwrap();
    let sv_err = des.fractions.mean_abs_delta_pct(&sv.fractions);

    let mut last_err = f64::INFINITY;
    for k in [1u32, 4, 16] {
        let chain = PhaseCpuChain::new(1.0, 10.0, 0.5, 1.0, k, k, 0).unwrap();
        let err = des
            .fractions
            .mean_abs_delta_pct(&chain.fractions().unwrap());
        assert!(
            err < last_err + 0.3,
            "k={k}: error {err} should not regress from {last_err}"
        );
        last_err = err;
    }
    assert!(
        last_err < sv_err,
        "16 phases ({last_err} pp) must beat the supplementary-variable \
         approximation ({sv_err} pp) at D = 1 s"
    );
}

/// The CTMC solvers agree with each other on the phase chain.
#[test]
fn solvers_agree_on_phase_chain() {
    let chain = PhaseCpuChain::new(1.0, 10.0, 0.5, 0.3, 4, 4, 0).unwrap();
    let ctmc = chain.build().unwrap();
    let dense = ctmc.steady_state(SteadyStateMethod::Dense).unwrap();
    let gs = ctmc
        .steady_state(SteadyStateMethod::GaussSeidel {
            max_iter: 200_000,
            tol: 1e-13,
        })
        .unwrap();
    for (a, b) in dense.iter().zip(&gs) {
        assert!((a - b).abs() < 1e-7);
    }
}
