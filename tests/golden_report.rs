//! Golden-file tests pinning the aggregate report format.
//!
//! Large-network (template or >1000-node) scenarios report in aggregate
//! form — no per-node rows, a histogram/percentile/cohort digest instead.
//! `tests/golden/report_aggregate_v1.json` pins the serialized shape and
//! `tests/golden/report_aggregate_summary.txt` pins the rendered summary,
//! so downstream consumers of `wsnem run --format json` can rely on the
//! field set. The fixture is fully deterministic: the Mg1 backend is
//! closed-form, and the wall-clock fields are normalized to zero before
//! comparison. Regenerate intentionally with `WSNEM_BLESS=1 cargo test -p
//! wsnem --test golden_report`.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_scenario::{
    runner, BackendId, NetworkSpec, PhaseSeconds, Scenario, ScenarioReport, TemplateSpec,
    TopologySpec,
};

const GOLDEN_JSON_PATH: &str = "tests/golden/report_aggregate_v1.json";
const GOLDEN_SUMMARY_PATH: &str = "tests/golden/report_aggregate_summary.txt";

/// A 50-node template tree on the analytic backend: big enough to exercise
/// depth percentiles, the histogram and the worst-10 cohort, small enough
/// to keep the fixture readable.
fn pinned_scenario() -> Scenario {
    let mut s = Scenario::paper_template("golden-aggregate");
    s.description = "aggregate report format fixture".into();
    s.backends = vec![BackendId::Mg1];
    s.network = Some(NetworkSpec {
        nodes: Vec::new(),
        topology: Some(TopologySpec::Tree { fanout: 3 }),
        radio: None,
        template: Some(TemplateSpec {
            count: 50,
            prefix: "n".into(),
            event_rate: 0.01,
            tx_per_event: 1.0,
            rx_rate: 0.05,
        }),
    });
    s
}

/// Run the pinned scenario and zero every wall-clock field — the only
/// nondeterministic bytes in an analytic report.
fn pinned_report() -> ScenarioReport {
    let mut report = runner::run_scenario(&pinned_scenario()).unwrap();
    report.phase_seconds = PhaseSeconds::default();
    report.elapsed_seconds = 0.0;
    for backend in &mut report.backends {
        backend.eval_seconds = 0.0;
    }
    report
}

#[test]
fn aggregate_report_json_matches_golden() {
    let report = pinned_report();
    assert!(
        report.network.is_none(),
        "template scenarios never report per node"
    );
    let aggregate = report.network_aggregate.as_ref().unwrap();
    assert_eq!(aggregate.node_count, 50);
    let serialized = serde_json::to_string_pretty(&report).unwrap() + "\n";

    if std::env::var_os("WSNEM_BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_JSON_PATH, &serialized).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_JSON_PATH)
        .expect("golden file missing — run with WSNEM_BLESS=1 to create it");
    assert_eq!(
        serialized, golden,
        "aggregate report format drifted from the golden file; \
         see the module docs for the intended workflow"
    );
}

#[test]
fn aggregate_report_round_trips_through_json() {
    let golden = std::fs::read_to_string(GOLDEN_JSON_PATH).expect("golden file present");
    let loaded: ScenarioReport = serde_json::from_str(&golden).unwrap();
    assert_eq!(loaded, pinned_report());
    // The aggregate block carries the digest the summary renders from.
    let aggregate = loaded.network_aggregate.clone().unwrap();
    assert_eq!(aggregate.backend, BackendId::Mg1);
    assert_eq!(aggregate.topology, "tree");
    assert_eq!(aggregate.hop_depth_percentiles.len(), 4);
    assert_eq!(
        aggregate
            .lifetime_histogram
            .iter()
            .map(|b| b.count)
            .sum::<u64>(),
        50
    );
    assert_eq!(aggregate.worst_lifetime_cohort.len(), 10);
    // Aggregate reports contribute no per-node CSV rows.
    assert_eq!(loaded.csv_rows().len(), 1);
}

#[test]
fn aggregate_summary_matches_golden() {
    let summary = pinned_report().summary();

    if std::env::var_os("WSNEM_BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_SUMMARY_PATH, &summary).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_SUMMARY_PATH)
        .expect("golden file missing — run with WSNEM_BLESS=1 to create it");
    assert_eq!(
        summary, golden,
        "rendered aggregate summary drifted from the golden file"
    );
    for marker in [
        "(aggregate)",
        "hop depth: p50",
        "lifetime histogram",
        "worst 10 node(s)",
    ] {
        assert!(golden.contains(marker), "summary golden lost `{marker}`");
    }
}
