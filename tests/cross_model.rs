//! Cross-crate integration: the paper's claims, end-to-end through the
//! facade crate.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::experiments::{table4, ThresholdSweep};
use wsnem::core::{
    BackendId, CpuModel, CpuModelParams, DesCpuModel, MarkovCpuModel, PetriCpuModel,
};
use wsnem::energy::PowerProfile;

fn budget_params() -> CpuModelParams {
    CpuModelParams::paper_defaults()
        .with_replications(8)
        .with_horizon(3000.0)
        .with_warmup(150.0)
}

/// Paper Fig. 4: all three models agree closely when the power-up delay is
/// negligible.
#[test]
fn three_models_agree_at_small_powerup_delay() {
    let params = budget_params();
    let markov = MarkovCpuModel::new(params).evaluate().unwrap();
    let petri = PetriCpuModel::new(params).evaluate().unwrap();
    let des = DesCpuModel::new(params).evaluate().unwrap();
    assert!(des.fractions.mean_abs_delta_pct(&markov.fractions) < 1.0);
    assert!(des.fractions.mean_abs_delta_pct(&petri.fractions) < 1.0);
    assert!(petri.fractions.mean_abs_delta_pct(&markov.fractions) < 1.0);
}

/// Paper Tables 4/5 headline: at D = 10 s the Petri net stays faithful to
/// simulation while the supplementary-variable Markov model does not.
#[test]
fn petri_net_beats_markov_at_large_powerup_delay() {
    let params = budget_params().with_power_up_delay(10.0);
    let markov = MarkovCpuModel::new(params).evaluate().unwrap();
    let petri = PetriCpuModel::new(params).evaluate().unwrap();
    let des = DesCpuModel::new(params).evaluate().unwrap();
    let markov_err = des.fractions.mean_abs_delta_pct(&markov.fractions);
    let petri_err = des.fractions.mean_abs_delta_pct(&petri.fractions);
    assert!(
        markov_err > 5.0 * petri_err,
        "markov {markov_err} pp vs petri {petri_err} pp"
    );
    // The specific failure: utilization must stay near ρ = 0.1 in reality.
    assert!((des.fractions.active - 0.1).abs() < 0.02);
    assert!((petri.fractions.active - 0.1).abs() < 0.02);
    assert!(markov.fractions.active > 0.2, "the documented overestimate");
}

/// Paper §6 "interesting point": at the smallest delay, Markov is at least
/// as close to simulation as the Petri net (both errors are tiny).
#[test]
fn markov_competitive_at_smallest_delay() {
    let rows = table4(budget_params(), &[0.001]).unwrap();
    let row = &rows[0];
    assert!(row.sim_markov < 1.0, "{}", row.sim_markov);
    assert!(row.sim_pn < 1.0, "{}", row.sim_pn);
}

/// Fig. 5 energy ordering: more idle time (larger T) costs more energy on
/// the PXA271, for every model, and all three models agree within a couple
/// of joules at D = 1 ms over 1000 s.
#[test]
fn energy_curves_consistent() {
    let sweep = ThresholdSweep {
        params: budget_params().with_horizon(1000.0).with_warmup(50.0),
        t_values: vec![0.0, 0.5, 1.0],
    }
    .run()
    .unwrap();
    let profile = PowerProfile::pxa271();
    for kind in [BackendId::Des, BackendId::Markov, BackendId::PetriNet] {
        let e = sweep.energy_series(kind, &profile);
        assert!(e[0] < e[1] && e[1] < e[2], "{kind}: {e:?}");
    }
    let sim = sweep.energy_series(BackendId::Des, &profile);
    let mar = sweep.energy_series(BackendId::Markov, &profile);
    let pn = sweep.energy_series(BackendId::PetriNet, &profile);
    for i in 0..sim.len() {
        assert!((sim[i] - mar[i]).abs() < 2.0);
        assert!((sim[i] - pn[i]).abs() < 2.0);
    }
}

/// §6 cost claim: the Markov evaluation is orders of magnitude cheaper than
/// either simulation.
#[test]
fn markov_evaluation_is_orders_of_magnitude_faster() {
    let params = budget_params();
    let markov = MarkovCpuModel::new(params).evaluate().unwrap();
    let petri = PetriCpuModel::new(params).evaluate().unwrap();
    assert!(
        markov.eval_seconds * 100.0 < petri.eval_seconds,
        "markov {} s vs petri {} s",
        markov.eval_seconds,
        petri.eval_seconds
    );
}

/// Little's law holds in the DES and ties the three models' queue views
/// together at small D: L ≈ λW ≈ the Markov L(1).
#[test]
fn queueing_quantities_consistent() {
    let params = budget_params();
    let markov = MarkovCpuModel::new(params).evaluate().unwrap();
    let des = DesCpuModel::new(params).evaluate().unwrap();
    let petri = PetriCpuModel::new(params).evaluate().unwrap();
    let l_markov = markov.mean_jobs.unwrap();
    let l_des = des.mean_jobs.unwrap();
    let l_petri = petri.mean_jobs.unwrap();
    assert!((l_markov - l_des).abs() < 0.05, "{l_markov} vs {l_des}");
    assert!((l_markov - l_petri).abs() < 0.05, "{l_markov} vs {l_petri}");
}
