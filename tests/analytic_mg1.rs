//! Pollaczek–Khinchine exactness battery for the M/G/1 analytic backend.
//!
//! The closed form (`crates/core/src/models/mg1_model.rs`) is what makes
//! the million-node analytic fast path possible, so this battery pins it
//! from two directions: *internally* against the textbook P–K identities
//! (M/D/1 waits exactly half of M/M/1, Erlang-k interpolating between them
//! by `(1 + 1/k)/2`, a general law with cv² = 1 collapsing onto M/M/1),
//! and *externally* against the DES ground truth within the paper's 2 pp
//! occupancy bar — at seeded random stable points, under all four service
//! laws the schema can name.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::backend::global;
use wsnem::core::{BackendId, CpuModelParams, EvalOptions, ServiceDist};
use wsnem::stats::dist::{Dist, Sample};
use wsnem::stats::rng::{Rng64, Xoshiro256PlusPlus};

/// Mean *wait* (latency minus one mean service time) of the M/G/1 backend
/// under `service`, with the power-management terms zeroed so the result
/// is the pure P–K formula.
fn pk_wait(params: CpuModelParams, service: ServiceDist) -> f64 {
    let eval = global()
        .solve(
            BackendId::Mg1,
            &params,
            &EvalOptions::default().with_service(service),
        )
        .unwrap();
    let mean_s = service.to_dist(params.mu).mean();
    eval.mean_latency.unwrap() - mean_s
}

/// A power-management-free point (`T = D = 0`) at the given utilization.
fn pk_point(rho: f64) -> CpuModelParams {
    let mu = 10.0;
    CpuModelParams::paper_defaults()
        .with_lambda(rho * mu)
        .with_mu(mu)
        .with_power_down_threshold(0.0)
        .with_power_up_delay(0.0)
}

#[test]
fn md1_wait_is_exactly_half_of_mm1_at_equal_rho() {
    // cv² = 0 for deterministic service, so P–K gives exactly half the
    // exponential (cv² = 1) wait — at *every* utilization, not just one.
    for rho in [0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        let p = pk_point(rho);
        let mm1 = pk_wait(p, ServiceDist::Exponential);
        let md1 = pk_wait(p, ServiceDist::Deterministic);
        let textbook_mm1 = rho / (p.mu * (1.0 - rho));
        assert!(
            (mm1 - textbook_mm1).abs() < 1e-12,
            "rho {rho}: M/M/1 wait {mm1} vs textbook {textbook_mm1}"
        );
        assert!(
            (md1 - 0.5 * mm1).abs() < 1e-12,
            "rho {rho}: M/D/1 wait {md1} vs half-M/M/1 {}",
            0.5 * mm1
        );
    }
}

#[test]
fn erlang_k_wait_interpolates_between_mm1_and_md1() {
    // Erlang-k service has cv² = 1/k, so the P–K wait is
    // (1 + 1/k)/2 · E[W]_{M/M/1}: equal to M/M/1 at k = 1, strictly
    // decreasing in k, and converging on the M/D/1 half-wait as k → ∞.
    let p = pk_point(0.6);
    let mm1 = pk_wait(p, ServiceDist::Exponential);
    let md1 = pk_wait(p, ServiceDist::Deterministic);
    let mut prev = f64::INFINITY;
    for k in [1u32, 2, 4, 8, 32, 256] {
        let w = pk_wait(p, ServiceDist::Erlang { k });
        let predicted = 0.5 * (1.0 + 1.0 / f64::from(k)) * mm1;
        assert!(
            (w - predicted).abs() < 1e-12,
            "Erlang-{k}: wait {w} vs (1 + 1/k)/2 · M/M/1 = {predicted}"
        );
        assert!(w < prev, "Erlang-{k}: wait must fall as k grows");
        prev = w;
    }
    let erl1 = pk_wait(p, ServiceDist::Erlang { k: 1 });
    assert!((erl1 - mm1).abs() < 1e-12, "Erlang-1 is exponential");
    let erl256 = pk_wait(p, ServiceDist::Erlang { k: 256 });
    assert!(
        (erl256 - md1).abs() < 0.01 * md1,
        "Erlang-256 wait {erl256} must sit within 1% of the M/D/1 limit {md1}"
    );
}

#[test]
fn general_service_with_unit_cv2_collapses_onto_mm1() {
    // A General law that *is* an exponential at rate μ must be numerically
    // indistinguishable from the built-in exponential — fractions, wait,
    // and mean jobs-in-system — across seeded utilizations, power
    // management included.
    let mut rng = Xoshiro256PlusPlus::new(0x9161);
    for _ in 0..8 {
        let mu = 5.0 + 10.0 * rng.next_f64();
        let rho = 0.05 + 0.9 * rng.next_f64();
        let p = CpuModelParams::paper_defaults()
            .with_lambda(rho * mu)
            .with_mu(mu)
            .with_power_down_threshold(0.05 + rng.next_f64())
            .with_power_up_delay(0.02 * rng.next_f64());
        let opts = |s: ServiceDist| EvalOptions::default().with_service(s);
        let mm1 = global()
            .solve(BackendId::Mg1, &p, &opts(ServiceDist::Exponential))
            .unwrap();
        let gen = global()
            .solve(
                BackendId::Mg1,
                &p,
                &opts(ServiceDist::General {
                    dist: Dist::Exponential { rate: mu },
                }),
            )
            .unwrap();
        assert!(mm1.fractions.mean_abs_delta_pct(&gen.fractions) < 1e-12);
        let (a, b) = (mm1.mean_latency.unwrap(), gen.mean_latency.unwrap());
        assert!((a - b).abs() < 1e-12, "latency {a} vs {b}");
        let (a, b) = (mm1.mean_jobs.unwrap(), gen.mean_jobs.unwrap());
        assert!((a - b).abs() < 1e-12, "mean jobs {a} vs {b}");
    }
}

/// A seeded random stable point in the small-`D` regime where the DES and
/// the closed form both hold steady-state meaning.
fn random_stable_params(rng: &mut Xoshiro256PlusPlus) -> CpuModelParams {
    let mu = 5.0 + 10.0 * rng.next_f64(); // 5..15 jobs/s
    let rho = 0.05 + 0.4 * rng.next_f64(); // utilization 5%..45%
    CpuModelParams::paper_defaults()
        .with_lambda(rho * mu)
        .with_mu(mu)
        .with_power_down_threshold(0.1 + 1.4 * rng.next_f64())
        .with_power_up_delay(0.001 + 0.02 * rng.next_f64())
        .with_replications(6)
        .with_horizon(3000.0)
        .with_warmup(150.0)
        .with_seed(rng.next_u64())
}

#[test]
fn mg1_stays_within_2pp_of_des_under_every_service_law() {
    // The external bar: at seeded stable points the closed form must agree
    // with the simulated ground truth within 2 pp mean occupancy delta
    // under *all four* service laws the scenario schema can express. This
    // is the per-node guarantee the million-node aggregate report rests on.
    let registry = global();
    let mut rng = Xoshiro256PlusPlus::new(0xC0FFEE);
    let laws = |mu: f64| {
        [
            ServiceDist::Exponential,
            ServiceDist::Deterministic,
            ServiceDist::Erlang { k: 4 },
            ServiceDist::General {
                dist: Dist::Exponential { rate: mu },
            },
        ]
    };
    for point in 0..3 {
        let params = random_stable_params(&mut rng);
        for service in laws(params.mu) {
            let opts = EvalOptions::default().with_service(service);
            let exact = registry.solve(BackendId::Mg1, &params, &opts).unwrap();
            let des = registry.solve(BackendId::Des, &params, &opts).unwrap();
            assert!(exact.fractions.is_normalized(1e-9));
            assert!(
                (exact.fractions.active - params.rho()).abs() < 1e-9
                    || matches!(service, ServiceDist::General { .. }),
                "point {point} {service:?}: active must equal rho exactly"
            );
            let delta = exact.fractions.mean_abs_delta_pct(&des.fractions);
            assert!(
                delta < 2.0,
                "point {point} {service:?}: Mg1 vs Des Δ = {delta:.3} pp at {params:?}"
            );
        }
    }
}
