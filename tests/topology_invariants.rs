//! Conservation and structural invariants of multi-hop routed topologies,
//! checked over randomly generated trees and meshes (seeded hand-rolled
//! property loops — the build is offline, without proptest; every case is
//! reproducible from its stream index).

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::stats::rng::{Rng64, StreamFactory};
use wsnem::wsn::{BackendId, Network, NextHop, NodeConfig};

fn uniform<R: Rng64>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn arb_nodes<R: Rng64>(rng: &mut R, n: usize) -> Vec<NodeConfig> {
    (0..n)
        .map(|i| {
            let mut node = NodeConfig::monitoring(format!("n{i}"), 1.0);
            node.event_rate = uniform(rng, 0.01, 0.4);
            node.tx_per_event = uniform(rng, 0.0, 3.0);
            node.rx_rate = uniform(rng, 0.0, 0.5);
            node
        })
        .collect()
}

/// A random sink-reaching routing: node `i` forwards to a uniformly chosen
/// lower index, or (for index 0 and with some probability elsewhere) to the
/// sink. Forward edges only point downward, so the result is acyclic by
/// construction — an arbitrary forest, i.e. a mesh with static routes.
fn arb_forest<R: Rng64>(rng: &mut R, n: usize) -> Vec<NextHop> {
    (0..n)
        .map(|i| {
            if i == 0 || rng.next_bool(0.2) {
                NextHop::Sink
            } else {
                NextHop::Node(rng.next_bounded(i as u64) as usize)
            }
        })
        .collect()
}

fn cases(stream: u64, n_cases: u64) -> impl Iterator<Item = (u64, Network)> {
    let factory = StreamFactory::new(0x7090_1097 ^ stream);
    (0..n_cases).map(move |i| {
        let mut rng = factory.stream(i);
        let n = 2 + rng.next_bounded(18) as usize;
        let nodes = arb_nodes(&mut rng, n);
        let next_hop = arb_forest(&mut rng, n);
        (i, Network { nodes, next_hop })
    })
}

/// Conservation of traffic: the packet rate entering the sink equals the
/// sum of every node's own transmit rate — nothing is created, dropped or
/// double-counted en route. Checked by explicitly accumulating each
/// sink-adjacent node's output.
#[test]
fn sink_inflow_equals_sum_of_source_rates() {
    for (i, net) in cases(1, 64) {
        net.validate().unwrap_or_else(|e| panic!("case {i}: {e}"));
        let forwarded = net.forwarded_rates().unwrap();
        let into_sink: f64 = net
            .next_hop
            .iter()
            .enumerate()
            .filter(|(_, hop)| matches!(hop, NextHop::Sink))
            .map(|(j, _)| net.nodes[j].own_tx_rate() + forwarded[j])
            .sum();
        let sources: f64 = net.nodes.iter().map(NodeConfig::own_tx_rate).sum();
        assert!(
            (into_sink - sources).abs() <= 1e-9 * sources.max(1.0),
            "case {i}: sink inflow {into_sink} != total source rate {sources}"
        );
        assert!((net.sink_arrival_pkts_s() - sources).abs() <= 1e-9 * sources.max(1.0));
    }
}

/// No node's forwarded load is negative or exceeds the network-wide total
/// source rate, and leaves (nodes nobody routes through) forward nothing.
#[test]
fn forwarded_loads_are_bounded() {
    for (i, net) in cases(2, 64) {
        let forwarded = net.forwarded_rates().unwrap();
        let total: f64 = net.nodes.iter().map(NodeConfig::own_tx_rate).sum();
        let mut has_parent = vec![false; net.nodes.len()];
        for hop in &net.next_hop {
            if let NextHop::Node(j) = *hop {
                has_parent[j] = true;
            }
        }
        for (j, &f) in forwarded.iter().enumerate() {
            assert!(f >= 0.0, "case {i} node {j}: negative forwarded load {f}");
            assert!(
                f <= total + 1e-9 * total.max(1.0),
                "case {i} node {j}: forwarded {f} exceeds network total {total}"
            );
            if !has_parent[j] {
                assert_eq!(f, 0.0, "case {i} node {j}: leaf with forwarded load");
            }
        }
    }
}

/// A node's forwarded input is exactly the sum of its children's outputs,
/// and subtree sizes/depths are structurally consistent.
#[test]
fn per_node_flow_balance_and_structure() {
    for (i, net) in cases(3, 64) {
        let forwarded = net.forwarded_rates().unwrap();
        let depths = net.hop_depths().unwrap();
        let sizes = net.subtree_sizes().unwrap();
        let n = net.nodes.len();
        for parent in 0..n {
            let children: Vec<usize> = (0..n)
                .filter(|&c| net.next_hop[c] == NextHop::Node(parent))
                .collect();
            let child_out: f64 = children
                .iter()
                .map(|&c| net.nodes[c].own_tx_rate() + forwarded[c])
                .sum();
            assert!(
                (forwarded[parent] - child_out).abs() <= 1e-9 * child_out.max(1.0),
                "case {i} node {parent}: forwarded {} != children output {child_out}",
                forwarded[parent]
            );
            let child_sizes: usize = children.iter().map(|&c| sizes[c]).sum();
            assert_eq!(sizes[parent], 1 + child_sizes, "case {i} node {parent}");
            for &c in &children {
                assert_eq!(depths[c], depths[parent] + 1, "case {i} child {c}");
            }
        }
        for (j, &d) in depths.iter().enumerate() {
            assert!(d >= 1 && d as usize <= n, "case {i} node {j}: depth {d}");
            if matches!(net.next_hop[j], NextHop::Sink) {
                assert_eq!(d, 1, "case {i} node {j}: sink-adjacent depth");
            }
        }
        assert_eq!(sizes.iter().sum::<usize>(), {
            // Every node appears in exactly depth-many subtrees.
            depths.iter().map(|&d| d as usize).sum::<usize>()
        });
    }
}

/// Random complete trees: the breadth-first constructor agrees with the
/// generic invariants, and the root carries everything.
#[test]
fn random_trees_conserve_traffic() {
    let factory = StreamFactory::new(0x7090_2000);
    for i in 0..32 {
        let mut rng = factory.stream(i);
        let n = 2 + rng.next_bounded(14) as usize;
        let fanout = 1 + rng.next_bounded(4) as usize;
        let net = Network::tree(arb_nodes(&mut rng, n), fanout);
        net.validate().unwrap();
        let forwarded = net.forwarded_rates().unwrap();
        let sources: f64 = net.nodes.iter().map(NodeConfig::own_tx_rate).sum();
        // The root is the only sink-adjacent node: it forwards everything
        // except its own traffic.
        let expect_root = sources - net.nodes[0].own_tx_rate();
        assert!(
            (forwarded[0] - expect_root).abs() <= 1e-9 * sources.max(1.0),
            "case {i}: root forwards {} expected {expect_root}",
            forwarded[0]
        );
        assert_eq!(net.subtree_sizes().unwrap()[0], n);
    }
}

/// Cycles are rejected for any rotation/size, never mis-analyzed.
#[test]
fn random_cycles_are_rejected() {
    let factory = StreamFactory::new(0x7090_3000);
    for i in 0..32 {
        let mut rng = factory.stream(i);
        let n = 2 + rng.next_bounded(10) as usize;
        let nodes = arb_nodes(&mut rng, n);
        let mut next_hop = arb_forest(&mut rng, n);
        // Rewire a random ring through the first k nodes.
        let k = 2 + rng.next_bounded((n - 1) as u64) as usize;
        for (j, hop) in next_hop.iter_mut().enumerate().take(k) {
            *hop = NextHop::Node((j + 1) % k);
        }
        let net = Network { nodes, next_hop };
        let err = net.validate().unwrap_err();
        assert!(err.contains("cycle"), "case {i}: {err}");
        assert!(net.forwarded_rates().is_err(), "case {i}");
        assert!(net.analyze(BackendId::Markov).is_err(), "case {i}");
    }
}

/// The routed star is numerically identical to the legacy star analysis —
/// the v1 ↔ v2 bridge at the analysis level.
#[test]
fn routed_star_matches_legacy_star_exactly() {
    let factory = StreamFactory::new(0x7090_4000);
    for i in 0..8 {
        let mut rng = factory.stream(i);
        let n = 1 + rng.next_bounded(6) as usize;
        let nodes = arb_nodes(&mut rng, n);
        let star = wsnem::wsn::StarNetwork {
            nodes: nodes.clone(),
        };
        let legacy = star.analyze(BackendId::Markov).unwrap();
        let routed = Network::star(nodes).analyze(BackendId::Markov).unwrap();
        assert_eq!(legacy.per_node.len(), routed.per_node.len());
        for (a, b) in legacy.per_node.iter().zip(&routed.per_node) {
            assert_eq!(a, &b.analysis, "case {i}: star analyses must be identical");
            assert_eq!(b.hop_depth, 1);
            assert_eq!(b.forwarded_rx_pkts_s, 0.0);
        }
    }
}
