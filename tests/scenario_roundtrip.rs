//! Serde round-trip guarantees for the scenario subsystem and the types it
//! serializes: anything a user can put in a scenario file must survive
//! serialize → deserialize → re-serialize unchanged, in both JSON and TOML,
//! and a user-authored file must load and run through all three backends.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::CpuModelParams;
use wsnem::petri::{NetBuilder, NetSpec, TransitionKind};
use wsnem::stats::dist::Dist;
use wsnem::stats::rng::{Rng64, StreamFactory};
use wsnem_scenario::{builtin, files, runner, Backend, FileFormat, Scenario};

fn uniform<R: Rng64>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Random-but-valid CPU parameters survive JSON and TOML round-trips
/// bit-exactly (shortest-round-trip float formatting end to end).
#[test]
fn cpu_params_round_trip_property() {
    let factory = StreamFactory::new(0x5CE_A101);
    for i in 0..64 {
        let mut rng = factory.stream(i);
        let lambda = uniform(&mut rng, 0.01, 5.0);
        let p = CpuModelParams::paper_defaults()
            .with_lambda(lambda)
            .with_mu(lambda / uniform(&mut rng, 0.02, 0.95))
            .with_power_down_threshold(uniform(&mut rng, 0.0, 3.0))
            .with_power_up_delay(uniform(&mut rng, 0.0, 2.0))
            .with_horizon(uniform(&mut rng, 10.0, 10_000.0))
            .with_replications(1 + rng.next_bounded(64) as usize)
            .with_seed(rng.next_u64());

        let json = serde_json::to_string(&p).unwrap();
        let back: CpuModelParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p, "case {i} JSON: {json}");
        assert_eq!(serde_json::to_string(&back).unwrap(), json, "case {i}");

        let toml_text = toml::to_string(&p).unwrap();
        let back: CpuModelParams = toml::from_str(&toml_text).unwrap();
        assert_eq!(back, p, "case {i} TOML:\n{toml_text}");
        assert_eq!(toml::to_string(&back).unwrap(), toml_text, "case {i}");
    }
}

/// Randomly generated Petri nets survive NetSpec JSON round-trips and
/// rebuild to an identical net.
#[test]
fn petri_net_spec_round_trip_property() {
    let factory = StreamFactory::new(0x9E7_0002);
    for i in 0..48 {
        let mut rng = factory.stream(i);
        let n_places = 2 + rng.next_bounded(5) as usize;
        let mut b = NetBuilder::new();
        let places: Vec<_> = (0..n_places)
            .map(|p| b.place(format!("p{p}"), rng.next_bounded(5) as u32))
            .collect();
        let n_trans = 1 + rng.next_bounded(5) as usize;
        for t in 0..n_trans {
            let kind = match rng.next_bounded(4) {
                0 => TransitionKind::Immediate {
                    priority: 1 + rng.next_bounded(3) as u8,
                    weight: uniform(&mut rng, 0.5, 4.0),
                },
                1 => TransitionKind::exponential(uniform(&mut rng, 0.1, 8.0)),
                2 => TransitionKind::deterministic(uniform(&mut rng, 0.01, 2.0)),
                _ => TransitionKind::timed(Dist::Erlang {
                    k: 1 + rng.next_bounded(4) as u32,
                    rate: uniform(&mut rng, 0.5, 6.0),
                }),
            };
            let tid = b.transition(format!("t{t}"), kind);
            let inp = rng.next_bounded(n_places as u64) as usize;
            b.input_arc(places[inp], tid, 1 + rng.next_bounded(2) as u32);
            let out = rng.next_bounded(n_places as u64) as usize;
            b.output_arc(tid, places[out], 1 + rng.next_bounded(2) as u32);
            if rng.next_bool(0.4) {
                let inh = rng.next_bounded(n_places as u64) as usize;
                if inh != inp {
                    b.inhibitor_arc(places[inh], tid, 1 + rng.next_bounded(3) as u32);
                }
            }
        }
        let net = b.build().expect("generated net is valid");

        let spec = net.to_spec();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: NetSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec, "case {i}");
        assert_eq!(back.build().unwrap(), net, "case {i}: rebuilt net differs");
        assert_eq!(
            serde_json::to_string_pretty(&back).unwrap(),
            json,
            "case {i}: re-serialization not stable"
        );
    }
}

/// Every built-in scenario survives serialize → deserialize → re-serialize
/// unchanged, in both formats.
#[test]
fn builtin_scenarios_round_trip_stably() {
    for scenario in builtin::all() {
        for format in [FileFormat::Json, FileFormat::Toml] {
            let text1 = files::to_string(&scenario, format).unwrap();
            let back = files::from_str(&text1, format)
                .unwrap_or_else(|e| panic!("{} ({format:?}): {e}\n{text1}", scenario.name));
            assert_eq!(back, scenario, "{} via {format:?}", scenario.name);
            let text2 = files::to_string(&back, format).unwrap();
            assert_eq!(text1, text2, "{} via {format:?}: unstable", scenario.name);
        }
    }
}

/// The acceptance-criteria scenario: a user-authored TOML file (written the
/// way a human would write it, not machine-exported) loads and runs through
/// all three backends; the same scenario authored as JSON produces the same
/// report.
#[test]
fn user_authored_scenario_runs_all_three_backends() {
    let toml_text = r#"
schema_version = 1
name = "my-experiment"
description = "hand-written scenario exercising all three backends"
profile = "Pxa271"
battery = "TwoAa"
backends = ["Markov", "PetriNet", "Des"]

[cpu]
lambda = 0.8
mu = 8.0
power_down_threshold = 0.3
power_up_delay = 0.002
horizon = 500.0
warmup = 50.0
replications = 3
master_seed = 7

[report]
energy_horizon_s = 1000.0
agreement_tolerance_pp = 3.0
"#;
    let scenario: Scenario = files::from_str(toml_text, FileFormat::Toml).unwrap();
    assert_eq!(scenario.name, "my-experiment");
    let report = runner::run_scenario(&scenario).unwrap();
    assert_eq!(report.backends.len(), 3);
    let kinds: Vec<Backend> = report.backends.iter().map(|b| b.backend).collect();
    assert_eq!(
        kinds,
        vec![Backend::Markov, Backend::PetriNet, Backend::Des]
    );
    for b in &report.backends {
        assert!(b.fractions.is_normalized(1e-6), "{:?}", b.fractions);
        assert!(b.energy.total_mj > 0.0);
        assert!(b.battery_lifetime_days > 0.0);
    }
    for a in &report.agreement {
        assert_eq!(a.within_tolerance, Some(true), "{a:?}");
    }

    // The same scenario as JSON gives the same report (identical seeds).
    let json_text = serde_json::to_string(&scenario).unwrap();
    let from_json: Scenario = files::from_str(&json_text, FileFormat::Json).unwrap();
    assert_eq!(from_json, scenario);
    let report2 = runner::run_scenario(&from_json).unwrap();
    // Identical seeds → identical numbers (only wall-clock timings differ).
    for (a, b) in report.backends.iter().zip(&report2.backends) {
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.fractions, b.fractions);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.battery_lifetime_days, b.battery_lifetime_days);
    }
}

/// Reports themselves round-trip through JSON — a consumer can parse
/// `wsnem run --format json` output back into typed reports.
#[test]
fn reports_round_trip_through_json() {
    let mut scenario = builtin::find("paper-defaults").unwrap();
    scenario.cpu = scenario.cpu.with_replications(2).with_horizon(200.0);
    let report = runner::run_scenario(&scenario).unwrap();
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: wsnem_scenario::ScenarioReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
