//! Cross-crate property-based tests: invariants that must hold for *any*
//! parameter combination, not just the paper's.
//!
//! Random parameter draws are hand-rolled over the workspace RNG (the build
//! is offline, without proptest); each case is reproducible from its index.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::core::{CpuModel, CpuModelParams, DesCpuModel, MarkovCpuModel, PetriCpuModel};
use wsnem::energy::{energy_eq25, PowerProfile, StateFractions};
use wsnem::petri::analysis::{incidence_matrix, p_semiflows};
use wsnem::stats::rng::{Rng64, StreamFactory};

mod helpers {
    pub use wsnem::core::build_cpu_edspn;
}

fn uniform<R: Rng64>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn arb_params<R: Rng64>(rng: &mut R) -> CpuModelParams {
    let lambda = uniform(rng, 0.2, 2.0);
    let rho = uniform(rng, 0.05, 0.8);
    let t = uniform(rng, 0.0, 1.5);
    let d = uniform(rng, 0.0, 2.0);
    let seed = 1 + rng.next_bounded(999);
    CpuModelParams::paper_defaults()
        .with_lambda(lambda)
        .with_mu(lambda / rho)
        .with_power_down_threshold(t)
        .with_power_up_delay(d)
        .with_replications(2)
        .with_horizon(300.0)
        .with_warmup(20.0)
        .with_seed(seed)
}

fn cases(stream: u64, n: u64) -> impl Iterator<Item = (u64, CpuModelParams)> {
    let factory = StreamFactory::new(0x5EED_C0DE ^ stream);
    (0..n).map(move |i| {
        let mut rng = factory.stream(i);
        (i, arb_params(&mut rng))
    })
}

/// Every model yields normalized fractions for any stable parameters.
#[test]
fn all_models_normalize() {
    for (i, params) in cases(1, 24) {
        let m = MarkovCpuModel::new(params).evaluate().unwrap();
        assert!(
            m.fractions.is_normalized(1e-9),
            "case {i} markov: {:?}",
            m.fractions
        );
        let d = DesCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        assert!(
            d.fractions.is_normalized(1e-6),
            "case {i} des: {:?}",
            d.fractions
        );
        let p = PetriCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        assert!(
            p.fractions.is_normalized(1e-6),
            "case {i} petri: {:?}",
            p.fractions
        );
    }
}

/// Energy is bounded by the extreme state powers times the horizon.
#[test]
fn energy_physically_bounded() {
    let factory = StreamFactory::new(0x5EED_C0DE ^ 2);
    for i in 0..24 {
        let mut rng = factory.stream(i);
        let params = arb_params(&mut rng);
        let horizon = uniform(&mut rng, 1.0, 5000.0);
        let profile = PowerProfile::pxa271();
        let eval = MarkovCpuModel::new(params).evaluate().unwrap();
        let e = eval.energy_joules(&profile, horizon);
        let lo = 17.0 * horizon / 1000.0;
        let hi = 193.0 * horizon / 1000.0;
        assert!(
            e >= lo - 1e-9 && e <= hi + 1e-9,
            "case {i}: e = {e}, bounds [{lo}, {hi}]"
        );
    }
}

/// The DES keeps utilization within noise of ρ whenever the system is
/// stable — regardless of T and D (all work is eventually served).
#[test]
fn des_utilization_tracks_rho() {
    for (i, params) in cases(3, 24) {
        let params = params.with_horizon(2000.0).with_replications(3);
        let d = DesCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        let rho = params.rho();
        assert!(
            (d.fractions.active - rho).abs() < 0.05 + 0.1 * rho,
            "case {i}: active {} vs rho {rho}",
            d.fractions.active
        );
    }
}

/// Fig. 3 net invariants hold for every parameterization.
#[test]
fn cpu_net_invariants_parameter_free() {
    let factory = StreamFactory::new(0x5EED_C0DE ^ 4);
    for i in 0..24 {
        let mut rng = factory.stream(i);
        let lambda = uniform(&mut rng, 0.1, 3.0);
        let mu = uniform(&mut rng, 4.0, 40.0);
        let t = uniform(&mut rng, 0.001, 2.0);
        let d = uniform(&mut rng, 0.001, 2.0);
        let (net, _) = helpers::build_cpu_edspn(lambda, mu, t, d).unwrap();
        let inv = p_semiflows(&net).unwrap();
        assert_eq!(inv.len(), 3, "case {i}: exactly three minimal P-invariants");
        // Each invariant annihilates the incidence matrix.
        let c = incidence_matrix(&net);
        for x in &inv {
            for tcol in 0..net.n_transitions() {
                let dot: i64 = c.iter().zip(x).map(|(row, &w)| w as i64 * row[tcol]).sum();
                assert_eq!(dot, 0, "case {i}");
            }
        }
    }
}

/// The Petri net and the DES are independent implementations of the
/// same stochastic system: their occupancy estimates must agree within
/// Monte-Carlo noise for ANY stable parameter set.
#[test]
fn petri_and_des_statistically_equivalent() {
    for (i, params) in cases(5, 24) {
        let params = params.with_horizon(1500.0).with_replications(3);
        let pn = PetriCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        let des = DesCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        let delta = pn.fractions.mean_abs_delta_pct(&des.fractions);
        assert!(
            delta < 4.0,
            "case {i}: PN {:?} vs DES {:?} -> {delta} pp",
            pn.fractions,
            des.fractions
        );
    }
}

/// Eq. 25 is linear in time and monotone in occupancy-weighted power.
#[test]
fn eq25_linearity() {
    let factory = StreamFactory::new(0x5EED_C0DE ^ 6);
    for i in 0..24 {
        let mut rng = factory.stream(i);
        let s = uniform(&mut rng, 0.0, 1.0);
        let pu = uniform(&mut rng, 0.0, 1.0);
        let time = uniform(&mut rng, 0.1, 1e4);
        let total = s + pu;
        let (s, pu) = if total > 1.0 {
            (s / total, pu / total)
        } else {
            (s, pu)
        };
        let idle = (1.0 - s - pu).max(0.0) * 0.5;
        let active = (1.0 - s - pu).max(0.0) * 0.5;
        let fr = StateFractions::new(s, pu, idle, active);
        let p = PowerProfile::pxa271();
        let e1 = energy_eq25(&fr, &p, time).total_mj;
        let e2 = energy_eq25(&fr, &p, 2.0 * time).total_mj;
        assert!((e2 - 2.0 * e1).abs() < 1e-9 * e1.abs().max(1.0), "case {i}");
    }
}
