//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* parameter combination, not just the paper's.

use proptest::prelude::*;

use wsnem::core::{CpuModel, CpuModelParams, DesCpuModel, MarkovCpuModel, PetriCpuModel};
use wsnem::energy::{energy_eq25, PowerProfile, StateFractions};
use wsnem::petri::analysis::{incidence_matrix, p_semiflows};

mod helpers {
    pub use wsnem::core::build_cpu_edspn;
}

fn arb_params() -> impl Strategy<Value = CpuModelParams> {
    (
        0.2f64..2.0,   // lambda
        0.05f64..0.8,  // rho
        0.0f64..1.5,   // T
        0.0f64..2.0,   // D
        1u64..1000,    // seed
    )
        .prop_map(|(lambda, rho, t, d, seed)| {
            CpuModelParams::paper_defaults()
                .with_lambda(lambda)
                .with_mu(lambda / rho)
                .with_power_down_threshold(t)
                .with_power_up_delay(d)
                .with_replications(2)
                .with_horizon(300.0)
                .with_warmup(20.0)
                .with_seed(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every model yields normalized fractions for any stable parameters.
    #[test]
    fn all_models_normalize(params in arb_params()) {
        let m = MarkovCpuModel::new(params).evaluate().unwrap();
        prop_assert!(m.fractions.is_normalized(1e-9), "markov: {:?}", m.fractions);
        let d = DesCpuModel::new(params).with_threads(Some(1)).evaluate().unwrap();
        prop_assert!(d.fractions.is_normalized(1e-6), "des: {:?}", d.fractions);
        let p = PetriCpuModel::new(params).with_threads(Some(1)).evaluate().unwrap();
        prop_assert!(p.fractions.is_normalized(1e-6), "petri: {:?}", p.fractions);
    }

    /// Energy is bounded by the extreme state powers times the horizon.
    #[test]
    fn energy_physically_bounded(params in arb_params(), horizon in 1.0f64..5000.0) {
        let profile = PowerProfile::pxa271();
        let eval = MarkovCpuModel::new(params).evaluate().unwrap();
        let e = eval.energy_joules(&profile, horizon);
        let lo = 17.0 * horizon / 1000.0;
        let hi = 193.0 * horizon / 1000.0;
        prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "e = {e}, bounds [{lo}, {hi}]");
    }

    /// The DES keeps utilization within noise of ρ whenever the system is
    /// stable — regardless of T and D (all work is eventually served).
    #[test]
    fn des_utilization_tracks_rho(params in arb_params()) {
        let params = params.with_horizon(2000.0).with_replications(3);
        let d = DesCpuModel::new(params).with_threads(Some(1)).evaluate().unwrap();
        let rho = params.rho();
        prop_assert!(
            (d.fractions.active - rho).abs() < 0.05 + 0.1 * rho,
            "active {} vs rho {rho}", d.fractions.active
        );
    }

    /// Fig. 3 net invariants hold for every parameterization.
    #[test]
    fn cpu_net_invariants_parameter_free(
        lambda in 0.1f64..3.0,
        mu in 4.0f64..40.0,
        t in 0.001f64..2.0,
        d in 0.001f64..2.0,
    ) {
        let (net, _) = helpers::build_cpu_edspn(lambda, mu, t, d).unwrap();
        let inv = p_semiflows(&net).unwrap();
        prop_assert_eq!(inv.len(), 3, "exactly three minimal P-invariants");
        // Each invariant annihilates the incidence matrix.
        let c = incidence_matrix(&net);
        for x in &inv {
            for tcol in 0..net.n_transitions() {
                let dot: i64 = c.iter().zip(x).map(|(row, &w)| w as i64 * row[tcol]).sum();
                prop_assert_eq!(dot, 0);
            }
        }
    }

    /// The Petri net and the DES are independent implementations of the
    /// same stochastic system: their occupancy estimates must agree within
    /// Monte-Carlo noise for ANY stable parameter set.
    #[test]
    fn petri_and_des_statistically_equivalent(params in arb_params()) {
        let params = params.with_horizon(1500.0).with_replications(3);
        let pn = PetriCpuModel::new(params).with_threads(Some(1)).evaluate().unwrap();
        let des = DesCpuModel::new(params).with_threads(Some(1)).evaluate().unwrap();
        let delta = pn.fractions.mean_abs_delta_pct(&des.fractions);
        prop_assert!(
            delta < 4.0,
            "PN {:?} vs DES {:?} -> {delta} pp",
            pn.fractions,
            des.fractions
        );
    }

    /// Eq. 25 is linear in time and monotone in occupancy-weighted power.
    #[test]
    fn eq25_linearity(
        s in 0.0f64..1.0,
        pu in 0.0f64..1.0,
        time in 0.1f64..1e4,
    ) {
        let total = s + pu;
        let (s, pu) = if total > 1.0 { (s / total, pu / total) } else { (s, pu) };
        let idle = (1.0 - s - pu).max(0.0) * 0.5;
        let active = (1.0 - s - pu).max(0.0) * 0.5;
        let fr = StateFractions::new(s, pu, idle, active);
        let p = PowerProfile::pxa271();
        let e1 = energy_eq25(&fr, &p, time).total_mj;
        let e2 = energy_eq25(&fr, &p, 2.0 * time).total_mj;
        prop_assert!((e2 - 2.0 * e1).abs() < 1e-9 * e1.abs().max(1.0));
    }
}
