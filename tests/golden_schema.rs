//! Golden-file test pinning scenario schema v1.
//!
//! `tests/golden/scenario_v1.json` is the canonical serialized form of a
//! fixed scenario. If this test fails, the on-disk scenario format changed:
//! either revert the accidental change, or — for an intentional format
//! change — bump `wsnem_scenario::SCHEMA_VERSION`, regenerate the golden
//! file (`WSNEM_BLESS=1 cargo test -p wsnem --test golden_schema`) and add a
//! migration note to README.md.

use wsnem_scenario::{files, FileFormat, Scenario, SCHEMA_VERSION};

const GOLDEN_PATH: &str = "tests/golden/scenario_v1.json";

/// The fixed scenario the golden file pins. Touches every schema section:
/// custom profile/battery, a non-Poisson workload, a sweep and a network.
fn pinned_scenario() -> Scenario {
    use wsnem::stats::dist::Dist;
    use wsnem_scenario::{
        Backend, BatterySpec, NetworkSpec, NodeSpec, ProfileSpec, ReportSpec, SweepAxis, SweepSpec,
        WorkloadSpec,
    };

    let mut s = Scenario::paper_template("golden-v1");
    s.description = "fixture covering every schema section".into();
    s.cpu = s.cpu.with_seed(42);
    s.profile = ProfileSpec::Custom {
        name: "golden-cpu".into(),
        standby_mw: 1.5,
        powerup_mw: 20.0,
        idle_mw: 10.0,
        active_mw: 25.0,
    };
    s.battery = BatterySpec::Custom {
        capacity_mah: 1000.0,
        voltage_v: 3.0,
        usable_fraction: 0.9,
    };
    s.workload = Some(WorkloadSpec::BurstyOnOff {
        on: Dist::Deterministic(2.0),
        off: Dist::Exponential { rate: 0.1 },
        rate_on: 5.0,
    });
    s.backends = vec![
        Backend::Markov,
        Backend::ErlangPhase,
        Backend::PetriNet,
        Backend::Des,
    ];
    s.report = ReportSpec {
        energy_horizon_s: 2000.0,
        agreement_tolerance_pp: Some(2.5),
    };
    s.sweep = Some(SweepSpec {
        axis: SweepAxis::PowerDownThreshold,
        values: vec![0.1, 0.25, 0.5],
    });
    s.network = Some(NetworkSpec {
        nodes: vec![NodeSpec {
            name: "n0".into(),
            event_rate: 0.5,
            tx_per_event: 1.0,
            rx_rate: 0.25,
        }],
    });
    s
}

#[test]
fn schema_version_is_pinned() {
    // Bumping this constant is a format break: regenerate the golden file
    // and document the migration.
    assert_eq!(SCHEMA_VERSION, 1);
}

#[test]
fn golden_file_matches_serialization() {
    let scenario = pinned_scenario();
    let serialized = files::to_string(&scenario, FileFormat::Json).unwrap() + "\n";

    if std::env::var_os("WSNEM_BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &serialized).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with WSNEM_BLESS=1 to create it");
    assert_eq!(
        serialized, golden,
        "scenario schema drifted from the v1 golden file; \
         see the module docs for the intended workflow"
    );
}

#[test]
fn golden_file_parses_and_validates() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let scenario = files::from_str(&golden, FileFormat::Json).unwrap();
    assert_eq!(scenario, pinned_scenario());
    assert_eq!(scenario.schema_version, SCHEMA_VERSION);
}

#[test]
fn newer_schema_versions_are_rejected_not_misread() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let bumped = golden.replacen("\"schema_version\": 1", "\"schema_version\": 2", 1);
    assert_ne!(golden, bumped, "fixture must contain the version field");
    let err = files::from_str(&bumped, FileFormat::Json).unwrap_err();
    assert!(
        err.to_string().contains("schema version 2"),
        "unexpected error: {err}"
    );
}
