//! Golden-file tests pinning the scenario schema.
//!
//! `tests/golden/scenario_v5.json` is the canonical serialized form of a
//! fixed scenario under the current schema. If the byte-match test fails,
//! the on-disk format changed: either revert the accidental change, or —
//! for an intentional format change — bump `wsnem_scenario::SCHEMA_VERSION`,
//! regenerate the golden file (`WSNEM_BLESS=1 cargo test -p wsnem --test
//! golden_schema`) and add a migration note to README.md.
//!
//! `tests/golden/scenario_v1.json` through `scenario_v4.json` are frozen
//! at their original bytes forever: they are the back-compat fixtures
//! proving that files written before the topology extension (v2), before
//! the unified-backend/service extension (v3), before the duty-cycle radio
//! extension (v4) and before the homogeneous node template (v5) keep
//! loading, validating and analyzing unchanged.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_scenario::{
    builtin, files, runner, FileFormat, Scenario, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};

const GOLDEN_V1_PATH: &str = "tests/golden/scenario_v1.json";
const GOLDEN_V2_PATH: &str = "tests/golden/scenario_v2.json";
const GOLDEN_V3_PATH: &str = "tests/golden/scenario_v3.json";
const GOLDEN_V4_PATH: &str = "tests/golden/scenario_v4.json";
const GOLDEN_V5_PATH: &str = "tests/golden/scenario_v5.json";

/// The fixed scenario the v1 golden file pins (as written by the v1 code:
/// no `topology` key). Touches every v1 schema section.
fn pinned_scenario_v1() -> Scenario {
    use wsnem::stats::dist::Dist;
    use wsnem_scenario::{
        Backend, BatterySpec, NetworkSpec, NodeSpec, ProfileSpec, ReportSpec, SweepAxis, SweepSpec,
        WorkloadSpec,
    };

    let mut s = Scenario::paper_template("golden-v1");
    s.schema_version = 1;
    s.description = "fixture covering every schema section".into();
    s.cpu = s.cpu.with_seed(42);
    s.profile = ProfileSpec::Custom {
        name: "golden-cpu".into(),
        standby_mw: 1.5,
        powerup_mw: 20.0,
        idle_mw: 10.0,
        active_mw: 25.0,
    };
    s.battery = BatterySpec::Custom {
        capacity_mah: 1000.0,
        voltage_v: 3.0,
        usable_fraction: 0.9,
    };
    s.workload = Some(WorkloadSpec::BurstyOnOff {
        on: Dist::Deterministic(2.0),
        off: Dist::Exponential { rate: 0.1 },
        rate_on: 5.0,
    });
    s.backends = vec![
        Backend::Markov,
        Backend::ErlangPhase,
        Backend::PetriNet,
        Backend::Des,
    ];
    s.report = ReportSpec {
        energy_horizon_s: 2000.0,
        agreement_tolerance_pp: Some(2.5),
    };
    s.sweep = Some(SweepSpec {
        axis: SweepAxis::PowerDownThreshold,
        values: vec![0.1, 0.25, 0.5],
    });
    s.network = Some(NetworkSpec {
        nodes: vec![NodeSpec {
            name: "n0".into(),
            event_rate: 0.5,
            tx_per_event: 1.0,
            rx_rate: 0.25,
            radio: None,
        }],
        topology: None,
        radio: None,
        template: None,
    });
    s
}

/// The fixed scenario the v2 golden file pins: the v1 sections plus the
/// schema v2 addition — a routed topology with static mesh routes. Frozen
/// at schema_version 2 (as written by the v2 code).
fn pinned_scenario_v2() -> Scenario {
    use wsnem_scenario::{NetworkSpec, NodeSpec, RouteSpec, TopologySpec};

    let mut s = pinned_scenario_v1();
    s.schema_version = 2;
    s.name = "golden-v2".into();
    let node = |name: &str, event_rate: f64| NodeSpec {
        name: name.into(),
        event_rate,
        tx_per_event: 1.0,
        rx_rate: 0.0,
        radio: None,
    };
    s.network = Some(NetworkSpec {
        nodes: vec![node("relay", 0.5), node("mid", 0.4), node("leaf", 0.3)],
        topology: Some(TopologySpec::Mesh {
            routes: vec![
                RouteSpec {
                    from: "relay".into(),
                    to: "sink".into(),
                },
                RouteSpec {
                    from: "mid".into(),
                    to: "relay".into(),
                },
                RouteSpec {
                    from: "leaf".into(),
                    to: "mid".into(),
                },
            ],
        }),
        radio: None,
        template: None,
    });
    s
}

/// The fixed scenario the v3 golden file pins: the v2 sections plus the
/// schema v3 addition — a non-exponential service distribution (restricted
/// to the backends whose capabilities support it). Frozen at
/// schema_version 3 (as written by the v3 code).
fn pinned_scenario_v3() -> Scenario {
    use wsnem_scenario::{BackendId, ServiceDist};

    let mut s = pinned_scenario_v2();
    s.schema_version = 3;
    s.name = "golden-v3".into();
    s.service = Some(ServiceDist::Erlang { k: 3 });
    s.backends = vec![BackendId::PetriNet, BackendId::Des];
    s
}

/// The fixed scenario the v4 golden file pins: the v3 sections plus the
/// schema v4 addition — a network-wide duty-cycle MAC with a per-node
/// override. Frozen at schema_version 4 (as written by the v4 code).
fn pinned_scenario_v4() -> Scenario {
    use wsnem_scenario::RadioSpec;

    let mut s = pinned_scenario_v3();
    s.schema_version = 4;
    s.name = "golden-v4".into();
    let net = s.network.as_mut().expect("v3 fixture has a network");
    net.radio = Some(RadioSpec::BMac {
        check_interval_s: 0.1,
        preamble_s: 0.1,
    });
    // The sink-adjacent relay overrides the network MAC: strobed preambles
    // keep its heavy forwarded traffic affordable.
    net.nodes[0].radio = Some(RadioSpec::XMac {
        check_interval_s: 0.1,
        strobe_s: 0.004,
        ack_s: 0.001,
    });
    s
}

/// The fixed scenario the v5 golden file pins: the v4 sections plus the
/// schema v5 addition — a homogeneous node template on a tree topology,
/// the compact form the million-node analytic fast path consumes.
fn pinned_scenario_v5() -> Scenario {
    use wsnem_scenario::{BackendId, NetworkSpec, RadioSpec, TemplateSpec, TopologySpec};

    let mut s = pinned_scenario_v4();
    s.schema_version = SCHEMA_VERSION;
    s.name = "golden-v5".into();
    s.backends = vec![BackendId::Mg1, BackendId::Des];
    s.network = Some(NetworkSpec {
        nodes: Vec::new(),
        topology: Some(TopologySpec::Tree { fanout: 4 }),
        radio: Some(RadioSpec::BMac {
            check_interval_s: 0.1,
            preamble_s: 0.1,
        }),
        template: Some(TemplateSpec {
            count: 5000,
            prefix: "n".into(),
            event_rate: 1e-4,
            tx_per_event: 1.0,
            rx_rate: 0.0,
        }),
    });
    s
}

#[test]
fn schema_version_is_pinned() {
    // Bumping either constant is a format event: regenerate/add golden
    // files and document the migration.
    assert_eq!(SCHEMA_VERSION, 5);
    assert_eq!(MIN_SCHEMA_VERSION, 1);
}

#[test]
fn golden_v5_file_matches_serialization() {
    let scenario = pinned_scenario_v5();
    let serialized = files::to_string(&scenario, FileFormat::Json).unwrap() + "\n";

    if std::env::var_os("WSNEM_BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_V5_PATH, &serialized).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_V5_PATH)
        .expect("golden file missing — run with WSNEM_BLESS=1 to create it");
    assert_eq!(
        serialized, golden,
        "scenario schema drifted from the v5 golden file; \
         see the module docs for the intended workflow"
    );
}

#[test]
fn golden_v5_file_parses_and_validates() {
    let golden = std::fs::read_to_string(GOLDEN_V5_PATH).expect("golden file present");
    let scenario = files::from_str(&golden, FileFormat::Json).unwrap();
    assert_eq!(scenario, pinned_scenario_v5());
    assert_eq!(scenario.schema_version, SCHEMA_VERSION);
    assert_eq!(
        scenario.network.as_ref().unwrap().node_count(),
        5000,
        "template count is the node count — no per-node specs materialize"
    );
}

/// The v4 golden bytes must keep loading forever — they stand in for every
/// scenario file written before the homogeneous node template.
#[test]
fn golden_v4_file_still_loads_unchanged() {
    let golden = std::fs::read_to_string(GOLDEN_V4_PATH).expect("v4 golden file present");
    assert!(
        !golden.contains("template"),
        "the v4 fixture must stay a genuine v4 file; never regenerate it"
    );
    let scenario = files::from_str(&golden, FileFormat::Json).unwrap();
    assert_eq!(scenario, pinned_scenario_v4());
    assert_eq!(scenario.schema_version, 4);
    // And it still analyzes — per-node mesh path, overridden MAC included.
    let mut quick = scenario;
    quick.cpu = quick.cpu.with_replications(2).with_horizon(300.0);
    quick.backends = vec![wsnem_scenario::BackendId::Markov];
    quick.sweep = None;
    quick.workload = None;
    quick.service = None;
    let report = runner::run_scenario(&quick).unwrap();
    let net = report.network.unwrap();
    assert_eq!(net.topology, "mesh");
    assert_eq!(net.nodes[0].radio_spec, "x-mac");
}

/// The v3 golden bytes must keep loading forever — they stand in for every
/// scenario file written before the duty-cycle radio extension.
#[test]
fn golden_v3_file_still_loads_unchanged() {
    let golden = std::fs::read_to_string(GOLDEN_V3_PATH).expect("v3 golden file present");
    assert!(
        !golden.contains("\"radio\""),
        "the v3 fixture must stay a genuine v3 file; never regenerate it"
    );
    let scenario = files::from_str(&golden, FileFormat::Json).unwrap();
    assert_eq!(scenario, pinned_scenario_v3());
    assert_eq!(scenario.schema_version, 3);
    // And it still analyzes — on the same cc2420-class radio every pre-v4
    // file implied.
    let mut quick = scenario;
    quick.cpu = quick.cpu.with_replications(2).with_horizon(300.0);
    quick.backends = vec![wsnem_scenario::BackendId::Markov];
    quick.sweep = None;
    quick.workload = None;
    quick.service = None;
    let report = runner::run_scenario(&quick).unwrap();
    let net = report.network.unwrap();
    assert_eq!(net.topology, "mesh");
    for node in &net.nodes {
        assert_eq!(node.radio_spec, "cc2420-class");
        assert!((node.radio_duty_cycle - 0.05).abs() < 1e-12);
    }
}

/// The v2 golden bytes must keep loading forever — they stand in for every
/// scenario file written before the unified-backend/service extension.
#[test]
fn golden_v2_file_still_loads_unchanged() {
    let golden = std::fs::read_to_string(GOLDEN_V2_PATH).expect("v2 golden file present");
    assert!(
        !golden.contains("service"),
        "the v2 fixture must stay a genuine v2 file; never regenerate it"
    );
    let scenario = files::from_str(&golden, FileFormat::Json).unwrap();
    assert_eq!(scenario, pinned_scenario_v2());
    assert_eq!(scenario.schema_version, 2);
    // And it still analyzes: same backends, same routed topology semantics.
    let mut quick = scenario;
    quick.cpu = quick.cpu.with_replications(2).with_horizon(300.0);
    quick.backends = vec![wsnem_scenario::BackendId::Markov];
    quick.sweep = None;
    quick.workload = None;
    let report = runner::run_scenario(&quick).unwrap();
    let net = report.network.unwrap();
    assert_eq!(net.topology, "mesh");
    assert_eq!(net.max_hop_depth, 3);
}

/// The v1 golden bytes must keep loading forever — they stand in for every
/// scenario file users wrote before the topology extension.
#[test]
fn golden_v1_file_still_loads_unchanged() {
    let golden = std::fs::read_to_string(GOLDEN_V1_PATH).expect("v1 golden file present");
    assert!(
        !golden.contains("topology"),
        "the v1 fixture must stay a genuine v1 file; never regenerate it"
    );
    let scenario = files::from_str(&golden, FileFormat::Json).unwrap();
    assert_eq!(scenario, pinned_scenario_v1());
    assert_eq!(scenario.schema_version, 1);
    // And the loaded v1 network still analyzes: no topology → star.
    let mut quick = scenario;
    quick.cpu = quick.cpu.with_replications(2).with_horizon(300.0);
    quick.backends = vec![wsnem_scenario::Backend::Markov];
    quick.sweep = None;
    quick.workload = None;
    let report = runner::run_scenario(&quick).unwrap();
    let net = report.network.unwrap();
    assert_eq!(net.topology, "star");
    assert_eq!(net.max_hop_depth, 1);
}

#[test]
fn newer_schema_versions_are_rejected_not_misread() {
    let golden = std::fs::read_to_string(GOLDEN_V5_PATH).expect("golden file present");
    let future = SCHEMA_VERSION + 1;
    let bumped = golden.replacen(
        &format!("\"schema_version\": {SCHEMA_VERSION}"),
        &format!("\"schema_version\": {future}"),
        1,
    );
    assert_ne!(golden, bumped, "fixture must contain the version field");
    let err = files::from_str(&bumped, FileFormat::Json).unwrap_err();
    assert!(
        err.to_string()
            .contains(&format!("schema version {future}")),
        "unexpected error: {err}"
    );
}

/// v1 → v2 compatibility: every builtin that uses no v2-only feature, when
/// rewritten as a v1 file, loads and analyzes to *identical* results —
/// replication streams included.
#[test]
fn v1_builtins_round_trip_and_analyze_identically() {
    let mut checked = 0;
    for scenario in builtin::all() {
        if scenario
            .network
            .as_ref()
            .is_some_and(|n| n.topology.is_some())
        {
            continue; // v2-only feature; cannot be expressed as v1
        }
        if scenario.service.is_some() {
            continue; // v3-only feature; cannot be expressed as v1
        }
        if scenario
            .network
            .as_ref()
            .is_some_and(|n| n.radio.is_some() || n.nodes.iter().any(|node| node.radio.is_some()))
        {
            continue; // v4-only feature; cannot be expressed as v1
        }
        if scenario
            .network
            .as_ref()
            .is_some_and(|n| n.template.is_some())
        {
            continue; // v5-only feature; cannot be expressed as v1
        }
        let mut quick = scenario;
        quick.cpu = quick
            .cpu
            .with_replications(2)
            .with_horizon(300.0)
            .with_warmup(quick.cpu.warmup.min(30.0));
        if let Some(sweep) = &mut quick.sweep {
            sweep.values.truncate(2);
        }

        let mut v1 = quick.clone();
        v1.schema_version = 1;
        for format in [FileFormat::Json, FileFormat::Toml] {
            let text = files::to_string(&v1, format).unwrap();
            let loaded = files::from_str(&text, format)
                .unwrap_or_else(|e| panic!("{} as v1 {format:?}: {e}\n{text}", v1.name));
            assert_eq!(loaded, v1, "{} via {format:?}", v1.name);
        }

        let v2_report = runner::run_scenario(&quick).unwrap();
        let v1_report = runner::run_scenario(&v1).unwrap();
        assert_eq!(v1_report.schema_version, 1);
        for (a, b) in v2_report.backends.iter().zip(&v1_report.backends) {
            assert_eq!(a.backend, b.backend, "{}", quick.name);
            assert_eq!(a.fractions, b.fractions, "{}", quick.name);
            assert_eq!(a.energy, b.energy, "{}", quick.name);
            assert_eq!(
                a.battery_lifetime_days, b.battery_lifetime_days,
                "{}",
                quick.name
            );
        }
        match (&v2_report.network, &v1_report.network) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.nodes, b.nodes, "{}", quick.name);
                assert_eq!(a.first_death_days, b.first_death_days, "{}", quick.name);
                assert_eq!(a.bottleneck, b.bottleneck, "{}", quick.name);
            }
            _ => panic!("{}: network sections differ", quick.name),
        }
        checked += 1;
    }
    assert!(checked >= 5, "expected most builtins to be v1-expressible");
}
