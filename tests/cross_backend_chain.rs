//! Cross-backend agreement on a multi-hop chain: all four CPU backends must
//! agree per node within the Table 4 tolerance the runner uses (2 pp mean
//! absolute state-occupancy delta), even though every hop sees a different
//! effective arrival rate (own sensing + forwarded subtree traffic).

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem::wsn::{BackendId, Network, NodeConfig};

const TOLERANCE_PP: f64 = 2.0; // the runner's default agreement gate

fn three_hop_chain() -> Network {
    let nodes = (0..3)
        .map(|i| {
            let mut node = NodeConfig::monitoring(format!("hop-{}", i + 1), 1.0);
            node.event_rate = 0.8;
            node.cpu = node
                .cpu
                .with_replications(6)
                .with_horizon(2000.0)
                .with_warmup(100.0);
            node
        })
        .collect();
    Network::chain(nodes)
}

#[test]
fn all_backends_agree_per_node_on_the_chain() {
    let net = three_hop_chain();
    let reference = net.analyze(BackendId::Des).unwrap();
    for backend in [
        BackendId::Markov,
        BackendId::ErlangPhase,
        BackendId::PetriNet,
    ] {
        let result = net.analyze(backend).unwrap();
        for (r, d) in result.per_node.iter().zip(&reference.per_node) {
            let delta = r
                .analysis
                .cpu_fractions
                .mean_abs_delta_pct(&d.analysis.cpu_fractions);
            assert!(
                delta < TOLERANCE_PP,
                "{backend:?} vs Des at {}: Δ = {delta:.3} pp",
                r.analysis.name
            );
            let rel_power =
                (r.analysis.cpu_power_mw - d.analysis.cpu_power_mw).abs() / d.analysis.cpu_power_mw;
            assert!(
                rel_power < 0.10,
                "{backend:?} vs Des at {}: power {:.3} vs {:.3} mW",
                r.analysis.name,
                r.analysis.cpu_power_mw,
                d.analysis.cpu_power_mw
            );
        }
    }
}

/// Every backend sees the same structural facts: identical forwarding
/// loads, hop depths, and the relay-dies-first ordering.
#[test]
fn structure_is_backend_invariant_and_relay_dies_first() {
    let net = three_hop_chain();
    for backend in [
        BackendId::Markov,
        BackendId::ErlangPhase,
        BackendId::PetriNet,
        BackendId::Des,
    ] {
        let a = net.analyze(backend).unwrap();
        let depths: Vec<u32> = a.per_node.iter().map(|n| n.hop_depth).collect();
        assert_eq!(depths, vec![1, 2, 3], "{backend:?}");
        let fwd: Vec<f64> = a.per_node.iter().map(|n| n.forwarded_rx_pkts_s).collect();
        assert!((fwd[0] - 1.6).abs() < 1e-12, "{backend:?}: {fwd:?}");
        assert!((fwd[1] - 0.8).abs() < 1e-12, "{backend:?}: {fwd:?}");
        assert_eq!(fwd[2], 0.0, "{backend:?}");
        // More forwarded load → more power → shorter life, hop by hop.
        assert!(
            a.per_node[0].analysis.lifetime_days < a.per_node[1].analysis.lifetime_days
                && a.per_node[1].analysis.lifetime_days < a.per_node[2].analysis.lifetime_days,
            "{backend:?}: lifetimes not ordered by load"
        );
        assert_eq!(a.bottleneck_relay().unwrap().analysis.name, "hop-1");
    }
}
