//! Scale check: analyze a 10^6-node collection tree with the analytic
//! M/G/1 backend on one core. Run with
//! `cargo run --release -p wsnem-wsn --example mega_soa`.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use wsnem_core::{BackendId, CpuModelParams, EvalOptions};
use wsnem_wsn::{tree_parents, NodeConfig, SoaNetwork};

fn main() {
    let n = 1_000_000;
    let node = NodeConfig::monitoring("n", 1.0);
    let t0 = Instant::now();
    let soa = SoaNetwork::homogeneous(
        tree_parents(n, 4),
        "n",
        5e-6,
        node.tx_per_event,
        node.rx_rate,
        CpuModelParams::paper_defaults().with_lambda(5e-6),
        node.cpu_profile,
        node.radio,
        node.battery,
    );
    let build = t0.elapsed();
    let t1 = Instant::now();
    let a = soa
        .analyze_with(
            wsnem_core::backend::global(),
            BackendId::Mg1,
            &EvalOptions::default(),
            Some(1),
        )
        .expect("stable network");
    let solve = t1.elapsed();
    println!(
        "build {:?} solve {:?} first_death {:.1} max_depth {} sink {:.3} root_rho {:.3}",
        build,
        solve,
        a.first_death_days(),
        a.max_hop_depth(),
        a.sink_arrival_pkts_s,
        a.rho[0]
    );
}
