//! Multi-hop routed topologies with forwarding-load propagation.
//!
//! The paper models one node's CPU, but its WSN setting is multi-hop: relay
//! nodes near the sink carry the aggregate traffic of their subtree, which
//! is exactly the load imbalance that determines network lifetime. This
//! module generalizes the star of [`crate::network`] into a routed
//! [`Network`]: every node has a static [`NextHop`] toward the sink, and the
//! per-node *forwarding load* is computed by propagating subtree packet
//! rates sink-ward — a node's effective CPU arrival rate becomes
//! `own_rate + sum(children's forwarded output)`, and its radio both
//! receives and retransmits that forwarded traffic.
//!
//! Conservation holds by construction: the packet rate entering the sink
//! equals the sum of every node's own transmit rate (nothing is created or
//! dropped en route), and the accompanying test battery pins that invariant
//! for random trees and meshes.
//!
//! Nodes are heterogeneous, radios included: a relay can run a different
//! duty-cycle MAC (a [`crate::RadioSpec`] override) than its leaves, which
//! is why [`RoutedAnalysis::bottleneck_relay`] ranks forwarding nodes by
//! *lifetime* rather than raw forwarded load — the energy price of carrying
//! a subtree depends on the MAC carrying it.
//!
//! # Examples
//!
//! ```
//! use wsnem_wsn::{BackendId, Network, NodeConfig};
//!
//! // A 3-hop chain sensing once every 2 s per node.
//! let nodes: Vec<NodeConfig> = (0..3)
//!     .map(|i| NodeConfig::monitoring(format!("n{i}"), 2.0))
//!     .collect();
//! let net = Network::chain(nodes);
//! // The sink-adjacent relay carries the other two nodes' packets...
//! assert_eq!(net.forwarded_rates().unwrap(), vec![1.0, 0.5, 0.0]);
//! // ...so it burns more power and dies first.
//! let analysis = net.analyze(BackendId::Markov).unwrap();
//! assert_eq!(analysis.bottleneck_relay().unwrap().analysis.name, "n0");
//! ```

use wsnem_core::BackendId;

use crate::node::{NodeAnalysis, NodeConfig};

/// Where a node forwards its collected traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NextHop {
    /// Directly to the (mains-powered, unmodeled) sink.
    Sink,
    /// To another node, by index into the node list.
    Node(usize),
}

/// Next hops of a star over `n` nodes: everyone transmits to the sink.
pub fn star_next_hops(n: usize) -> Vec<NextHop> {
    vec![NextHop::Sink; n]
}

/// Next hops of a linear chain: node 0 is sink-adjacent and every later
/// node forwards to its predecessor.
pub fn chain_next_hops(n: usize) -> Vec<NextHop> {
    (0..n)
        .map(|i| {
            if i == 0 {
                NextHop::Sink
            } else {
                NextHop::Node(i - 1)
            }
        })
        .collect()
}

/// Next hops of a complete `fanout`-ary tree in breadth-first order: node 0
/// is the sink-adjacent root and node `i > 0` forwards to `(i - 1) / fanout`.
/// `fanout < 1` is treated as 1 (a chain).
pub fn tree_next_hops(n: usize, fanout: usize) -> Vec<NextHop> {
    let fanout = fanout.max(1);
    (0..n)
        .map(|i| {
            if i == 0 {
                NextHop::Sink
            } else {
                NextHop::Node((i - 1) / fanout)
            }
        })
        .collect()
}

/// The routing structure derived from a network's next hops, computed in
/// one sink-ward pass: hop depths, forwarded input rates and subtree sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable {
    /// Hops to the sink per node (sink-adjacent = 1).
    pub depths: Vec<u32>,
    /// Forwarded input rate per node (packets/s).
    pub forwarded: Vec<f64>,
    /// Subtree size per node (each node counts itself).
    pub subtree_sizes: Vec<usize>,
}

/// A routed multi-hop network: heterogeneous nodes plus one static next hop
/// per node. Star, chain and tree are constructors; arbitrary
/// (cycle-free) route sets model meshes with static routing.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Network {
    /// The sensor nodes.
    pub nodes: Vec<NodeConfig>,
    /// `next_hop[i]` is where node `i` forwards; same length as `nodes`.
    pub next_hop: Vec<NextHop>,
}

/// One node's routed analysis: the energy verdict plus its place in the
/// routing structure.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedNodeAnalysis {
    /// The energy/battery verdict (CPU λ already includes forwarded load).
    pub analysis: NodeAnalysis,
    /// Hops to the sink (sink-adjacent nodes are depth 1).
    pub hop_depth: u32,
    /// Forwarded traffic received from children (packets/s).
    pub forwarded_rx_pkts_s: f64,
    /// Total offered transmit rate: own packets plus forwarded (packets/s).
    pub offered_tx_pkts_s: f64,
    /// Nodes in this node's subtree, itself included.
    pub subtree_size: usize,
}

/// Evaluated routed-network energy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedAnalysis {
    /// Per-node results, in configuration order.
    pub per_node: Vec<RoutedNodeAnalysis>,
    /// Total packet rate entering the sink (packets/s).
    pub sink_arrival_pkts_s: f64,
}

impl Network {
    /// Every node transmits directly to the sink — the v1 star, as a routed
    /// network (forwarding loads are all zero, so the analysis is identical
    /// to [`crate::StarNetwork`]).
    pub fn star(nodes: Vec<NodeConfig>) -> Self {
        let next_hop = star_next_hops(nodes.len());
        Self { nodes, next_hop }
    }

    /// A linear chain: `nodes[0]` is sink-adjacent and every later node
    /// forwards to its predecessor, so node 0 relays the whole line.
    pub fn chain(nodes: Vec<NodeConfig>) -> Self {
        let next_hop = chain_next_hops(nodes.len());
        Self { nodes, next_hop }
    }

    /// A complete `fanout`-ary tree in breadth-first order (see
    /// [`tree_next_hops`]): `nodes[0]` is the sink-adjacent root.
    pub fn tree(nodes: Vec<NodeConfig>, fanout: usize) -> Self {
        let next_hop = tree_next_hops(nodes.len(), fanout);
        Self { nodes, next_hop }
    }

    /// Validate the routing: every next hop in range, no self-loops, and
    /// every node reaches the sink (equivalently, no cycles — each node has
    /// exactly one outgoing route, so an unreachable node is one whose
    /// forward walk enters a cycle).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.len() != self.next_hop.len() {
            return Err(format!(
                "routing table has {} entries for {} nodes",
                self.next_hop.len(),
                self.nodes.len()
            ));
        }
        for (i, hop) in self.next_hop.iter().enumerate() {
            if let NextHop::Node(j) = *hop {
                if j >= self.nodes.len() {
                    return Err(format!(
                        "node `{}` forwards to index {j}, but there are only {} nodes",
                        self.nodes[i].name,
                        self.nodes.len()
                    ));
                }
                if j == i {
                    return Err(format!("node `{}` forwards to itself", self.nodes[i].name));
                }
            }
        }
        self.hop_depths().map(|_| ())
    }

    /// Hops to the sink per node (sink-adjacent = 1). Fails on cycles,
    /// naming an affected node. Every routing computation funnels through
    /// here, so malformed tables error instead of panicking even for
    /// hand-built (or deserialized) networks that skipped `validate`.
    pub fn hop_depths(&self) -> Result<Vec<u32>, String> {
        let n = self.nodes.len();
        if self.next_hop.len() != n {
            return Err(format!(
                "routing table has {} entries for {n} nodes",
                self.next_hop.len()
            ));
        }
        let mut depths: Vec<u32> = vec![0; n]; // 0 = not yet computed
        for start in 0..n {
            if depths[start] != 0 {
                continue;
            }
            // Walk sink-ward, collecting the unresolved prefix of the path.
            let mut path = Vec::new();
            let mut cur = start;
            let base = loop {
                path.push(cur);
                if path.len() > n {
                    return Err(format!(
                        "node `{}` cannot reach the sink (routing cycle)",
                        self.nodes[start].name
                    ));
                }
                match self.next_hop[cur] {
                    NextHop::Sink => break 0,
                    NextHop::Node(j) => {
                        if j >= n {
                            return Err(format!(
                                "node `{}` forwards to index {j}, but there are only {n} nodes",
                                self.nodes[cur].name
                            ));
                        }
                        if depths[j] != 0 {
                            break depths[j];
                        }
                        if path.contains(&j) {
                            return Err(format!(
                                "node `{}` cannot reach the sink (routing cycle)",
                                self.nodes[start].name
                            ));
                        }
                        cur = j;
                    }
                }
            };
            for (back, &node) in path.iter().rev().enumerate() {
                depths[node] = base + 1 + back as u32;
            }
        }
        Ok(depths)
    }

    /// Depths, forwarded rates and subtree sizes in one deepest-first pass
    /// (the single place the sink-ward propagation is implemented).
    pub fn routing(&self) -> Result<RoutingTable, String> {
        let depths = self.hop_depths()?;
        let n = self.nodes.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Deepest first: every child is settled before its parent.
        order.sort_by(|&a, &b| depths[b].cmp(&depths[a]));
        let mut forwarded = vec![0.0f64; n];
        let mut subtree_sizes = vec![1usize; n];
        for &i in &order {
            let out = self.nodes[i].own_tx_rate() + forwarded[i];
            if let NextHop::Node(parent) = self.next_hop[i] {
                forwarded[parent] += out;
                subtree_sizes[parent] += subtree_sizes[i];
            }
        }
        Ok(RoutingTable {
            depths,
            forwarded,
            subtree_sizes,
        })
    }

    /// Per-node forwarded input rate (packets/s): the sum over children of
    /// their *output* rate (own transmissions plus what they themselves
    /// forward). Exogenous `rx_rate` traffic is consumed locally, as in the
    /// star model, and is not re-forwarded.
    pub fn forwarded_rates(&self) -> Result<Vec<f64>, String> {
        self.routing().map(|r| r.forwarded)
    }

    /// Subtree sizes (each node counts itself).
    pub fn subtree_sizes(&self) -> Result<Vec<usize>, String> {
        self.routing().map(|r| r.subtree_sizes)
    }

    /// Total packet rate entering the sink — by conservation, the sum of
    /// every node's own transmit rate.
    pub fn sink_arrival_pkts_s(&self) -> f64 {
        self.nodes.iter().map(NodeConfig::own_tx_rate).sum()
    }

    /// Analyze every node with forwarding loads applied, parallelizing
    /// across all cores.
    pub fn analyze(&self, backend: BackendId) -> Result<RoutedAnalysis, NetworkError> {
        self.analyze_with_threads(backend, None)
    }

    /// Analyze on a pinned number of worker threads (`None` = available
    /// parallelism; batch runners pass `Some(1)`).
    pub fn analyze_with_threads(
        &self,
        backend: BackendId,
        threads: Option<usize>,
    ) -> Result<RoutedAnalysis, NetworkError> {
        let RoutingTable {
            depths,
            forwarded,
            subtree_sizes: sizes,
        } = self.routing().map_err(NetworkError::Routing)?;
        let analyses = crate::network::parallel_node_map(self.nodes.len(), threads, |i| {
            self.nodes[i].analyze_with_forwarding(backend, forwarded[i])
        });
        let mut per_node = Vec::with_capacity(self.nodes.len());
        for (i, a) in analyses.into_iter().enumerate() {
            let analysis = a.map_err(|e| NetworkError::Node {
                node: self.nodes[i].name.clone(),
                source: e,
            })?;
            per_node.push(RoutedNodeAnalysis {
                analysis,
                hop_depth: depths[i],
                forwarded_rx_pkts_s: forwarded[i],
                offered_tx_pkts_s: self.nodes[i].own_tx_rate() + forwarded[i],
                subtree_size: sizes[i],
            });
        }
        Ok(RoutedAnalysis {
            per_node,
            sink_arrival_pkts_s: self.sink_arrival_pkts_s(),
        })
    }
}

/// Errors from routed-network analysis.
#[derive(Debug)]
pub enum NetworkError {
    /// The routing table is invalid (cycle, orphan, bad index).
    Routing(String),
    /// One node's model evaluation failed (e.g. forwarding load pushed its
    /// effective arrival rate past the service rate).
    Node {
        /// Name of the failing node.
        node: String,
        /// The underlying model error.
        source: wsnem_core::CoreError,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Routing(msg) => write!(f, "invalid topology: {msg}"),
            NetworkError::Node { node, source } => {
                write!(f, "node `{node}`: {source}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

impl RoutedAnalysis {
    /// Lifetime until the first node dies (days).
    pub fn first_death_days(&self) -> f64 {
        self.per_node
            .iter()
            .map(|n| n.analysis.lifetime_days)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean node lifetime (days).
    pub fn mean_lifetime_days(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node
            .iter()
            .map(|n| n.analysis.lifetime_days)
            .sum::<f64>()
            / self.per_node.len() as f64
    }

    /// Total network power (mW).
    pub fn total_power_mw(&self) -> f64 {
        self.per_node
            .iter()
            .map(|n| n.analysis.total_power_mw)
            .sum()
    }

    /// The node with the shortest lifetime.
    pub fn bottleneck(&self) -> Option<&RoutedNodeAnalysis> {
        self.per_node.iter().min_by(|a, b| {
            a.analysis
                .lifetime_days
                .total_cmp(&b.analysis.lifetime_days)
        })
    }

    /// The routing hot spot: the *shortest-lived* forwarding node (`None`
    /// when nothing forwards, e.g. a star).
    ///
    /// Lifetime-ranked rather than load-ranked because the metric is
    /// MAC-sensitive: with per-node radio overrides, a relay on an
    /// expensive MAC (long preambles, high duty cycle) can be the hot spot
    /// even though another relay carries more packets. In homogeneous
    /// networks the two rankings coincide.
    pub fn bottleneck_relay(&self) -> Option<&RoutedNodeAnalysis> {
        self.per_node
            .iter()
            .filter(|n| n.forwarded_rx_pkts_s > 0.0)
            .min_by(|a, b| {
                a.analysis
                    .lifetime_days
                    .total_cmp(&b.analysis.lifetime_days)
            })
    }

    /// The deepest hop count in the network (0 for an empty network).
    pub fn max_hop_depth(&self) -> u32 {
        self.per_node.iter().map(|n| n.hop_depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitoring_nodes(n: usize, period_s: f64) -> Vec<NodeConfig> {
        (0..n)
            .map(|i| NodeConfig::monitoring(format!("node-{i}"), period_s))
            .collect()
    }

    #[test]
    fn star_has_no_forwarding_and_matches_star_network() {
        let nodes = monitoring_nodes(3, 10.0);
        let routed = Network::star(nodes.clone());
        routed.validate().unwrap();
        assert_eq!(routed.hop_depths().unwrap(), vec![1, 1, 1]);
        assert_eq!(routed.forwarded_rates().unwrap(), vec![0.0; 3]);

        let star = crate::StarNetwork { nodes };
        let a = star.analyze(BackendId::Markov).unwrap();
        let r = routed.analyze(BackendId::Markov).unwrap();
        for (s, r) in a.per_node.iter().zip(&r.per_node) {
            assert_eq!(s, &r.analysis, "star and routed-star must agree exactly");
        }
        assert!(r.bottleneck_relay().is_none());
    }

    #[test]
    fn chain_depths_and_loads() {
        let net = Network::chain(monitoring_nodes(4, 2.0)); // 0.5 ev/s each
        net.validate().unwrap();
        assert_eq!(net.hop_depths().unwrap(), vec![1, 2, 3, 4]);
        let fwd = net.forwarded_rates().unwrap();
        // node 3 forwards nothing; node 0 relays the other three.
        assert_eq!(fwd[3], 0.0);
        assert!((fwd[2] - 0.5).abs() < 1e-12);
        assert!((fwd[1] - 1.0).abs() < 1e-12);
        assert!((fwd[0] - 1.5).abs() < 1e-12);
        assert_eq!(net.subtree_sizes().unwrap(), vec![4, 3, 2, 1]);
        assert!((net.sink_arrival_pkts_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tree_parent_structure() {
        let net = Network::tree(monitoring_nodes(7, 10.0), 2);
        net.validate().unwrap();
        assert_eq!(net.next_hop[0], NextHop::Sink);
        assert_eq!(net.next_hop[1], NextHop::Node(0));
        assert_eq!(net.next_hop[2], NextHop::Node(0));
        assert_eq!(net.next_hop[3], NextHop::Node(1));
        assert_eq!(net.next_hop[6], NextHop::Node(2));
        assert_eq!(net.hop_depths().unwrap(), vec![1, 2, 2, 3, 3, 3, 3]);
        assert_eq!(net.subtree_sizes().unwrap()[0], 7);
    }

    #[test]
    fn relay_dies_first_in_a_chain() {
        let net = Network::chain(monitoring_nodes(3, 1.0));
        let a = net.analyze(BackendId::Markov).unwrap();
        let relay = &a.per_node[0];
        assert_eq!(a.bottleneck().unwrap().analysis.name, "node-0");
        assert_eq!(a.bottleneck_relay().unwrap().analysis.name, "node-0");
        for leafward in &a.per_node[1..] {
            assert!(
                relay.analysis.lifetime_days < leafward.analysis.lifetime_days,
                "sink-adjacent relay must die first"
            );
        }
        assert_eq!(a.max_hop_depth(), 3);
    }

    #[test]
    fn bottleneck_relay_is_mac_sensitive() {
        // Chain n0 <- n1 <- n2: n0 forwards 1.0 pkt/s, n1 forwards 0.5.
        // With homogeneous radios the heaviest relay (n0) is the hot spot;
        // putting the mid relay on an always-on radio (duty cycle 1) makes
        // *it* the shortest-lived forwarder despite carrying less traffic.
        let mut nodes = monitoring_nodes(3, 2.0);
        let homogeneous = Network::chain(nodes.clone());
        let a = homogeneous.analyze(BackendId::Markov).unwrap();
        assert_eq!(a.bottleneck_relay().unwrap().analysis.name, "node-0");

        nodes[1].radio = crate::RadioSpec::Preset("cc2420-always-on".into())
            .lower()
            .unwrap();
        let heterogeneous = Network::chain(nodes);
        let a = heterogeneous.analyze(BackendId::Markov).unwrap();
        let hot = a.bottleneck_relay().unwrap();
        assert_eq!(hot.analysis.name, "node-1");
        assert_eq!(hot.analysis.radio_duty_cycle, 1.0);
        assert!(
            hot.forwarded_rx_pkts_s < a.per_node[0].forwarded_rx_pkts_s,
            "the hot spot forwards less than n0 — it is the MAC, not the load"
        );
    }

    #[test]
    fn cycles_and_orphans_rejected() {
        let mut net = Network::chain(monitoring_nodes(3, 10.0));
        net.next_hop[0] = NextHop::Node(2); // 0 → 2 → 1 → 0
        let err = net.validate().unwrap_err();
        assert!(err.contains("cycle"), "{err}");

        let mut net = Network::chain(monitoring_nodes(3, 10.0));
        net.next_hop[1] = NextHop::Node(9);
        let err = net.validate().unwrap_err();
        assert!(err.contains("only 3 nodes"), "{err}");

        let mut net = Network::chain(monitoring_nodes(2, 10.0));
        net.next_hop[1] = NextHop::Node(1);
        let err = net.validate().unwrap_err();
        assert!(err.contains("itself"), "{err}");

        let mut net = Network::chain(monitoring_nodes(2, 10.0));
        net.next_hop.pop();
        assert!(net.validate().is_err());
        // A hand-built network that skipped validate() must error from the
        // analysis entry points too, not panic on the short routing table.
        let err = net.analyze(BackendId::Markov).unwrap_err();
        assert!(err.to_string().contains("1 entries for 2 nodes"), "{err}");
        assert!(net.hop_depths().is_err());
        assert!(net.forwarded_rates().is_err());
    }

    #[test]
    fn overloaded_relay_reports_node_name() {
        // 9 leaves at 1.5 ev/s each feeding one relay: effective λ ≈ 13.7
        // exceeds μ = 10 → unstable queue, reported against the relay.
        let nodes = monitoring_nodes(10, 1.0 / 1.5);
        let net = Network::tree(nodes, 9);
        let err = net.analyze(BackendId::Markov).unwrap_err();
        match &err {
            NetworkError::Node { node, .. } => assert_eq!(node, "node-0"),
            other => panic!("expected node error, got {other}"),
        }
        assert!(err.to_string().contains("node-0"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn routed_network_serde_round_trip() {
        let net = Network::tree(monitoring_nodes(3, 5.0), 2);
        let json = serde_json::to_string(&net).unwrap();
        let back: Network = serde_json::from_str(&json).unwrap();
        assert_eq!(back, net);
    }
}
