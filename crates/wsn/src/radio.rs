//! Duty-cycled radio energy model.
//!
//! A low-power-listening MAC: the radio sleeps, waking every `period`
//! seconds for a `listen` window; transmissions and receptions add airtime
//! on top. Power numbers default to a CC2420-class transceiver (synthetic
//! composite of datasheet figures — NOT a measured artifact of the paper,
//! which models the CPU only).

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Radio parameters and per-state power draw.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RadioModel {
    /// Sleep power (mW).
    pub sleep_mw: f64,
    /// Listen/receive power (mW).
    pub listen_mw: f64,
    /// Transmit power (mW).
    pub tx_mw: f64,
    /// Wake-up period of the duty cycle (s).
    pub period_s: f64,
    /// Listen window per wake-up (s).
    pub listen_s: f64,
    /// Airtime per transmitted packet (s).
    pub tx_airtime_s: f64,
    /// Airtime per received packet (s).
    pub rx_airtime_s: f64,
}

impl RadioModel {
    /// CC2420-class defaults at 3 V: sleep ≈ 0.06 mW, listen/RX ≈ 56 mW,
    /// TX (0 dBm) ≈ 52 mW; 128-byte packet at 250 kbps ≈ 4.1 ms airtime;
    /// 100 ms wake-up period with a 5 ms listen window.
    pub fn cc2420_class() -> Self {
        Self {
            sleep_mw: 0.06,
            listen_mw: 56.0,
            tx_mw: 52.0,
            period_s: 0.1,
            listen_s: 0.005,
            tx_airtime_s: 0.0041,
            rx_airtime_s: 0.0041,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.period_s > 0.0) {
            return Err(format!("period must be positive, got {}", self.period_s));
        }
        if !(0.0..=self.period_s).contains(&self.listen_s) {
            return Err(format!(
                "listen window {} must fit in the period {}",
                self.listen_s, self.period_s
            ));
        }
        for (name, v) in [
            ("sleep_mw", self.sleep_mw),
            ("listen_mw", self.listen_mw),
            ("tx_mw", self.tx_mw),
            ("tx_airtime_s", self.tx_airtime_s),
            ("rx_airtime_s", self.rx_airtime_s),
        ] {
            if !(v >= 0.0) || !v.is_finite() {
                return Err(format!("{name} must be >= 0 and finite, got {v}"));
            }
        }
        Ok(())
    }

    /// Fraction of time spent listening due to the duty cycle alone.
    pub fn duty_cycle(&self) -> f64 {
        self.listen_s / self.period_s
    }

    /// Mean radio power (mW) at the given traffic, assuming airtime steals
    /// from sleep time (light-traffic regime; saturates at full-on power).
    pub fn mean_power_mw(&self, tx_packets_per_s: f64, rx_packets_per_s: f64) -> f64 {
        let mut tx_frac = tx_packets_per_s * self.tx_airtime_s;
        let mut rx_frac = rx_packets_per_s * self.rx_airtime_s;
        let air = tx_frac + rx_frac;
        if air > 1.0 {
            // Saturated channel: airtime shares scale proportionally.
            tx_frac /= air;
            rx_frac /= air;
        }
        let listen_frac = self.duty_cycle().min(1.0 - tx_frac - rx_frac);
        let sleep_frac = (1.0 - tx_frac - rx_frac - listen_frac).max(0.0);
        self.tx_mw * tx_frac + self.listen_mw * (rx_frac + listen_frac) + self.sleep_mw * sleep_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let r = RadioModel::cc2420_class();
        r.validate().unwrap();
        assert!((r.duty_cycle() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn idle_radio_draws_duty_cycle_power() {
        let r = RadioModel::cc2420_class();
        let p = r.mean_power_mw(0.0, 0.0);
        // 5% listen at 56 mW + 95% sleep at 0.06 mW ≈ 2.857 mW.
        let expect = 0.05 * 56.0 + 0.95 * 0.06;
        assert!((p - expect).abs() < 1e-9, "{p} vs {expect}");
    }

    #[test]
    fn traffic_increases_power_monotonically() {
        let r = RadioModel::cc2420_class();
        let p0 = r.mean_power_mw(0.0, 0.0);
        let p1 = r.mean_power_mw(10.0, 0.0);
        let p2 = r.mean_power_mw(10.0, 10.0);
        assert!(p0 < p1 && p1 < p2);
    }

    #[test]
    fn saturation_bounded_by_full_on() {
        let r = RadioModel::cc2420_class();
        let p = r.mean_power_mw(1e6, 1e6);
        assert!(p <= r.tx_mw.max(r.listen_mw) + 1e-9);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut r = RadioModel::cc2420_class();
        r.period_s = 0.0;
        assert!(r.validate().is_err());
        let mut r = RadioModel::cc2420_class();
        r.listen_s = 1.0; // longer than the period
        assert!(r.validate().is_err());
        let mut r = RadioModel::cc2420_class();
        r.tx_mw = -1.0;
        assert!(r.validate().is_err());
    }
}
