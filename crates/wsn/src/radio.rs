//! Duty-cycled radio energy models: serializable MAC descriptions
//! ([`RadioSpec`]) lowering to a mean-power evaluation ([`RadioModel`]).
//!
//! The paper models the CPU only, but a mote's lifetime is usually decided
//! at the radio: duty-cycle MAC parameters (how often the radio samples the
//! channel, how senders rendezvous with sleeping receivers) move mean radio
//! power by an order of magnitude. This module makes those parameters
//! first-class model inputs instead of hard-coded constants:
//!
//! * [`RadioSpec`] — a validated, serde-serializable MAC description:
//!   named presets, plain low-power listening ([`RadioSpec::Lpl`]),
//!   full-preamble LPL à la B-MAC ([`RadioSpec::BMac`]), strobed-preamble
//!   LPL à la X-MAC ([`RadioSpec::XMac`]), or raw numbers
//!   ([`RadioSpec::Custom`]).
//! * [`RadioModel`] — the lowered form: per-state powers, a wake-up
//!   period/listen window, and per-packet tx/rx airtime. Its
//!   [`mean_power_mw`](RadioModel::mean_power_mw) evaluation is shared by
//!   every MAC; the specs differ only in how they derive the timing numbers.
//!
//! All power figures are synthetic datasheet composites (the
//! [`cc2420-class`](RadioSpec::Preset) preset is the single source of the
//! CC2420-style numbers) — NOT measured artifacts of the paper.
//!
//! # Examples
//!
//! Lower a B-MAC description and compare idle cost against traffic cost:
//!
//! ```
//! use wsnem_wsn::RadioSpec;
//!
//! let spec = RadioSpec::BMac { check_interval_s: 0.1, preamble_s: 0.1 };
//! let radio = spec.lower().unwrap();
//! // The receiver samples the channel 2.5 ms out of every 100 ms.
//! assert!((radio.duty_cycle() - 0.025).abs() < 1e-12);
//! // Sending costs a full preamble per packet, so traffic is expensive.
//! let idle = radio.mean_power_mw(0.0, 0.0);
//! let busy = radio.mean_power_mw(1.0, 0.0);
//! assert!(busy > 2.0 * idle);
//! ```

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// CC2420-class per-state powers at 3 V (synthetic composite): sleep.
const CC2420_SLEEP_MW: f64 = 0.06;
/// CC2420-class listen/receive power (mW).
const CC2420_LISTEN_MW: f64 = 56.0;
/// CC2420-class transmit power at 0 dBm (mW).
const CC2420_TX_MW: f64 = 52.0;
/// Airtime of a 128-byte packet at 250 kbps (s).
const CC2420_PACKET_AIRTIME_S: f64 = 0.0041;

/// Listen window of one LPL channel sample (s) — the short wake-up the
/// B-MAC/X-MAC lowerings schedule every check interval.
pub const CHANNEL_SAMPLE_S: f64 = 0.0025;

/// The preset [`RadioSpec`] used when a scenario names none.
pub const DEFAULT_RADIO_PRESET: &str = "cc2420-class";

/// Radio parameters and per-state power draw — the lowered form every
/// [`RadioSpec`] evaluates through.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RadioModel {
    /// Sleep power (mW).
    pub sleep_mw: f64,
    /// Listen/receive power (mW).
    pub listen_mw: f64,
    /// Transmit power (mW).
    pub tx_mw: f64,
    /// Wake-up period of the duty cycle (s).
    pub period_s: f64,
    /// Listen window per wake-up (s).
    pub listen_s: f64,
    /// Airtime per transmitted packet (s), MAC overhead included.
    pub tx_airtime_s: f64,
    /// Airtime per received packet (s), MAC overhead included.
    pub rx_airtime_s: f64,
}

/// How a [`RadioModel`] splits time between its states at a given traffic
/// level. The four fractions always sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioTimeSplit {
    /// Fraction of time transmitting.
    pub tx: f64,
    /// Fraction of time receiving packet airtime.
    pub rx: f64,
    /// Fraction of time in the scheduled listen window.
    pub listen: f64,
    /// Fraction of time asleep.
    pub sleep: f64,
}

impl RadioModel {
    /// The `cc2420-class` preset: sleep ≈ 0.06 mW, listen/RX ≈ 56 mW, TX
    /// (0 dBm) ≈ 52 mW at 3 V; 128-byte packet at 250 kbps ≈ 4.1 ms
    /// airtime; 100 ms wake-up period with a 5 ms listen window.
    ///
    /// These numbers are a synthetic composite of datasheet figures and
    /// this constructor is their single source —
    /// [`RadioSpec::Preset`]`("cc2420-class")` (the default radio of every
    /// scenario) lowers to exactly this model, and the LPL/B-MAC/X-MAC
    /// lowerings reuse its power and packet-airtime constants. The paper
    /// itself models only the CPU.
    pub fn cc2420_class() -> Self {
        Self {
            sleep_mw: CC2420_SLEEP_MW,
            listen_mw: CC2420_LISTEN_MW,
            tx_mw: CC2420_TX_MW,
            period_s: 0.1,
            listen_s: 0.005,
            tx_airtime_s: CC2420_PACKET_AIRTIME_S,
            rx_airtime_s: CC2420_PACKET_AIRTIME_S,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.period_s > 0.0) || !self.period_s.is_finite() {
            return Err(format!(
                "period must be positive and finite, got {}",
                self.period_s
            ));
        }
        if !(0.0..=self.period_s).contains(&self.listen_s) || !self.listen_s.is_finite() {
            return Err(format!(
                "listen window {} must fit in the period {}",
                self.listen_s, self.period_s
            ));
        }
        for (name, v) in [
            ("sleep_mw", self.sleep_mw),
            ("listen_mw", self.listen_mw),
            ("tx_mw", self.tx_mw),
            ("tx_airtime_s", self.tx_airtime_s),
            ("rx_airtime_s", self.rx_airtime_s),
        ] {
            if !(v >= 0.0) || !v.is_finite() {
                return Err(format!("{name} must be >= 0 and finite, got {v}"));
            }
        }
        Ok(())
    }

    /// Fraction of time spent listening due to the duty cycle alone
    /// (`listen_s == period_s` is the always-on radio: duty cycle 1).
    pub fn duty_cycle(&self) -> f64 {
        self.listen_s / self.period_s
    }

    /// The ceiling of [`mean_power_mw`](Self::mean_power_mw): the most
    /// expensive always-on state (listening or transmitting).
    pub fn full_on_power_mw(&self) -> f64 {
        self.tx_mw.max(self.listen_mw)
    }

    /// Split time between tx / rx / listen / sleep at the given traffic.
    ///
    /// Airtime steals from sleep first; once the sleep budget is exhausted
    /// it eats into the scheduled listen window (the radio cannot listen and
    /// carry packets at once), and a saturated channel (offered airtime
    /// above 1) scales the tx/rx shares proportionally. Every clamp keeps
    /// the four fractions a simplex, so the derived mean power can never
    /// overshoot [`full_on_power_mw`](Self::full_on_power_mw) — including at
    /// the `listen_s == period_s` (100% duty) boundary, where there is no
    /// sleep to steal and traffic converts listen time directly.
    pub fn time_split(&self, tx_packets_per_s: f64, rx_packets_per_s: f64) -> RadioTimeSplit {
        let mut tx = tx_packets_per_s * self.tx_airtime_s;
        let mut rx = rx_packets_per_s * self.rx_airtime_s;
        let offered = tx + rx;
        if offered > 1.0 {
            // Saturated channel: airtime shares scale proportionally.
            tx /= offered;
            rx /= offered;
        }
        let air = (tx + rx).min(1.0);
        let listen = self.duty_cycle().min(1.0 - air).max(0.0);
        let sleep = (1.0 - air - listen).max(0.0);
        RadioTimeSplit {
            tx,
            rx,
            listen,
            sleep,
        }
    }

    /// Mean radio power (mW) at the given traffic: the per-state powers
    /// weighted by [`time_split`](Self::time_split). Reception is billed at
    /// listen power.
    pub fn mean_power_mw(&self, tx_packets_per_s: f64, rx_packets_per_s: f64) -> f64 {
        let t = self.time_split(tx_packets_per_s, rx_packets_per_s);
        self.tx_mw * t.tx + self.listen_mw * (t.rx + t.listen) + self.sleep_mw * t.sleep
    }
}

/// A serializable, validated duty-cycle MAC description.
///
/// Every variant lowers (via [`RadioSpec::lower`]) to a [`RadioModel`] —
/// the same mean-power evaluation — but derives the timing numbers from
/// MAC-level parameters, so scenarios can sweep and override the quantities
/// deployments actually tune (check intervals, preamble lengths) instead of
/// raw airtime fractions.
///
/// # Examples
///
/// Presets and parametric MACs share one evaluation:
///
/// ```
/// use wsnem_wsn::RadioSpec;
///
/// let default_radio = RadioSpec::default(); // the cc2420-class preset
/// let lpl = RadioSpec::Lpl { period_s: 0.5, listen_s: 0.005 };
/// // A longer wake-up period listens less...
/// assert!(lpl.lower().unwrap().duty_cycle() < default_radio.lower().unwrap().duty_cycle());
/// // ...so it idles cheaper.
/// assert!(
///     lpl.lower().unwrap().mean_power_mw(0.0, 0.0)
///         < default_radio.lower().unwrap().mean_power_mw(0.0, 0.0)
/// );
/// ```
///
/// Invalid MAC parameters are rejected with a named reason:
///
/// ```
/// use wsnem_wsn::RadioSpec;
///
/// // A B-MAC preamble shorter than the check interval cannot guarantee
/// // rendezvous with a sleeping receiver.
/// let bad = RadioSpec::BMac { check_interval_s: 0.2, preamble_s: 0.1 };
/// assert!(bad.validate().unwrap_err().contains("preamble"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum RadioSpec {
    /// A named preset (see [`RadioSpec::preset_names`]): `cc2420-class`
    /// (the historical default), `cc2420-always-on` (duty cycle 1 — the
    /// no-MAC baseline relays sometimes run) and `cc1000-class` (a
    /// Mica2-era byte radio: slower, so packets cost more airtime).
    Preset(String),
    /// Plain low-power listening: wake every `period_s` for a `listen_s`
    /// window; packets carry no MAC overhead (rendezvous is assumed free —
    /// an idealized lower bound the preamble MACs are measured against).
    Lpl {
        /// Wake-up period (s).
        period_s: f64,
        /// Listen window per wake-up (s); `listen_s == period_s` is an
        /// always-on radio.
        listen_s: f64,
    },
    /// B-MAC-style full-preamble LPL: receivers sample the channel for
    /// [`CHANNEL_SAMPLE_S`] every `check_interval_s`; every transmission is
    /// preceded by a `preamble_s`-long preamble (≥ the check interval, so a
    /// sleeping receiver is guaranteed to hear it), and a receiver hears
    /// half the preamble on average before the payload.
    BMac {
        /// Receiver channel-sample period (s).
        check_interval_s: f64,
        /// Transmit preamble length (s); must be ≥ `check_interval_s`.
        preamble_s: f64,
    },
    /// X-MAC-style strobed-preamble LPL: the sender repeats short
    /// `strobe_s` probes until the receiver wakes (half a check interval on
    /// average) and answers with an `ack_s` early acknowledgement, cutting
    /// the receiver's preamble cost to one strobe + ack.
    XMac {
        /// Receiver wake-up period (s).
        check_interval_s: f64,
        /// Length of one preamble strobe (s).
        strobe_s: f64,
        /// Length of the early acknowledgement (s).
        ack_s: f64,
    },
    /// Raw power/timing numbers — a [`RadioModel`] verbatim, for radios the
    /// named MACs do not describe.
    Custom {
        /// Sleep power (mW).
        sleep_mw: f64,
        /// Listen/receive power (mW).
        listen_mw: f64,
        /// Transmit power (mW).
        tx_mw: f64,
        /// Wake-up period (s).
        period_s: f64,
        /// Listen window per wake-up (s).
        listen_s: f64,
        /// Airtime per transmitted packet (s).
        tx_airtime_s: f64,
        /// Airtime per received packet (s).
        rx_airtime_s: f64,
    },
}

impl Default for RadioSpec {
    /// The `cc2420-class` preset — the radio every node used before specs
    /// became configurable, so omitting the spec changes nothing.
    fn default() -> Self {
        RadioSpec::Preset(DEFAULT_RADIO_PRESET.to_owned())
    }
}

impl RadioSpec {
    /// The names [`RadioSpec::Preset`] accepts.
    pub fn preset_names() -> &'static [&'static str] {
        &["cc2420-class", "cc2420-always-on", "cc1000-class"]
    }

    /// Short label for reports and CSV columns: the preset name, the MAC
    /// family (`lpl` / `b-mac` / `x-mac`) or `custom`.
    pub fn label(&self) -> &str {
        match self {
            RadioSpec::Preset(name) => name,
            RadioSpec::Lpl { .. } => "lpl",
            RadioSpec::BMac { .. } => "b-mac",
            RadioSpec::XMac { .. } => "x-mac",
            RadioSpec::Custom { .. } => "custom",
        }
    }

    /// Lower the MAC description to the shared [`RadioModel`] evaluation.
    ///
    /// The lowering formulas (also documented in the README):
    ///
    /// * **LPL** — duty cycle `listen_s / period_s`, packet airtime
    ///   unchanged.
    /// * **B-MAC** — listen [`CHANNEL_SAMPLE_S`] per `check_interval_s`;
    ///   tx airtime = `preamble_s` + packet; rx airtime = `preamble_s / 2`
    ///   + packet (the receiver wakes uniformly within the preamble).
    /// * **X-MAC** — listen `strobe_s + ack_s` per `check_interval_s`;
    ///   tx airtime = `check_interval_s / 2` (expected strobing until the
    ///   receiver wakes) + `ack_s` + packet; rx airtime = `strobe_s +
    ///   ack_s` + packet.
    ///
    /// Fails with a human-readable reason when the parameters are invalid
    /// or the preset name is unknown.
    pub fn lower(&self) -> Result<RadioModel, String> {
        let model = match self {
            RadioSpec::Preset(name) => match name.as_str() {
                "cc2420-class" => RadioModel::cc2420_class(),
                "cc2420-always-on" => RadioModel {
                    period_s: 1.0,
                    listen_s: 1.0,
                    ..RadioModel::cc2420_class()
                },
                // Mica2-era CC1000-class byte radio (synthetic composite):
                // lower power but ~18x slower, so packets cost ~7.5 ms.
                "cc1000-class" => RadioModel {
                    sleep_mw: 0.003,
                    listen_mw: 28.8,
                    tx_mw: 31.2,
                    period_s: 0.1,
                    listen_s: 0.005,
                    tx_airtime_s: 0.0075,
                    rx_airtime_s: 0.0075,
                },
                other => {
                    return Err(format!(
                        "unknown radio preset `{other}` (available: {})",
                        Self::preset_names().join(", ")
                    ))
                }
            },
            RadioSpec::Lpl { period_s, listen_s } => RadioModel {
                period_s: *period_s,
                listen_s: *listen_s,
                ..RadioModel::cc2420_class()
            },
            RadioSpec::BMac {
                check_interval_s,
                preamble_s,
            } => {
                if !(*check_interval_s > 0.0) || !check_interval_s.is_finite() {
                    return Err(format!(
                        "b-mac: check interval must be positive and finite, got {check_interval_s}"
                    ));
                }
                if !(*preamble_s >= *check_interval_s) || !preamble_s.is_finite() {
                    return Err(format!(
                        "b-mac: preamble ({preamble_s} s) must cover at least one check \
                         interval ({check_interval_s} s) to guarantee rendezvous with a \
                         sleeping receiver"
                    ));
                }
                RadioModel {
                    period_s: *check_interval_s,
                    listen_s: CHANNEL_SAMPLE_S.min(*check_interval_s),
                    tx_airtime_s: preamble_s + CC2420_PACKET_AIRTIME_S,
                    rx_airtime_s: preamble_s / 2.0 + CC2420_PACKET_AIRTIME_S,
                    ..RadioModel::cc2420_class()
                }
            }
            RadioSpec::XMac {
                check_interval_s,
                strobe_s,
                ack_s,
            } => {
                if !(*check_interval_s > 0.0) || !check_interval_s.is_finite() {
                    return Err(format!(
                        "x-mac: check interval must be positive and finite, got {check_interval_s}"
                    ));
                }
                if !(*strobe_s > 0.0) || !(*ack_s >= 0.0) {
                    return Err(format!(
                        "x-mac: strobe must be > 0 and ack >= 0, got strobe {strobe_s}, \
                         ack {ack_s}"
                    ));
                }
                if !(strobe_s + ack_s <= *check_interval_s) {
                    return Err(format!(
                        "x-mac: strobe + ack ({} s) must fit in the check interval \
                         ({check_interval_s} s)",
                        strobe_s + ack_s
                    ));
                }
                RadioModel {
                    period_s: *check_interval_s,
                    listen_s: strobe_s + ack_s,
                    tx_airtime_s: check_interval_s / 2.0 + ack_s + CC2420_PACKET_AIRTIME_S,
                    rx_airtime_s: strobe_s + ack_s + CC2420_PACKET_AIRTIME_S,
                    ..RadioModel::cc2420_class()
                }
            }
            RadioSpec::Custom {
                sleep_mw,
                listen_mw,
                tx_mw,
                period_s,
                listen_s,
                tx_airtime_s,
                rx_airtime_s,
            } => RadioModel {
                sleep_mw: *sleep_mw,
                listen_mw: *listen_mw,
                tx_mw: *tx_mw,
                period_s: *period_s,
                listen_s: *listen_s,
                tx_airtime_s: *tx_airtime_s,
                rx_airtime_s: *rx_airtime_s,
            },
        };
        model
            .validate()
            .map_err(|e| format!("{}: {e}", self.label()))?;
        Ok(model)
    }

    /// Validate without keeping the lowered model.
    pub fn validate(&self) -> Result<(), String> {
        self.lower().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let r = RadioModel::cc2420_class();
        r.validate().unwrap();
        assert!((r.duty_cycle() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn idle_radio_draws_duty_cycle_power() {
        let r = RadioModel::cc2420_class();
        let p = r.mean_power_mw(0.0, 0.0);
        // 5% listen at 56 mW + 95% sleep at 0.06 mW ≈ 2.857 mW.
        let expect = 0.05 * 56.0 + 0.95 * 0.06;
        assert!((p - expect).abs() < 1e-9, "{p} vs {expect}");
    }

    #[test]
    fn traffic_increases_power_monotonically() {
        let r = RadioModel::cc2420_class();
        let p0 = r.mean_power_mw(0.0, 0.0);
        let p1 = r.mean_power_mw(10.0, 0.0);
        let p2 = r.mean_power_mw(10.0, 10.0);
        assert!(p0 < p1 && p1 < p2);
    }

    #[test]
    fn saturation_bounded_by_full_on() {
        let r = RadioModel::cc2420_class();
        let p = r.mean_power_mw(1e6, 1e6);
        assert!(p <= r.full_on_power_mw() + 1e-9);
    }

    #[test]
    fn time_split_is_a_simplex() {
        let r = RadioModel::cc2420_class();
        for (tx, rx) in [(0.0, 0.0), (5.0, 2.0), (100.0, 100.0), (1e7, 3.0)] {
            let t = r.time_split(tx, rx);
            assert!(
                (t.tx + t.rx + t.listen + t.sleep - 1.0).abs() < 1e-9,
                "{t:?}"
            );
            for f in [t.tx, t.rx, t.listen, t.sleep] {
                assert!((0.0..=1.0).contains(&f), "{t:?}");
            }
        }
    }

    /// The boundary the validator explicitly allows: `listen_s == period_s`
    /// (100% duty). There is no sleep budget to steal airtime from, so the
    /// clamp must convert listen time into airtime directly and the mean
    /// power must stay inside the per-state power envelope at every traffic
    /// level — the regression the old implicit `.max(0.0)` clamp never
    /// pinned.
    #[test]
    fn always_on_boundary_never_overshoots_full_on_power() {
        let mut r = RadioModel::cc2420_class();
        r.listen_s = r.period_s; // duty cycle 1.0 — accepted by validate()
        r.validate().unwrap();
        assert_eq!(r.duty_cycle(), 1.0);
        // Idle: pure listening.
        assert!((r.mean_power_mw(0.0, 0.0) - r.listen_mw).abs() < 1e-9);
        let floor = r.tx_mw.min(r.listen_mw);
        for tx in [0.0, 1.0, 50.0, 200.0, 243.9, 1e4, 1e8] {
            for rx in [0.0, 10.0, 500.0] {
                let p = r.mean_power_mw(tx, rx);
                assert!(
                    p <= r.full_on_power_mw() + 1e-9 && p >= floor - 1e-9,
                    "p = {p} outside [{floor}, {}] at tx {tx}, rx {rx}",
                    r.full_on_power_mw()
                );
                let t = r.time_split(tx, rx);
                assert!(t.sleep.abs() < 1e-12, "no sleep at 100% duty: {t:?}");
                assert!(t.listen >= 0.0, "clamped listen window: {t:?}");
            }
        }
        // Saturated all-tx: exactly the transmit power.
        assert!((r.mean_power_mw(1e9, 0.0) - r.tx_mw).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut r = RadioModel::cc2420_class();
        r.period_s = 0.0;
        assert!(r.validate().is_err());
        let mut r = RadioModel::cc2420_class();
        r.listen_s = 1.0; // longer than the period
        assert!(r.validate().is_err());
        let mut r = RadioModel::cc2420_class();
        r.tx_mw = -1.0;
        assert!(r.validate().is_err());
        // Non-finite timing must fail validation, not produce a NaN duty
        // cycle (the in-workspace TOML parser accepts `inf`, so these are
        // user-reachable through schema-v4 scenario files).
        let mut r = RadioModel::cc2420_class();
        r.period_s = f64::INFINITY;
        r.listen_s = f64::INFINITY;
        assert!(r.validate().is_err());
        assert!(RadioSpec::Lpl {
            period_s: f64::INFINITY,
            listen_s: f64::INFINITY,
        }
        .validate()
        .is_err());
        let mut r = RadioModel::cc2420_class();
        r.period_s = f64::NAN;
        assert!(r.validate().is_err());
        let mut r = RadioModel::cc2420_class();
        r.listen_s = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn default_spec_is_the_historical_radio() {
        let spec = RadioSpec::default();
        assert_eq!(spec.label(), "cc2420-class");
        assert_eq!(spec.lower().unwrap(), RadioModel::cc2420_class());
    }

    #[test]
    fn every_preset_lowers_and_validates() {
        for name in RadioSpec::preset_names() {
            let spec = RadioSpec::Preset((*name).to_owned());
            let model = spec.lower().unwrap_or_else(|e| panic!("{name}: {e}"));
            model.validate().unwrap();
            assert_eq!(spec.label(), *name);
        }
    }

    #[test]
    fn unknown_preset_lists_the_alternatives() {
        let err = RadioSpec::Preset("cc9999".into()).lower().unwrap_err();
        assert!(err.contains("unknown radio preset `cc9999`"), "{err}");
        for name in RadioSpec::preset_names() {
            assert!(err.contains(name), "{err}");
        }
    }

    #[test]
    fn bmac_lowering_charges_the_preamble() {
        let spec = RadioSpec::BMac {
            check_interval_s: 0.1,
            preamble_s: 0.1,
        };
        let m = spec.lower().unwrap();
        assert!((m.period_s - 0.1).abs() < 1e-12);
        assert!((m.listen_s - CHANNEL_SAMPLE_S).abs() < 1e-12);
        assert!((m.tx_airtime_s - (0.1 + 0.0041)).abs() < 1e-12);
        assert!((m.rx_airtime_s - (0.05 + 0.0041)).abs() < 1e-12);
        // Preamble shorter than the check interval: no rendezvous guarantee.
        assert!(RadioSpec::BMac {
            check_interval_s: 0.1,
            preamble_s: 0.05,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn xmac_strobing_beats_bmac_on_tx_airtime() {
        let c = 0.25;
        let bmac = RadioSpec::BMac {
            check_interval_s: c,
            preamble_s: c,
        }
        .lower()
        .unwrap();
        let xmac = RadioSpec::XMac {
            check_interval_s: c,
            strobe_s: 0.005,
            ack_s: 0.002,
        }
        .lower()
        .unwrap();
        // Strobing waits half a check interval on average instead of
        // transmitting a full preamble every time.
        assert!(xmac.tx_airtime_s < bmac.tx_airtime_s);
        // And the receiver hears one strobe, not half the preamble.
        assert!(xmac.rx_airtime_s < bmac.rx_airtime_s);
        // Invalid: strobe + ack larger than the check interval.
        assert!(RadioSpec::XMac {
            check_interval_s: 0.01,
            strobe_s: 0.009,
            ack_s: 0.002,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn lpl_duty_cycle_follows_parameters() {
        let spec = RadioSpec::Lpl {
            period_s: 0.5,
            listen_s: 0.01,
        };
        let m = spec.lower().unwrap();
        assert!((m.duty_cycle() - 0.02).abs() < 1e-12);
        // listen > period is rejected through the lowered model's validate.
        assert!(RadioSpec::Lpl {
            period_s: 0.1,
            listen_s: 0.2,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn custom_spec_is_verbatim() {
        let spec = RadioSpec::Custom {
            sleep_mw: 0.01,
            listen_mw: 30.0,
            tx_mw: 40.0,
            period_s: 0.2,
            listen_s: 0.004,
            tx_airtime_s: 0.002,
            rx_airtime_s: 0.003,
        };
        let m = spec.lower().unwrap();
        assert_eq!(m.listen_mw, 30.0);
        assert_eq!(m.rx_airtime_s, 0.003);
        assert_eq!(spec.label(), "custom");
    }

    #[cfg(feature = "serde")]
    #[test]
    fn specs_round_trip_through_serde() {
        let specs = vec![
            RadioSpec::default(),
            RadioSpec::Preset("cc1000-class".into()),
            RadioSpec::Lpl {
                period_s: 0.25,
                listen_s: 0.005,
            },
            RadioSpec::BMac {
                check_interval_s: 0.1,
                preamble_s: 0.12,
            },
            RadioSpec::XMac {
                check_interval_s: 0.5,
                strobe_s: 0.004,
                ack_s: 0.001,
            },
            RadioSpec::Custom {
                sleep_mw: 0.02,
                listen_mw: 20.0,
                tx_mw: 25.0,
                period_s: 1.0,
                listen_s: 0.1,
                tx_airtime_s: 0.01,
                rx_airtime_s: 0.01,
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: RadioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }
}
