//! Star-topology sensor networks.
//!
//! The simplest deployment shape: heterogeneous leaves reporting straight
//! to a mains-powered sink. For multi-hop routing with forwarding-load
//! propagation see [`crate::topology`], whose star constructor reproduces
//! these numbers exactly.
//!
//! # Examples
//!
//! ```
//! use wsnem_wsn::{BackendId, StarNetwork};
//!
//! let net = StarNetwork::homogeneous(4, 10.0);
//! let a = net.analyze(BackendId::Markov).unwrap();
//! // Identical nodes die together: first death == mean lifetime.
//! assert!((a.first_death_days() - a.mean_lifetime_days()).abs() < 1e-9);
//! ```

use wsnem_core::BackendId;

use crate::node::{NodeAnalysis, NodeConfig};

/// A star network: leaf nodes reporting to a mains-powered sink (the sink is
/// not modeled; leaves transmit directly to it).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StarNetwork {
    /// The leaf nodes.
    pub nodes: Vec<NodeConfig>,
}

/// Evaluated network energy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkAnalysis {
    /// Per-node results, in configuration order.
    pub per_node: Vec<NodeAnalysis>,
}

impl StarNetwork {
    /// A homogeneous star of `n` monitoring nodes at the given sensing
    /// period.
    pub fn homogeneous(n: usize, period_s: f64) -> Self {
        Self {
            nodes: (0..n)
                .map(|i| NodeConfig::monitoring(format!("node-{i}"), period_s))
                .collect(),
        }
    }

    /// Analyze every node, parallelizing across all cores.
    pub fn analyze(&self, backend: BackendId) -> Result<NetworkAnalysis, wsnem_core::CoreError> {
        self.analyze_with_threads(backend, None)
    }

    /// Analyze every node on a pinned number of worker threads (`None` =
    /// available parallelism). Callers that already parallelize across
    /// networks/scenarios pass `Some(1)` to avoid oversubscribing cores.
    pub fn analyze_with_threads(
        &self,
        backend: BackendId,
        threads: Option<usize>,
    ) -> Result<NetworkAnalysis, wsnem_core::CoreError> {
        let results = parallel_node_map(self.nodes.len(), threads, |i| {
            self.nodes[i].analyze(backend)
        });
        let mut per_node = Vec::with_capacity(self.nodes.len());
        for r in results {
            per_node.push(r?);
        }
        Ok(NetworkAnalysis { per_node })
    }
}

/// Evaluate `f(0..n)` across a scoped thread pool, preserving index order.
/// `threads = None` uses available parallelism; callers that already
/// parallelize at a higher level pass `Some(1)`.
pub(crate) fn parallel_node_map<T, F>(n: usize, threads: Option<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (k, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (j, slot) in chunk_slots.iter_mut().enumerate() {
                    *slot = Some(f(k * chunk + j));
                }
            });
        }
    });
    // `chunks_mut` partitions the whole slice, so every slot was written.
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(value) => value,
            None => unreachable!("index left unevaluated"),
        })
        .collect()
}

impl NetworkAnalysis {
    /// Lifetime until the first node dies (days) — the usual WSN lifetime
    /// metric.
    pub fn first_death_days(&self) -> f64 {
        self.per_node
            .iter()
            .map(|n| n.lifetime_days)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean node lifetime (days).
    pub fn mean_lifetime_days(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node.iter().map(|n| n.lifetime_days).sum::<f64>() / self.per_node.len() as f64
    }

    /// Total network power (mW).
    pub fn total_power_mw(&self) -> f64 {
        self.per_node.iter().map(|n| n.total_power_mw).sum()
    }

    /// The node with the shortest lifetime.
    pub fn bottleneck(&self) -> Option<&NodeAnalysis> {
        self.per_node
            .iter()
            .min_by(|a, b| a.lifetime_days.total_cmp(&b.lifetime_days))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_star_uniform_lifetimes() {
        let net = StarNetwork::homogeneous(4, 10.0);
        let a = net.analyze(BackendId::Markov).unwrap();
        assert_eq!(a.per_node.len(), 4);
        let first = a.first_death_days();
        let mean = a.mean_lifetime_days();
        assert!(
            (first - mean).abs() < 1e-9,
            "homogeneous nodes die together"
        );
        assert!(a.total_power_mw() > 0.0);
        assert!(a.bottleneck().is_some());
    }

    #[test]
    fn heterogeneous_bottleneck_is_busiest() {
        let mut net = StarNetwork::homogeneous(3, 30.0);
        net.nodes[1] = NodeConfig::monitoring("hot", 0.5);
        let a = net.analyze(BackendId::Markov).unwrap();
        assert_eq!(a.bottleneck().unwrap().name, "hot");
        assert!(a.first_death_days() < a.mean_lifetime_days());
    }

    #[test]
    fn empty_network() {
        let net = StarNetwork { nodes: vec![] };
        let a = net.analyze(BackendId::Markov).unwrap();
        assert_eq!(a.mean_lifetime_days(), 0.0);
        assert!(a.first_death_days().is_infinite());
        assert!(a.bottleneck().is_none());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn network_serde_round_trip() {
        let mut net = StarNetwork::homogeneous(2, 10.0);
        net.nodes[1].rx_rate = 0.5;
        let json = serde_json::to_string(&net).unwrap();
        let back: StarNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(back, net);
    }
}
