//! Power-Down-Threshold tuning — answering the design question behind the
//! paper's Fig. 5: *which `T` minimizes energy for my workload?*
//!
//! For the PXA271's state powers, energy is monotone increasing in `T`
//! (idle burns 88 mW vs 17 mW standby and power-up costs are tiny at
//! D = 1 ms), so the optimum sits at small `T`. With a large Power-Up Delay
//! or a high arrival rate the trade-off inverts — waking costs more than
//! idling — and the optimizer finds an interior or `T → ∞`-ish optimum.

use wsnem_core::{CpuModel, CpuModelParams, MarkovCpuModel, PetriCpuModel};
use wsnem_energy::PowerProfile;

/// The outcome of a threshold search.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdChoice {
    /// The evaluated candidate thresholds.
    pub candidates: Vec<f64>,
    /// Mean power (mW) at each candidate.
    pub mean_power_mw: Vec<f64>,
    /// Index of the best candidate.
    pub best_index: usize,
}

impl ThresholdChoice {
    /// The chosen threshold (s).
    pub fn best_threshold(&self) -> f64 {
        self.candidates[self.best_index]
    }

    /// Mean power at the chosen threshold (mW).
    pub fn best_power_mw(&self) -> f64 {
        self.mean_power_mw[self.best_index]
    }
}

/// Search `candidates` for the threshold minimizing mean power.
///
/// Uses the closed-form Markov model when the Power-Up Delay is small
/// (`λD ≤ 0.05`, where it is essentially exact) and the Petri net otherwise
/// — putting the paper's accuracy finding to work.
pub fn optimize_threshold(
    params: CpuModelParams,
    profile: &PowerProfile,
    candidates: &[f64],
) -> Result<ThresholdChoice, wsnem_core::CoreError> {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let analytic_ok = params.lambda * params.power_up_delay <= 0.05;
    let mut powers = Vec::with_capacity(candidates.len());
    for &t in candidates {
        let p = params.with_power_down_threshold(t);
        let eval = if analytic_ok {
            MarkovCpuModel::new(p).evaluate()?
        } else {
            PetriCpuModel::new(p).evaluate()?
        };
        powers.push(eval.mean_power_mw(profile));
    }
    // `candidates` is asserted non-empty above, so a minimum always exists.
    let Some(best_index) = powers
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
    else {
        unreachable!("non-empty candidates produce a minimum")
    };
    Ok(ThresholdChoice {
        candidates: candidates.to_vec(),
        mean_power_mw: powers,
        best_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_threshold_wins_for_pxa271_light_load() {
        // Fig. 5 regime: energy rises with T, so the smallest candidate wins.
        let params = CpuModelParams::paper_defaults();
        let choice =
            optimize_threshold(params, &PowerProfile::pxa271(), &[0.05, 0.2, 0.5, 1.0]).unwrap();
        assert_eq!(choice.best_threshold(), 0.05);
        assert!(choice.best_power_mw() < choice.mean_power_mw[3]);
        // Power is monotone over the candidates in this regime.
        for w in choice.mean_power_mw.windows(2) {
            assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn expensive_wakeups_favor_staying_awake() {
        // Make power-up painful (D = 2 s at 192 mW) and idle cheap relative
        // to cycling: larger T should beat T ≈ 0.
        let params = CpuModelParams::paper_defaults()
            .with_power_up_delay(2.0)
            .with_replications(8)
            .with_horizon(4000.0)
            .with_warmup(200.0);
        let choice = optimize_threshold(params, &PowerProfile::pxa271(), &[0.0, 5.0]).unwrap();
        assert_eq!(
            choice.best_threshold(),
            5.0,
            "powers: {:?}",
            choice.mean_power_mw
        );
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let _ = optimize_threshold(
            CpuModelParams::paper_defaults(),
            &PowerProfile::pxa271(),
            &[],
        );
    }
}
