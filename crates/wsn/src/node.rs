//! A sensor node: sensing workload → CPU model + radio traffic + battery.

use wsnem_core::{
    CpuModel, CpuModelParams, DesCpuModel, MarkovCpuModel, PetriCpuModel, PhaseCpuModel,
};
use wsnem_energy::{Battery, PowerProfile, StateFractions};

use crate::radio::RadioModel;

/// Which CPU model evaluates the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuBackend {
    /// Closed-form supplementary-variable model (instant; small-D regime).
    Markov,
    /// Erlang-phase CTMC (analytic AND accurate for large delays; needs
    /// strictly positive `T` and `D`).
    ErlangPhase,
    /// EDSPN simulation (accurate for any delay).
    PetriNet,
    /// Discrete-event simulation (ground truth).
    Des,
}

/// Node configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeConfig {
    /// Human-readable node name.
    pub name: String,
    /// Sensing events per second; each event is one CPU job and (optionally)
    /// one transmitted packet.
    pub event_rate: f64,
    /// CPU parameters (λ is overridden by `event_rate`).
    pub cpu: CpuModelParams,
    /// CPU power profile.
    pub cpu_profile: PowerProfile,
    /// Radio model.
    pub radio: RadioModel,
    /// Packets transmitted per sensing event.
    pub tx_per_event: f64,
    /// Packets received per second (e.g. forwarded traffic).
    pub rx_rate: f64,
    /// Battery.
    pub battery: Battery,
}

impl NodeConfig {
    /// A periodic environmental-monitoring node (habitat-monitoring style):
    /// one reading per `period_s`, one packet per reading, PXA271 CPU,
    /// CC2420-class radio, two AA cells.
    pub fn monitoring(name: impl Into<String>, period_s: f64) -> Self {
        Self {
            name: name.into(),
            event_rate: 1.0 / period_s,
            cpu: CpuModelParams::paper_defaults(),
            cpu_profile: PowerProfile::pxa271(),
            radio: RadioModel::cc2420_class(),
            tx_per_event: 1.0,
            rx_rate: 0.0,
            battery: Battery::two_aa(),
        }
    }

    /// Effective CPU parameters (event rate wired into λ).
    pub fn cpu_params(&self) -> CpuModelParams {
        self.cpu.with_lambda(self.event_rate)
    }

    /// Packets per second this node originates itself (excluding traffic it
    /// forwards for others).
    pub fn own_tx_rate(&self) -> f64 {
        self.event_rate * self.tx_per_event
    }
}

/// Evaluated node energy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnalysis {
    /// Node name.
    pub name: String,
    /// CPU steady-state occupancy.
    pub cpu_fractions: StateFractions,
    /// Mean CPU power (mW).
    pub cpu_power_mw: f64,
    /// Mean radio power (mW).
    pub radio_power_mw: f64,
    /// Total mean power (mW).
    pub total_power_mw: f64,
    /// Expected battery lifetime (days).
    pub lifetime_days: f64,
}

impl NodeConfig {
    /// Evaluate the node with the chosen CPU backend.
    pub fn analyze(&self, backend: CpuBackend) -> Result<NodeAnalysis, wsnem_core::CoreError> {
        self.analyze_with_forwarding(backend, 0.0)
    }

    /// Evaluate the node as a relay carrying `forwarded_rx` extra packets
    /// per second on top of its own sensing work: each forwarded packet is
    /// one additional CPU job, one radio reception *and* one retransmission.
    /// `forwarded_rx = 0` is exactly [`NodeConfig::analyze`].
    pub fn analyze_with_forwarding(
        &self,
        backend: CpuBackend,
        forwarded_rx: f64,
    ) -> Result<NodeAnalysis, wsnem_core::CoreError> {
        let params = self.cpu.with_forwarding(self.event_rate, forwarded_rx);
        let eval = match backend {
            CpuBackend::Markov => MarkovCpuModel::new(params).evaluate()?,
            CpuBackend::ErlangPhase => PhaseCpuModel::new(params).evaluate()?,
            CpuBackend::PetriNet => PetriCpuModel::new(params).evaluate()?,
            CpuBackend::Des => DesCpuModel::new(params).evaluate()?,
        };
        let cpu_power = self.cpu_profile.mean_power_mw(&eval.fractions);
        let radio_power = self.radio.mean_power_mw(
            self.own_tx_rate() + forwarded_rx,
            self.rx_rate + forwarded_rx,
        );
        let total = cpu_power + radio_power;
        Ok(NodeAnalysis {
            name: self.name.clone(),
            cpu_fractions: eval.fractions,
            cpu_power_mw: cpu_power,
            radio_power_mw: radio_power,
            total_power_mw: total,
            lifetime_days: self.battery.lifetime_days(total),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitoring_node_analyzes() {
        let node = NodeConfig::monitoring("n0", 10.0);
        let a = node.analyze(CpuBackend::Markov).unwrap();
        assert!(a.cpu_fractions.is_normalized(1e-9));
        assert!(a.cpu_power_mw > 0.0);
        assert!(a.radio_power_mw > 0.0);
        assert!((a.total_power_mw - a.cpu_power_mw - a.radio_power_mw).abs() < 1e-12);
        assert!(a.lifetime_days > 0.0 && a.lifetime_days.is_finite());
        assert_eq!(a.name, "n0");
    }

    #[test]
    fn backends_agree_for_small_delay() {
        let mut node = NodeConfig::monitoring("n", 5.0);
        node.cpu = node
            .cpu
            .with_replications(6)
            .with_horizon(3000.0)
            .with_warmup(100.0);
        let m = node.analyze(CpuBackend::Markov).unwrap();
        let e = node.analyze(CpuBackend::ErlangPhase).unwrap();
        let p = node.analyze(CpuBackend::PetriNet).unwrap();
        let d = node.analyze(CpuBackend::Des).unwrap();
        assert!(
            m.cpu_fractions.mean_abs_delta_pct(&p.cpu_fractions) < 2.0,
            "markov vs pn"
        );
        assert!(
            m.cpu_fractions.mean_abs_delta_pct(&d.cpu_fractions) < 2.0,
            "markov vs des"
        );
        assert!(
            m.cpu_fractions.mean_abs_delta_pct(&e.cpu_fractions) < 2.0,
            "markov vs erlang-phase"
        );
    }

    #[test]
    fn busier_node_dies_sooner() {
        let lazy = NodeConfig::monitoring("lazy", 60.0)
            .analyze(CpuBackend::Markov)
            .unwrap();
        let busy = NodeConfig::monitoring("busy", 0.5)
            .analyze(CpuBackend::Markov)
            .unwrap();
        assert!(lazy.lifetime_days > busy.lifetime_days);
    }

    #[test]
    fn event_rate_overrides_lambda() {
        let node = NodeConfig::monitoring("n", 4.0);
        assert!((node.cpu_params().lambda - 0.25).abs() < 1e-12);
    }
}
