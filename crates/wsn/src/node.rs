//! A sensor node: sensing workload → CPU model + radio traffic + battery.
//!
//! [`NodeConfig`] bundles everything one mote needs for an energy verdict —
//! a sensing rate driving the CPU queue, a CPU power profile, a
//! [`RadioModel`] (usually lowered from a [`crate::RadioSpec`]) and a
//! battery — and [`NodeConfig::analyze`] evaluates it with any registered
//! CPU backend into a [`NodeAnalysis`]: per-state CPU occupancy, CPU and
//! radio mean power, and the expected battery lifetime.
//!
//! # Examples
//!
//! ```
//! use wsnem_wsn::{BackendId, NodeConfig, RadioSpec};
//!
//! // One reading every 10 s on the paper's PXA271, CC2420-class radio.
//! let mut node = NodeConfig::monitoring("n0", 10.0);
//! let base = node.analyze(BackendId::Markov).unwrap();
//!
//! // Re-fit the radio with a slower LPL wake-up: less idle listening.
//! node.radio = RadioSpec::Lpl { period_s: 0.5, listen_s: 0.005 }
//!     .lower()
//!     .unwrap();
//! let tuned = node.analyze(BackendId::Markov).unwrap();
//! assert!(tuned.radio_power_mw < base.radio_power_mw);
//! assert!(tuned.lifetime_days > base.lifetime_days);
//! ```

use wsnem_core::{backend, BackendId, BackendRegistry, CpuModelParams, EvalOptions};
use wsnem_energy::{Battery, PowerProfile, StateFractions};

use crate::radio::RadioModel;

/// Deprecated alias of [`BackendId`], kept so pre-registry code (and the
/// scenario schema) compiles unchanged. Use [`BackendId`] in new code — node
/// analysis now dispatches through the [`wsnem_core::BackendRegistry`]
/// instead of matching on this enum.
pub type CpuBackend = BackendId;

/// Node configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeConfig {
    /// Human-readable node name.
    pub name: String,
    /// Sensing events per second; each event is one CPU job and (optionally)
    /// one transmitted packet.
    pub event_rate: f64,
    /// CPU parameters (λ is overridden by `event_rate`).
    pub cpu: CpuModelParams,
    /// CPU power profile.
    pub cpu_profile: PowerProfile,
    /// Radio model.
    pub radio: RadioModel,
    /// Packets transmitted per sensing event.
    pub tx_per_event: f64,
    /// Packets received per second (e.g. forwarded traffic).
    pub rx_rate: f64,
    /// Battery.
    pub battery: Battery,
}

impl NodeConfig {
    /// A periodic environmental-monitoring node (habitat-monitoring style):
    /// one reading per `period_s`, one packet per reading, PXA271 CPU,
    /// CC2420-class radio, two AA cells.
    pub fn monitoring(name: impl Into<String>, period_s: f64) -> Self {
        Self {
            name: name.into(),
            event_rate: 1.0 / period_s,
            cpu: CpuModelParams::paper_defaults(),
            cpu_profile: PowerProfile::pxa271(),
            radio: RadioModel::cc2420_class(),
            tx_per_event: 1.0,
            rx_rate: 0.0,
            battery: Battery::two_aa(),
        }
    }

    /// Effective CPU parameters (event rate wired into λ).
    pub fn cpu_params(&self) -> CpuModelParams {
        self.cpu.with_lambda(self.event_rate)
    }

    /// Packets per second this node originates itself (excluding traffic it
    /// forwards for others).
    pub fn own_tx_rate(&self) -> f64 {
        self.event_rate * self.tx_per_event
    }
}

/// Evaluated node energy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAnalysis {
    /// Node name.
    pub name: String,
    /// CPU steady-state occupancy.
    pub cpu_fractions: StateFractions,
    /// Mean CPU power (mW).
    pub cpu_power_mw: f64,
    /// Mean radio power (mW).
    pub radio_power_mw: f64,
    /// The radio's scheduled duty cycle (listen window over wake-up
    /// period), before traffic airtime — the MAC knob the radio layer
    /// tunes.
    pub radio_duty_cycle: f64,
    /// Total mean power (mW).
    pub total_power_mw: f64,
    /// Expected battery lifetime (days).
    pub lifetime_days: f64,
}

impl NodeConfig {
    /// Evaluate the node with the chosen CPU backend (via the built-in
    /// solver registry with default options).
    pub fn analyze(&self, backend: BackendId) -> Result<NodeAnalysis, wsnem_core::CoreError> {
        self.analyze_with_forwarding(backend, 0.0)
    }

    /// Evaluate the node as a relay carrying `forwarded_rx` extra packets
    /// per second on top of its own sensing work: each forwarded packet is
    /// one additional CPU job, one radio reception *and* one retransmission.
    /// `forwarded_rx = 0` is exactly [`NodeConfig::analyze`].
    pub fn analyze_with_forwarding(
        &self,
        backend: BackendId,
        forwarded_rx: f64,
    ) -> Result<NodeAnalysis, wsnem_core::CoreError> {
        self.analyze_with(
            backend::global(),
            backend,
            &EvalOptions::default(),
            forwarded_rx,
        )
    }

    /// Full-control evaluation: an explicit solver registry (e.g. one with
    /// custom backends registered) and per-evaluation [`EvalOptions`]
    /// (seed/replication overrides, a non-exponential service distribution
    /// for the backends whose capabilities allow it).
    pub fn analyze_with(
        &self,
        registry: &BackendRegistry,
        backend: BackendId,
        opts: &EvalOptions,
        forwarded_rx: f64,
    ) -> Result<NodeAnalysis, wsnem_core::CoreError> {
        let params = self.cpu.with_forwarding(self.event_rate, forwarded_rx);
        let eval = registry.solve(backend, &params, opts)?;
        let cpu_power = self.cpu_profile.mean_power_mw(&eval.fractions);
        let radio_power = self.radio.mean_power_mw(
            self.own_tx_rate() + forwarded_rx,
            self.rx_rate + forwarded_rx,
        );
        let total = cpu_power + radio_power;
        Ok(NodeAnalysis {
            name: self.name.clone(),
            cpu_fractions: eval.fractions,
            cpu_power_mw: cpu_power,
            radio_power_mw: radio_power,
            radio_duty_cycle: self.radio.duty_cycle().min(1.0),
            total_power_mw: total,
            lifetime_days: self.battery.lifetime_days(total),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitoring_node_analyzes() {
        let node = NodeConfig::monitoring("n0", 10.0);
        let a = node.analyze(BackendId::Markov).unwrap();
        assert!(a.cpu_fractions.is_normalized(1e-9));
        assert!(a.cpu_power_mw > 0.0);
        assert!(a.radio_power_mw > 0.0);
        assert!((a.radio_duty_cycle - 0.05).abs() < 1e-12);
        assert!((a.total_power_mw - a.cpu_power_mw - a.radio_power_mw).abs() < 1e-12);
        assert!(a.lifetime_days > 0.0 && a.lifetime_days.is_finite());
        assert_eq!(a.name, "n0");
    }

    #[test]
    fn backends_agree_for_small_delay() {
        let mut node = NodeConfig::monitoring("n", 5.0);
        node.cpu = node
            .cpu
            .with_replications(6)
            .with_horizon(3000.0)
            .with_warmup(100.0);
        let m = node.analyze(BackendId::Markov).unwrap();
        let e = node.analyze(BackendId::ErlangPhase).unwrap();
        let p = node.analyze(BackendId::PetriNet).unwrap();
        let d = node.analyze(BackendId::Des).unwrap();
        assert!(
            m.cpu_fractions.mean_abs_delta_pct(&p.cpu_fractions) < 2.0,
            "markov vs pn"
        );
        assert!(
            m.cpu_fractions.mean_abs_delta_pct(&d.cpu_fractions) < 2.0,
            "markov vs des"
        );
        assert!(
            m.cpu_fractions.mean_abs_delta_pct(&e.cpu_fractions) < 2.0,
            "markov vs erlang-phase"
        );
    }

    #[test]
    fn busier_node_dies_sooner() {
        let lazy = NodeConfig::monitoring("lazy", 60.0)
            .analyze(BackendId::Markov)
            .unwrap();
        let busy = NodeConfig::monitoring("busy", 0.5)
            .analyze(BackendId::Markov)
            .unwrap();
        assert!(lazy.lifetime_days > busy.lifetime_days);
    }

    #[test]
    fn event_rate_overrides_lambda() {
        let node = NodeConfig::monitoring("n", 4.0);
        assert!((node.cpu_params().lambda - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deprecated_cpu_backend_alias_still_works() {
        // Downstream code written against the pre-registry API keeps
        // compiling: `CpuBackend` is `BackendId`.
        let alias: CpuBackend = CpuBackend::Markov;
        let direct: BackendId = BackendId::Markov;
        assert_eq!(alias, direct);
        let node = NodeConfig::monitoring("compat", 10.0);
        assert_eq!(node.analyze(alias).unwrap(), node.analyze(direct).unwrap());
    }

    #[test]
    fn explicit_registry_and_options() {
        use wsnem_core::ServiceDist;
        let node = NodeConfig::monitoring("opt", 5.0);
        let registry = wsnem_core::BackendRegistry::builtin();
        // Seed/replication overrides flow through.
        let a = node
            .analyze_with(
                &registry,
                BackendId::Des,
                &EvalOptions::default()
                    .with_replications(2)
                    .with_horizon(300.0)
                    .with_seed(1),
                0.0,
            )
            .unwrap();
        let b = node
            .analyze_with(
                &registry,
                BackendId::Des,
                &EvalOptions::default()
                    .with_replications(2)
                    .with_horizon(300.0)
                    .with_seed(2),
                0.0,
            )
            .unwrap();
        assert_ne!(a.cpu_fractions, b.cpu_fractions, "seed override applies");
        // Capability gate: non-exponential service on an analytic backend
        // errors instead of silently computing exponential numbers.
        let err = node
            .analyze_with(
                &registry,
                BackendId::Markov,
                &EvalOptions::default().with_service(ServiceDist::Deterministic),
                0.0,
            )
            .unwrap_err();
        assert!(
            matches!(err, wsnem_core::CoreError::Unsupported { .. }),
            "{err}"
        );
    }
}
