//! Structure-of-arrays topology core — the million-node fast path.
//!
//! The routed [`crate::Network`] stores one [`crate::NodeConfig`] struct per
//! node (name `String`, CPU params, power profile, radio, battery — several
//! hundred bytes each) and returns one [`crate::NodeAnalysis`] per node.
//! That representation is sized for tens of nodes; at 10^6 nodes the
//! per-node structs, name allocations and result rows dominate both memory
//! and time. [`SoaNetwork`] is the same model in flat arrays:
//!
//! * topology is one `u32` parent array ([`SINK`] marks sink-adjacent
//!   nodes), so a million-node collection tree is 4 MB instead of hundreds;
//! * per-node workload is three `f64` arrays (event rate, packets per
//!   event, exogenous rx rate);
//! * CPU parameters, power profile and battery are shared (the
//!   heterogeneous cases stay on the small-net path), and radios are a
//!   shared model plus a sparse override list;
//! * names are either generated on demand (`prefix` + 1-based index — zero
//!   bytes per node) or interned into a single arena.
//!
//! The routing pass ([`SoaNetwork::routing`]) computes hop depths,
//! forwarding loads and subtree sizes in one sink-ward sweep whose
//! floating-point accumulation order is **bit-identical** to the oracle
//! [`crate::Network::routing`]: the oracle processes nodes in stable
//! deepest-first order, and this module reproduces exactly that order with
//! a stable counting sort by depth. The equivalence battery in
//! `tests/soa_topology.rs` pins `SoaNetwork` against the per-node oracle up
//! to 10^5 nodes.
//!
//! [`SoaAnalysis`] keeps results as flat arrays too and answers the
//! aggregate questions large-net reports need — lifetime histogram,
//! hop-depth percentiles, the worst-lifetime cohort, the near-unstable
//! cohort — without ever materializing per-node rows.

use wsnem_core::{BackendId, BackendRegistry, CpuModelParams, EvalOptions};
use wsnem_energy::{Battery, PowerProfile};
use wsnem_stats::dist::Sample;

use crate::network::parallel_node_map;
use crate::radio::RadioModel;
use crate::topology::{Network, NetworkError, NextHop};

/// Parent-array sentinel: this node transmits directly to the sink.
pub const SINK: u32 = u32::MAX;

/// Node-name storage for a [`SoaNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub enum NodeNames {
    /// Names are `{prefix}{i+1}` (1-based), generated on demand — zero
    /// bytes per node, the template/large-net representation.
    Generated {
        /// The shared name prefix.
        prefix: String,
    },
    /// Explicit names interned into one arena (converted small nets).
    Interned {
        /// Concatenated names.
        arena: String,
        /// `offsets[i]..offsets[i + 1]` is node `i`'s name; length `n + 1`.
        offsets: Vec<u32>,
    },
}

impl NodeNames {
    /// Intern an iterator of names into an arena.
    pub fn intern<'a>(names: impl Iterator<Item = &'a str>) -> Self {
        let mut arena = String::new();
        let mut offsets = vec![0u32];
        for name in names {
            arena.push_str(name);
            offsets.push(arena.len() as u32);
        }
        NodeNames::Interned { arena, offsets }
    }

    /// Node `i`'s name.
    pub fn name(&self, i: usize) -> String {
        match self {
            NodeNames::Generated { prefix } => format!("{prefix}{}", i + 1),
            NodeNames::Interned { arena, offsets } => {
                arena[offsets[i] as usize..offsets[i + 1] as usize].to_owned()
            }
        }
    }
}

/// A routed network in structure-of-arrays form (module docs).
///
/// All per-node vectors have the same length; [`SoaNetwork::validate`]
/// checks that plus the routing structure.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaNetwork {
    /// `parent[i]` is where node `i` forwards; [`SINK`] for sink-adjacent.
    pub parent: Vec<u32>,
    /// Sensing events per second per node.
    pub event_rate: Vec<f64>,
    /// Packets transmitted per sensing event per node.
    pub tx_per_event: Vec<f64>,
    /// Exogenous packets received per second per node.
    pub rx_rate: Vec<f64>,
    /// Node names.
    pub names: NodeNames,
    /// Shared CPU parameters (λ is overridden per node by the event rate
    /// plus forwarding load).
    pub cpu: CpuModelParams,
    /// Shared CPU power profile.
    pub cpu_profile: PowerProfile,
    /// Shared battery.
    pub battery: Battery,
    /// Shared radio model.
    pub radio: RadioModel,
    /// Sparse per-node radio overrides, sorted by node index.
    pub radio_overrides: Vec<(u32, RadioModel)>,
}

/// The routing structure of a [`SoaNetwork`] — flat-array counterpart of
/// [`crate::RoutingTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoaRouting {
    /// Hops to the sink per node (sink-adjacent = 1).
    pub depths: Vec<u32>,
    /// Forwarded input rate per node (packets/s).
    pub forwarded: Vec<f64>,
    /// Subtree size per node (each node counts itself).
    pub subtree_sizes: Vec<u32>,
}

impl SoaNetwork {
    /// A homogeneous network: every node has the same workload, on a parent
    /// array from one of the topology helpers ([`star_parents`],
    /// [`chain_parents`], [`tree_parents`]) with generated names.
    #[allow(clippy::too_many_arguments)]
    pub fn homogeneous(
        parent: Vec<u32>,
        prefix: impl Into<String>,
        event_rate: f64,
        tx_per_event: f64,
        rx_rate: f64,
        cpu: CpuModelParams,
        cpu_profile: PowerProfile,
        radio: RadioModel,
        battery: Battery,
    ) -> Self {
        let n = parent.len();
        Self {
            parent,
            event_rate: vec![event_rate; n],
            tx_per_event: vec![tx_per_event; n],
            rx_rate: vec![rx_rate; n],
            names: NodeNames::Generated {
                prefix: prefix.into(),
            },
            cpu,
            cpu_profile,
            battery,
            radio,
            radio_overrides: Vec::new(),
        }
    }

    /// Convert a per-node [`Network`] (the small-net oracle). Fails when the
    /// nodes disagree on CPU parameters, power profile or battery — those
    /// are shared here; heterogeneous nets stay on the per-node path. Radio
    /// differences become sparse overrides against node 0's radio.
    pub fn from_network(net: &Network) -> Result<Self, String> {
        let first = net
            .nodes
            .first()
            .ok_or_else(|| "cannot convert an empty network".to_owned())?;
        if net.next_hop.len() != net.nodes.len() {
            return Err(format!(
                "routing table has {} entries for {} nodes",
                net.next_hop.len(),
                net.nodes.len()
            ));
        }
        let mut radio_overrides = Vec::new();
        for (i, node) in net.nodes.iter().enumerate() {
            if node.cpu != first.cpu {
                return Err(format!(
                    "node `{}` has different CPU parameters (SoA networks share them)",
                    node.name
                ));
            }
            if node.cpu_profile != first.cpu_profile {
                return Err(format!(
                    "node `{}` has a different power profile (SoA networks share it)",
                    node.name
                ));
            }
            if node.battery != first.battery {
                return Err(format!(
                    "node `{}` has a different battery (SoA networks share it)",
                    node.name
                ));
            }
            if node.radio != first.radio {
                radio_overrides.push((i as u32, node.radio));
            }
        }
        let parent = net
            .next_hop
            .iter()
            .map(|hop| match *hop {
                NextHop::Sink => SINK,
                NextHop::Node(j) => j as u32,
            })
            .collect();
        Ok(Self {
            parent,
            event_rate: net.nodes.iter().map(|nd| nd.event_rate).collect(),
            tx_per_event: net.nodes.iter().map(|nd| nd.tx_per_event).collect(),
            rx_rate: net.nodes.iter().map(|nd| nd.rx_rate).collect(),
            names: NodeNames::intern(net.nodes.iter().map(|nd| nd.name.as_str())),
            cpu: first.cpu,
            cpu_profile: first.cpu_profile.clone(),
            battery: first.battery,
            radio: first.radio,
            radio_overrides,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for the empty network.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Node `i`'s name.
    pub fn name(&self, i: usize) -> String {
        self.names.name(i)
    }

    /// Node `i`'s radio (override or shared).
    pub fn radio_for(&self, i: usize) -> RadioModel {
        match self
            .radio_overrides
            .binary_search_by_key(&(i as u32), |&(j, _)| j)
        {
            Ok(pos) => self.radio_overrides[pos].1,
            Err(_) => self.radio,
        }
    }

    /// Packets per second node `i` originates itself.
    pub fn own_tx_rate(&self, i: usize) -> f64 {
        self.event_rate[i] * self.tx_per_event[i]
    }

    /// Total packet rate entering the sink — by conservation, the sum of
    /// every node's own transmit rate.
    pub fn sink_arrival_pkts_s(&self) -> f64 {
        (0..self.len()).map(|i| self.own_tx_rate(i)).sum()
    }

    /// Validate array lengths and the routing structure (parents in range,
    /// no self-loops, every node reaches the sink).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        for (what, len) in [
            ("event_rate", self.event_rate.len()),
            ("tx_per_event", self.tx_per_event.len()),
            ("rx_rate", self.rx_rate.len()),
        ] {
            if len != n {
                return Err(format!("{what} has {len} entries for {n} nodes"));
            }
        }
        if let NodeNames::Interned { offsets, .. } = &self.names {
            if offsets.len() != n + 1 {
                return Err(format!(
                    "name table has {} offsets for {n} nodes",
                    offsets.len()
                ));
            }
        }
        for (i, &p) in self.parent.iter().enumerate() {
            if p == SINK {
                continue;
            }
            if p as usize >= n {
                return Err(format!(
                    "node `{}` forwards to index {p}, but there are only {n} nodes",
                    self.name(i)
                ));
            }
            if p as usize == i {
                return Err(format!("node `{}` forwards to itself", self.name(i)));
            }
        }
        self.hop_depths().map(|_| ())
    }

    /// Hops to the sink per node (sink-adjacent = 1), failing on cycles with
    /// the same node-naming error as the oracle. Linear time: each walk
    /// stops at the first already-resolved node, and membership in the
    /// current path is tracked with an epoch array instead of a scan.
    pub fn hop_depths(&self) -> Result<Vec<u32>, String> {
        let n = self.len();
        let mut depths: Vec<u32> = vec![0; n]; // 0 = not yet computed
        let mut on_path: Vec<u32> = vec![0; n]; // epoch marker: start + 1
        let mut path = Vec::new();
        for start in 0..n {
            if depths[start] != 0 {
                continue;
            }
            path.clear();
            let mut cur = start;
            let epoch = start as u32 + 1;
            let base = loop {
                path.push(cur);
                on_path[cur] = epoch;
                match self.parent[cur] {
                    SINK => break 0,
                    j => {
                        let j = j as usize;
                        if j >= n {
                            return Err(format!(
                                "node `{}` forwards to index {j}, but there are only {n} nodes",
                                self.name(cur)
                            ));
                        }
                        if depths[j] != 0 {
                            break depths[j];
                        }
                        if on_path[j] == epoch {
                            return Err(format!(
                                "node `{}` cannot reach the sink (routing cycle)",
                                self.name(start)
                            ));
                        }
                        cur = j;
                    }
                }
            };
            for (back, &node) in path.iter().rev().enumerate() {
                depths[node] = base + 1 + back as u32;
            }
        }
        Ok(depths)
    }

    /// Depths, forwarded rates and subtree sizes in one deepest-first
    /// sink-ward pass. The processing order — deepest first, ascending index
    /// within a depth — is produced by a stable counting sort and is exactly
    /// the order of the oracle's stable `sort_by`, so the floating-point
    /// forwarding sums are bit-identical to [`Network::routing`].
    pub fn routing(&self) -> Result<SoaRouting, String> {
        let depths = self.hop_depths()?;
        let n = self.len();
        let max_depth = depths.iter().copied().max().unwrap_or(0) as usize;
        // Stable counting sort, deepest first.
        let mut counts = vec![0usize; max_depth + 1];
        for &d in &depths {
            counts[d as usize] += 1;
        }
        let mut starts = vec![0usize; max_depth + 1];
        let mut acc = 0usize;
        for d in (0..=max_depth).rev() {
            starts[d] = acc;
            acc += counts[d];
        }
        let mut order = vec![0usize; n];
        for i in 0..n {
            let slot = &mut starts[depths[i] as usize];
            order[*slot] = i;
            *slot += 1;
        }
        let mut forwarded = vec![0.0f64; n];
        let mut subtree_sizes = vec![1u32; n];
        for &i in &order {
            let out = self.own_tx_rate(i) + forwarded[i];
            let p = self.parent[i];
            if p != SINK {
                forwarded[p as usize] += out;
                subtree_sizes[p as usize] += subtree_sizes[i];
            }
        }
        Ok(SoaRouting {
            depths,
            forwarded,
            subtree_sizes,
        })
    }

    /// Analyze every node with forwarding loads applied — the flat-array
    /// counterpart of [`Network::analyze_with_threads`], evaluating the
    /// identical per-node recipe (CPU λ = event rate + forwarded load, CPU
    /// power from the profile, radio power from tx/rx rates, lifetime from
    /// the battery) without building per-node result structs.
    pub fn analyze_with(
        &self,
        registry: &BackendRegistry,
        backend: BackendId,
        opts: &EvalOptions,
        threads: Option<usize>,
    ) -> Result<SoaAnalysis, NetworkError> {
        let SoaRouting {
            depths,
            forwarded,
            subtree_sizes,
        } = self.routing().map_err(NetworkError::Routing)?;
        let mean_service = opts.service.to_dist(self.cpu.mu).mean();
        let results = parallel_node_map(self.len(), threads, |i| {
            let params = self.cpu.with_forwarding(self.event_rate[i], forwarded[i]);
            let eval = registry.solve(backend, &params, opts)?;
            let cpu_power = self.cpu_profile.mean_power_mw(&eval.fractions);
            let radio_power = self.radio_for(i).mean_power_mw(
                self.own_tx_rate(i) + forwarded[i],
                self.rx_rate[i] + forwarded[i],
            );
            let total = cpu_power + radio_power;
            Ok::<(f64, f64), wsnem_core::CoreError>((total, self.battery.lifetime_days(total)))
        });
        let n = self.len();
        let mut total_power_mw = Vec::with_capacity(n);
        let mut lifetime_days = Vec::with_capacity(n);
        for (i, r) in results.into_iter().enumerate() {
            let (total, lifetime) = r.map_err(|e| NetworkError::Node {
                node: self.name(i),
                source: e,
            })?;
            total_power_mw.push(total);
            lifetime_days.push(lifetime);
        }
        let rho = (0..n)
            .map(|i| (self.event_rate[i] + forwarded[i]) * mean_service)
            .collect();
        Ok(SoaAnalysis {
            depths,
            forwarded,
            subtree_sizes,
            total_power_mw,
            lifetime_days,
            rho,
            sink_arrival_pkts_s: self.sink_arrival_pkts_s(),
        })
    }
}

/// Star parents over `n` nodes: everyone transmits to the sink.
pub fn star_parents(n: usize) -> Vec<u32> {
    vec![SINK; n]
}

/// Chain parents: node 0 is sink-adjacent, node `i > 0` forwards to `i - 1`.
pub fn chain_parents(n: usize) -> Vec<u32> {
    (0..n)
        .map(|i| if i == 0 { SINK } else { i as u32 - 1 })
        .collect()
}

/// Complete `fanout`-ary tree parents in breadth-first order: node 0 is the
/// sink-adjacent root, node `i > 0` forwards to `(i - 1) / fanout`.
/// `fanout < 1` is treated as 1 (a chain).
pub fn tree_parents(n: usize, fanout: usize) -> Vec<u32> {
    let fanout = fanout.max(1);
    (0..n)
        .map(|i| {
            if i == 0 {
                SINK
            } else {
                ((i - 1) / fanout) as u32
            }
        })
        .collect()
}

/// One bin of an equal-width lifetime histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistBin {
    /// Inclusive lower edge (days).
    pub lo: f64,
    /// Exclusive upper edge (days); the global maximum lands in the last
    /// bin.
    pub hi: f64,
    /// Nodes in `[lo, hi)`.
    pub count: u64,
}

/// Flat-array analysis results plus the aggregate accessors large-net
/// reports are built from.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaAnalysis {
    /// Hops to the sink per node (sink-adjacent = 1).
    pub depths: Vec<u32>,
    /// Forwarded input rate per node (packets/s).
    pub forwarded: Vec<f64>,
    /// Subtree size per node (each node counts itself).
    pub subtree_sizes: Vec<u32>,
    /// Total mean power per node (mW).
    pub total_power_mw: Vec<f64>,
    /// Expected battery lifetime per node (days).
    pub lifetime_days: Vec<f64>,
    /// Effective CPU utilization per node: `(event rate + forwarded) ·
    /// E[S]` under the evaluated service distribution.
    pub rho: Vec<f64>,
    /// Total packet rate entering the sink (packets/s).
    pub sink_arrival_pkts_s: f64,
}

/// Heap entry for the worst-lifetime cohort selection (max-heap over the
/// kept k, ordered by lifetime then index).
struct CohortEntry {
    lifetime: f64,
    index: usize,
}

impl PartialEq for CohortEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for CohortEntry {}
impl PartialOrd for CohortEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CohortEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lifetime
            .total_cmp(&other.lifetime)
            .then(self.index.cmp(&other.index))
    }
}

impl SoaAnalysis {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.lifetime_days.len()
    }

    /// True for the empty network.
    pub fn is_empty(&self) -> bool {
        self.lifetime_days.is_empty()
    }

    /// Lifetime until the first node dies (days).
    pub fn first_death_days(&self) -> f64 {
        self.lifetime_days
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean node lifetime (days).
    pub fn mean_lifetime_days(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lifetime_days.iter().sum::<f64>() / self.len() as f64
    }

    /// Total network power (mW).
    pub fn total_power_mw(&self) -> f64 {
        self.total_power_mw.iter().sum()
    }

    /// The deepest hop count (0 for an empty network).
    pub fn max_hop_depth(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Index of the shortest-lived node (ties: lowest index, like the
    /// oracle's `min_by`).
    pub fn bottleneck(&self) -> Option<usize> {
        (0..self.len()).min_by(|&a, &b| self.lifetime_days[a].total_cmp(&self.lifetime_days[b]))
    }

    /// Index of the shortest-lived *forwarding* node (`None` when nothing
    /// forwards, e.g. a star) — same ranking as
    /// [`crate::RoutedAnalysis::bottleneck_relay`].
    pub fn bottleneck_relay(&self) -> Option<usize> {
        (0..self.len())
            .filter(|&i| self.forwarded[i] > 0.0)
            .min_by(|&a, &b| self.lifetime_days[a].total_cmp(&self.lifetime_days[b]))
    }

    /// The `k` shortest-lived nodes, ordered by (lifetime, index) ascending
    /// — selected with a bounded heap, O(n log k).
    pub fn worst_lifetime_cohort(&self, k: usize) -> Vec<usize> {
        let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
        if k == 0 {
            return Vec::new();
        }
        for (index, &lifetime) in self.lifetime_days.iter().enumerate() {
            heap.push(CohortEntry { lifetime, index });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut cohort: Vec<CohortEntry> = heap.into_vec();
        cohort.sort_unstable();
        cohort.into_iter().map(|e| e.index).collect()
    }

    /// Count of nodes whose utilization is at or above `rho_threshold` —
    /// the cohort worth re-checking with a simulation backend.
    pub fn near_unstable_count(&self, rho_threshold: f64) -> usize {
        self.rho.iter().filter(|&&r| r >= rho_threshold).count()
    }

    /// Indices of the near-unstable cohort, capped at `limit`.
    pub fn near_unstable_cohort(&self, rho_threshold: f64, limit: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.rho[i] >= rho_threshold)
            .take(limit)
            .collect()
    }

    /// Hop-depth value at each requested percentile (nearest-rank over the
    /// depth counting histogram: the depth of the node at 1-based rank
    /// `ceil(p/100 · n)` in depth-sorted order).
    pub fn hop_depth_percentiles(&self, percentiles: &[f64]) -> Vec<(f64, u32)> {
        let n = self.len();
        if n == 0 {
            return percentiles.iter().map(|&p| (p, 0)).collect();
        }
        let max_depth = self.max_hop_depth() as usize;
        let mut counts = vec![0u64; max_depth + 1];
        for &d in &self.depths {
            counts[d as usize] += 1;
        }
        percentiles
            .iter()
            .map(|&p| {
                let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
                let mut acc = 0u64;
                let mut value = max_depth as u32;
                for (d, &c) in counts.iter().enumerate() {
                    acc += c;
                    if acc >= rank {
                        value = d as u32;
                        break;
                    }
                }
                (p, value)
            })
            .collect()
    }

    /// Equal-width lifetime histogram over `[min, max]` (the maximum is
    /// counted in the last bin). A single distinct value yields one full
    /// bin.
    pub fn lifetime_histogram(&self, bins: usize) -> Vec<HistBin> {
        if bins == 0 || self.is_empty() {
            return Vec::new();
        }
        let min = self
            .lifetime_days
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .lifetime_days
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let width = if max > min {
            (max - min) / bins as f64
        } else {
            1.0
        };
        let mut counts = vec![0u64; bins];
        for &x in &self.lifetime_days {
            let idx = (((x - min) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, count)| HistBin {
                lo: min + i as f64 * width,
                hi: min + (i + 1) as f64 * width,
                count,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;

    fn small_soa(n: usize, fanout: usize, period_s: f64) -> SoaNetwork {
        let node = NodeConfig::monitoring("n", period_s);
        SoaNetwork::homogeneous(
            tree_parents(n, fanout),
            "n",
            node.event_rate,
            node.tx_per_event,
            node.rx_rate,
            node.cpu,
            node.cpu_profile,
            node.radio,
            node.battery,
        )
    }

    #[test]
    fn parent_helpers_match_oracle_next_hops() {
        use crate::topology::{chain_next_hops, star_next_hops, tree_next_hops};
        for n in [0, 1, 2, 7, 30] {
            assert_eq!(
                star_parents(n),
                star_next_hops(n)
                    .iter()
                    .map(|h| match h {
                        NextHop::Sink => SINK,
                        NextHop::Node(j) => *j as u32,
                    })
                    .collect::<Vec<_>>()
            );
            for fanout in [0, 1, 2, 3] {
                assert_eq!(
                    tree_parents(n, fanout),
                    tree_next_hops(n, fanout)
                        .iter()
                        .map(|h| match h {
                            NextHop::Sink => SINK,
                            NextHop::Node(j) => *j as u32,
                        })
                        .collect::<Vec<_>>(),
                    "n={n} fanout={fanout}"
                );
            }
            assert_eq!(
                chain_parents(n),
                chain_next_hops(n)
                    .iter()
                    .map(|h| match h {
                        NextHop::Sink => SINK,
                        NextHop::Node(j) => *j as u32,
                    })
                    .collect::<Vec<_>>()
            );
        }
        assert_eq!(chain_parents(3), vec![SINK, 0, 1]);
    }

    #[test]
    fn routing_matches_small_tree() {
        let soa = small_soa(7, 2, 10.0);
        soa.validate().unwrap();
        let r = soa.routing().unwrap();
        assert_eq!(r.depths, vec![1, 2, 2, 3, 3, 3, 3]);
        assert_eq!(r.subtree_sizes, vec![7, 3, 3, 1, 1, 1, 1]);
        // Root forwards everything except its own traffic.
        assert!((r.forwarded[0] - 6.0 * 0.1).abs() < 1e-12);
        assert!((soa.sink_arrival_pkts_s() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn generated_and_interned_names() {
        let soa = small_soa(3, 2, 10.0);
        assert_eq!(soa.name(0), "n1");
        assert_eq!(soa.name(2), "n3");
        let interned = NodeNames::intern(["alpha", "b", "gamma"].into_iter());
        assert_eq!(interned.name(0), "alpha");
        assert_eq!(interned.name(1), "b");
        assert_eq!(interned.name(2), "gamma");
    }

    #[test]
    fn validate_rejects_bad_structure() {
        let mut soa = small_soa(3, 2, 10.0);
        soa.parent[1] = 9;
        let err = soa.validate().unwrap_err();
        assert!(err.contains("only 3 nodes"), "{err}");

        let mut soa = small_soa(3, 2, 10.0);
        soa.parent[2] = 2;
        let err = soa.validate().unwrap_err();
        assert!(err.contains("itself"), "{err}");

        let mut soa = small_soa(3, 2, 10.0);
        soa.parent[1] = 2;
        soa.parent[2] = 1;
        let err = soa.validate().unwrap_err();
        assert!(err.contains("cycle"), "{err}");

        let mut soa = small_soa(3, 2, 10.0);
        soa.event_rate.pop();
        assert!(soa.validate().unwrap_err().contains("event_rate"));
    }

    #[test]
    fn analysis_matches_oracle_exactly() {
        let nodes: Vec<NodeConfig> = (0..7)
            .map(|i| NodeConfig::monitoring(format!("n{}", i + 1), 5.0))
            .collect();
        let oracle = Network::tree(nodes, 2).analyze(BackendId::Markov).unwrap();
        let soa = small_soa(7, 2, 5.0);
        let a = soa
            .analyze_with(
                wsnem_core::backend::global(),
                BackendId::Markov,
                &EvalOptions::default(),
                Some(1),
            )
            .unwrap();
        for (i, o) in oracle.per_node.iter().enumerate() {
            assert_eq!(a.lifetime_days[i], o.analysis.lifetime_days, "node {i}");
            assert_eq!(a.total_power_mw[i], o.analysis.total_power_mw, "node {i}");
            assert_eq!(a.forwarded[i], o.forwarded_rx_pkts_s, "node {i}");
            assert_eq!(a.depths[i], o.hop_depth);
            assert_eq!(a.subtree_sizes[i] as usize, o.subtree_size);
        }
        assert_eq!(a.first_death_days(), oracle.first_death_days());
        assert_eq!(a.total_power_mw(), oracle.total_power_mw());
        assert_eq!(a.max_hop_depth(), oracle.max_hop_depth());
        assert_eq!(
            soa.name(a.bottleneck().unwrap()),
            oracle.bottleneck().unwrap().analysis.name
        );
        assert_eq!(
            soa.name(a.bottleneck_relay().unwrap()),
            oracle.bottleneck_relay().unwrap().analysis.name
        );
    }

    #[test]
    fn unstable_relay_names_the_node() {
        // 9 leaves at 1.5 ev/s feeding one relay: λ ≈ 13.7 > μ = 10.
        let soa = small_soa(10, 9, 1.0 / 1.5);
        let err = soa
            .analyze_with(
                wsnem_core::backend::global(),
                BackendId::Markov,
                &EvalOptions::default(),
                Some(1),
            )
            .unwrap_err();
        match &err {
            NetworkError::Node { node, .. } => assert_eq!(node, "n1"),
            other => panic!("expected node error, got {other}"),
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        let soa = small_soa(30, 3, 8.0);
        let a = soa
            .analyze_with(
                wsnem_core::backend::global(),
                BackendId::Mg1,
                &EvalOptions::default(),
                Some(1),
            )
            .unwrap();
        // Histogram covers every node.
        let hist = a.lifetime_histogram(8);
        assert_eq!(hist.len(), 8);
        assert_eq!(hist.iter().map(|b| b.count).sum::<u64>(), 30);
        // The worst cohort starts at the bottleneck.
        let cohort = a.worst_lifetime_cohort(5);
        assert_eq!(cohort.len(), 5);
        assert_eq!(cohort[0], a.bottleneck().unwrap());
        let mut sorted = cohort.clone();
        sorted.sort_by(|&x, &y| {
            a.lifetime_days[x]
                .total_cmp(&a.lifetime_days[y])
                .then(x.cmp(&y))
        });
        assert_eq!(cohort, sorted);
        // Percentiles are monotone and end at the max depth.
        let pcts = a.hop_depth_percentiles(&[50.0, 90.0, 99.0, 100.0]);
        assert!(pcts.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(pcts.last().unwrap().1, a.max_hop_depth());
        // Low event rates → nothing near-unstable.
        assert_eq!(a.near_unstable_count(0.95), 0);
        assert!(a.near_unstable_cohort(0.0, 3).len() == 3);
        assert!(a.near_unstable_count(0.0) == 30);
    }

    #[test]
    fn from_network_handles_radio_overrides_and_heterogeneity() {
        let mut nodes: Vec<NodeConfig> = (0..3)
            .map(|i| NodeConfig::monitoring(format!("x{i}"), 2.0))
            .collect();
        nodes[1].radio = crate::RadioSpec::Preset("cc2420-always-on".into())
            .lower()
            .unwrap();
        let net = Network::chain(nodes.clone());
        let soa = SoaNetwork::from_network(&net).unwrap();
        assert_eq!(soa.radio_overrides.len(), 1);
        assert_eq!(soa.radio_for(1), nodes[1].radio);
        assert_eq!(soa.radio_for(0), nodes[0].radio);
        assert_eq!(soa.name(1), "x1");
        // Lifetimes still agree with the oracle, override included.
        let oracle = net.analyze(BackendId::Markov).unwrap();
        let a = soa
            .analyze_with(
                wsnem_core::backend::global(),
                BackendId::Markov,
                &EvalOptions::default(),
                Some(1),
            )
            .unwrap();
        for (i, o) in oracle.per_node.iter().enumerate() {
            assert_eq!(a.lifetime_days[i], o.analysis.lifetime_days);
        }

        let mut het = nodes;
        het[2].cpu = het[2].cpu.with_mu(20.0);
        let err = SoaNetwork::from_network(&Network::chain(het)).unwrap_err();
        assert!(err.contains("CPU parameters"), "{err}");
        assert!(SoaNetwork::from_network(&Network::star(Vec::new())).is_err());
    }
}
