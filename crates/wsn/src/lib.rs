//! # wsnem-wsn
//!
//! Sensor-node and network-level energy studies built on the CPU models —
//! the application layer the paper's introduction motivates (surveillance,
//! habitat/temperature monitoring).
//!
//! * [`radio`] — a duty-cycled radio energy model (synthetic CC2420-class
//!   power numbers, documented as such; the paper models only the CPU and
//!   notes communication dominates — this crate lets examples weigh both).
//! * [`node`] — a sensor node: sensing workload → CPU jobs (+ radio
//!   traffic), evaluated with any [`wsnem_core::CpuModel`], yielding power
//!   breakdown and battery lifetime.
//! * [`network`] — star-topology networks of heterogeneous nodes: first-node
//!   death, mean lifetime, per-node breakdown.
//! * [`topology`] — multi-hop routed networks (chain/tree/mesh with static
//!   routes): per-node forwarding load propagated sink-ward, hop depths,
//!   relay-bottleneck identification.
//! * [`tuning`] — pick the energy-optimal Power Down Threshold for a
//!   workload (the design question the paper's Fig. 5 poses).

#![forbid(unsafe_code)]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod network;
pub mod node;
pub mod radio;
pub mod topology;
pub mod tuning;

// `BackendId` (and the deprecated `CpuBackend` alias) re-exported so node
// and network analysis callers need no direct wsnem-core dependency.
pub use network::{NetworkAnalysis, StarNetwork};
pub use node::{CpuBackend, NodeAnalysis, NodeConfig};
pub use radio::RadioModel;
pub use topology::{
    Network, NetworkError, NextHop, RoutedAnalysis, RoutedNodeAnalysis, RoutingTable,
};
pub use tuning::{optimize_threshold, ThresholdChoice};
pub use wsnem_core::BackendId;
