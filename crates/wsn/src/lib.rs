//! # wsnem-wsn
//!
//! Sensor-node and network-level energy studies built on the CPU models —
//! the application layer the paper's introduction motivates (surveillance,
//! habitat/temperature monitoring).
//!
//! * [`radio`] — duty-cycle MAC radio models: a serializable [`RadioSpec`]
//!   (named presets, LPL, B-MAC-style full preambles, X-MAC-style strobed
//!   preambles, raw custom numbers) lowering to the shared [`RadioModel`]
//!   mean-power evaluation. The power figures are synthetic datasheet
//!   composites, documented as such; the paper models only the CPU and
//!   notes communication dominates — this crate lets studies weigh both.
//! * [`node`] — a sensor node: sensing workload → CPU jobs (+ radio
//!   traffic), evaluated with any registered CPU backend, yielding power
//!   breakdown and battery lifetime.
//! * [`network`] — star-topology networks of heterogeneous nodes:
//!   first-node death, mean lifetime, per-node breakdown.
//! * [`topology`] — multi-hop routed networks (chain/tree/mesh with static
//!   routes): per-node forwarding load propagated sink-ward, hop depths,
//!   relay-bottleneck identification (lifetime-ranked, so per-node radio
//!   overrides shift the hot spot).
//! * [`soa`] — the same routed model in structure-of-arrays form (flat
//!   `u32` parent array, shared CPU/battery, generated or interned names)
//!   for million-node networks, with aggregate accessors (lifetime
//!   histogram, hop-depth percentiles, worst-lifetime cohort) instead of
//!   per-node rows; bit-identical to [`topology`] on the common subset.
//! * [`tuning`] — pick the energy-optimal Power Down Threshold for a
//!   workload (the design question the paper's Fig. 5 poses).
//!
//! # Examples
//!
//! Co-tune the radio MAC with the sensing workload:
//!
//! ```
//! use wsnem_wsn::{BackendId, NodeConfig, RadioSpec};
//!
//! let mut node = NodeConfig::monitoring("lab-7", 30.0);
//! let default_radio = node.analyze(BackendId::Markov).unwrap();
//! node.radio = RadioSpec::XMac {
//!     check_interval_s: 0.5,
//!     strobe_s: 0.004,
//!     ack_s: 0.001,
//! }
//! .lower()
//! .unwrap();
//! let strobed = node.analyze(BackendId::Markov).unwrap();
//! // At one reading per 30 s the strobed MAC out-lives the 5% LPL default.
//! assert!(strobed.lifetime_days > default_radio.lifetime_days);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod network;
pub mod node;
pub mod radio;
pub mod soa;
pub mod topology;
pub mod tuning;

// `BackendId` (and the deprecated `CpuBackend` alias) re-exported so node
// and network analysis callers need no direct wsnem-core dependency.
pub use network::{NetworkAnalysis, StarNetwork};
pub use node::{CpuBackend, NodeAnalysis, NodeConfig};
pub use radio::{RadioModel, RadioSpec, RadioTimeSplit, DEFAULT_RADIO_PRESET};
pub use soa::{
    chain_parents, star_parents, tree_parents, HistBin, NodeNames, SoaAnalysis, SoaNetwork,
    SoaRouting, SINK,
};
pub use topology::{
    Network, NetworkError, NextHop, RoutedAnalysis, RoutedNodeAnalysis, RoutingTable,
};
pub use tuning::{optimize_threshold, ThresholdChoice};
pub use wsnem_core::BackendId;
