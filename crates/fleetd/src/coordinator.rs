//! The coordinator: owns the fleet, leases shards to pulling workers,
//! survives their deaths.
//!
//! # Shard lifecycle
//!
//! Cache hits are resolved up front (exactly like a local
//! `fleet::run_cached`); every miss becomes a **shard** keyed by its
//! `.wsnem-cache/` content-hash digest. A shard is `pending` until a
//! worker's `Request` leases it, `leased` until its result arrives or the
//! lease dies, and `done` forever after. Leases die three ways — the
//! holder's connection drops, the liveness reaper declares the holder dead
//! (no frame within the liveness window), or the lease deadline passes
//! without a heartbeat — and a dead lease simply returns the shard to
//! `pending` for the next `Request`. Results are ingested
//! **idempotently**: keyed by digest, duplicate frames tolerated
//! (last-write-wins), so a reassigned shard completed twice stays one row
//! in the merged report.
//!
//! # Graceful degradation
//!
//! If no live worker has been connected for the grace window while shards
//! remain, the coordinator stops waiting: it leases every remaining shard
//! to itself and runs them through the in-process work-queue runner, warns
//! on stderr, and records the fallback in [`DistStats`]. A fleet with no
//! workers is a slow local run, never a hang.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use wsnem_scenario::cache::canonical_key;
use wsnem_scenario::runner::run_batch_with_options;
use wsnem_scenario::{
    store_or_warn, BatchMetrics, BatchProgress, CacheMode, CacheStats, ResultCache, Scenario,
    ScenarioError, ScenarioReport,
};

use crate::error::FleetdError;
use crate::protocol::{read_message, write_message, FrameError, Message, PROTOCOL_VERSION};

/// Lease owner id reserved for the coordinator's own local fallback.
const LOCAL_CONN: u64 = 0;

/// How long a worker is told to wait when every shard is leased out.
const NO_WORK_RETRY_MS: u64 = 200;

/// Knobs for a distributed run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to listen on (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Zero-worker grace window in seconds: with no live worker for this
    /// long and shards remaining, fall back to the local runner.
    pub grace_seconds: f64,
    /// Shard lease in seconds; a leased shard whose holder neither
    /// heartbeats nor answers within this window is reassigned.
    pub lease_seconds: f64,
    /// Worker liveness window in seconds; a connection with no frame for
    /// this long is reaped.
    pub liveness_seconds: f64,
    /// Threads for the local fallback runner (`None` = all cores).
    pub threads: Option<usize>,
    /// Per-scenario wall-clock watchdog in seconds, shared with workers
    /// via `Welcome` (`--scenario-timeout`).
    pub timeout_seconds: Option<f64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7177".into(),
            grace_seconds: 10.0,
            lease_seconds: 30.0,
            liveness_seconds: 10.0,
            threads: None,
            timeout_seconds: None,
        }
    }
}

/// Distributed-run counters, reported in the CLI batch line and the JSON
/// envelope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistStats {
    /// Distinct worker connections that completed a `Hello`.
    pub workers_seen: usize,
    /// Shards the fleet had after cache-hit resolution.
    pub shards_total: usize,
    /// Shards completed by remote workers.
    pub shards_remote: usize,
    /// Shards completed by the coordinator's local fallback.
    pub shards_local: usize,
    /// Leases released for reassignment (crashed, reaped or expired
    /// holders).
    pub reassigned: usize,
    /// Result frames for already-completed shards (tolerated,
    /// last-write-wins).
    pub duplicate_results: usize,
    /// Frames rejected as corrupt, truncated, oversized or unknown.
    pub rejected_frames: usize,
    /// True when the zero-worker grace window expired and the remaining
    /// shards ran in-process.
    pub fell_back_local: bool,
}

/// Everything a distributed run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-scenario results, in input order — the same shape a local
    /// `fleet::run_cached` returns.
    pub results: Vec<Result<ScenarioReport, ScenarioError>>,
    /// Whole-run wall-clock metrics (busy time covers only work done
    /// in-process; remote compute is on the workers' clocks).
    pub metrics: BatchMetrics,
    /// Cache hit/miss split (misses == shards).
    pub cache: CacheStats,
    /// Distribution counters.
    pub dist: DistStats,
}

struct Lease {
    conn: u64,
    deadline: Instant,
}

struct Shard {
    /// Index into the full scenario list.
    slot: usize,
    digest: String,
    /// Canonical scenario JSON — the digest preimage, shipped in `Assign`.
    key: String,
    name: String,
    lease: Option<Lease>,
    done: bool,
}

struct WorkerConn {
    last_seen: Instant,
    /// Cloned handle used only to shut the socket down on reap, which
    /// unblocks the connection's handler thread.
    stream: TcpStream,
}

struct State {
    shards: Vec<Shard>,
    results: Vec<Option<Result<ScenarioReport, ScenarioError>>>,
    /// Shards not yet done.
    remaining: usize,
    /// Scenarios finished overall (cache hits included) — progress
    /// numbering.
    completed: usize,
    workers: HashMap<u64, WorkerConn>,
    /// Last instant at least one worker was connected (or the run start).
    last_live: Instant,
    dist: DistStats,
}

struct Ctx<'a> {
    state: Mutex<State>,
    cv: Condvar,
    done: AtomicBool,
    scenarios: &'a [Scenario],
    caches: &'a [Option<&'a ResultCache>],
    mode: CacheMode,
    lease: Duration,
    liveness: Duration,
    timeout_ms: Option<u64>,
    on_done: Option<BatchProgress<'a>>,
    total: usize,
}

/// Mutex lock that survives a poisoned peer: a panicking handler thread
/// must not take the whole fleet down with it.
fn lock<'m, T>(m: &'m Mutex<T>) -> MutexGuard<'m, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn secs(s: f64) -> Duration {
    let s = if s.is_finite() {
        s.clamp(0.0, 1.0e9)
    } else {
        1.0e9
    };
    Duration::from_secs_f64(s)
}

/// A bound coordinator, ready to [`run`](Coordinator::run). Binding and
/// running are split so callers (and tests) can learn the actual listen
/// address — port 0 picks a free port — before workers are pointed at it.
pub struct Coordinator<'a> {
    scenarios: &'a [Scenario],
    caches: &'a [Option<&'a ResultCache>],
    mode: CacheMode,
    opts: ServeOptions,
    listener: TcpListener,
}

impl<'a> Coordinator<'a> {
    /// Bind the listen socket. `caches[i]` is the cache slot for
    /// `scenarios[i]`, exactly as in `fleet::run_cached`.
    pub fn bind(
        scenarios: &'a [Scenario],
        caches: &'a [Option<&'a ResultCache>],
        mode: CacheMode,
        opts: ServeOptions,
    ) -> Result<Self, FleetdError> {
        assert_eq!(scenarios.len(), caches.len(), "one cache slot per scenario");
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| FleetdError::Io(format!("bind {}: {e}", opts.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| FleetdError::Io(format!("set_nonblocking: {e}")))?;
        Ok(Coordinator {
            scenarios,
            caches,
            mode,
            opts,
            listener,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, FleetdError> {
        self.listener
            .local_addr()
            .map_err(|e| FleetdError::Io(format!("local_addr: {e}")))
    }

    /// Run the fleet to completion: serve workers, reap the dead, fall
    /// back locally if nobody shows up. Returns when every scenario has a
    /// result.
    pub fn run(self, on_done: Option<BatchProgress<'_>>) -> Result<ServeOutcome, FleetdError> {
        let started = Instant::now();
        let n = self.scenarios.len();
        let mut slots: Vec<Option<Result<ScenarioReport, ScenarioError>>> =
            (0..n).map(|_| None).collect();

        // Resolve cache hits up front, exactly like the local fleet runner.
        let mut hits = 0usize;
        let mut to_run: Vec<usize> = Vec::with_capacity(n);
        for (i, s) in self.scenarios.iter().enumerate() {
            let cached = match (self.mode, self.caches[i]) {
                (CacheMode::ReadWrite, Some(cache)) => cache.lookup(s).unwrap_or(None),
                _ => None,
            };
            match cached {
                Some(report) => {
                    hits += 1;
                    if let Some(cb) = on_done {
                        cb(hits, n, &s.name);
                    }
                    slots[i] = Some(Ok(report));
                }
                None => to_run.push(i),
            }
        }

        let mut shards = Vec::with_capacity(to_run.len());
        for &i in &to_run {
            let key =
                canonical_key(&self.scenarios[i]).map_err(|e| FleetdError::Codec(e.to_string()))?;
            let digest = ResultCache::digest_of_key(&key);
            shards.push(Shard {
                slot: i,
                digest,
                key,
                name: self.scenarios[i].name.clone(),
                lease: None,
                done: false,
            });
        }

        let mut dist = DistStats {
            shards_total: shards.len(),
            ..DistStats::default()
        };

        if shards.is_empty() {
            let metrics = BatchMetrics::new(n, 1, started.elapsed().as_secs_f64(), 0.0);
            return Ok(ServeOutcome {
                results: finish_slots(slots),
                metrics,
                cache: CacheStats { hits, misses: 0 },
                dist,
            });
        }

        let misses = shards.len();
        let remaining = shards.len();
        let ctx = Ctx {
            state: Mutex::new(State {
                shards,
                results: slots,
                remaining,
                completed: hits,
                workers: HashMap::new(),
                last_live: Instant::now(),
                dist,
            }),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
            scenarios: self.scenarios,
            caches: self.caches,
            mode: self.mode,
            lease: secs(self.opts.lease_seconds),
            liveness: secs(self.opts.liveness_seconds),
            timeout_ms: self
                .opts
                .timeout_seconds
                .map(|s| (s.max(0.0) * 1000.0) as u64),
            on_done,
            total: n,
        };
        let grace = secs(self.opts.grace_seconds);
        let mut busy_seconds = 0.0;

        std::thread::scope(|scope| {
            let ctx = &ctx;
            // Accept loop: non-blocking so it can notice the done flag.
            scope.spawn(move || {
                let mut next_id: u64 = LOCAL_CONN + 1;
                loop {
                    if ctx.done.load(Ordering::SeqCst) {
                        break;
                    }
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            let id = next_id;
                            next_id += 1;
                            scope.spawn(move || handle_conn(ctx, id, stream));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
            });

            // Maintenance loop: reap, expire, fall back, finish.
            loop {
                let now = Instant::now();
                let mut to_shutdown = Vec::new();
                let fallback: Option<Vec<usize>> = {
                    let mut st = lock(&ctx.state);
                    if st.remaining == 0 {
                        break;
                    }
                    // Reap workers silent past the liveness window.
                    let dead: Vec<u64> = st
                        .workers
                        .iter()
                        .filter(|(_, w)| now.duration_since(w.last_seen) > ctx.liveness)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in dead {
                        if let Some(w) = st.workers.remove(&id) {
                            to_shutdown.push(w.stream);
                        }
                        release_leases(&mut st, id);
                    }
                    // Reassign shards whose lease deadline passed without a
                    // heartbeat.
                    let mut expired = 0;
                    for sh in &mut st.shards {
                        if sh.done {
                            continue;
                        }
                        if let Some(l) = &sh.lease {
                            if l.conn != LOCAL_CONN && l.deadline <= now {
                                sh.lease = None;
                                expired += 1;
                            }
                        }
                    }
                    st.dist.reassigned += expired;
                    if !st.workers.is_empty() {
                        st.last_live = now;
                        None
                    } else if now.duration_since(st.last_live) > grace
                        && !st.dist.fell_back_local
                        && st.remaining > 0
                    {
                        // Claim everything assignable for the local runner.
                        let todo: Vec<usize> = (0..st.shards.len())
                            .filter(|&i| !st.shards[i].done && st.shards[i].lease.is_none())
                            .collect();
                        for &i in &todo {
                            st.shards[i].lease = Some(Lease {
                                conn: LOCAL_CONN,
                                deadline: now + secs(1.0e9),
                            });
                        }
                        st.dist.fell_back_local = true;
                        Some(todo)
                    } else {
                        None
                    }
                };
                for s in to_shutdown {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
                if let Some(todo) = fallback {
                    busy_seconds += run_local_fallback(ctx, &todo, self.opts.threads, grace);
                    continue;
                }
                let st = lock(&ctx.state);
                if st.remaining == 0 {
                    break;
                }
                let _ = ctx.cv.wait_timeout(st, Duration::from_millis(100));
            }
            ctx.done.store(true, Ordering::SeqCst);
            // Handler threads notice the flag within one read timeout and
            // send `Done` to their workers; the scope joins them all.
        });

        let st = ctx
            .state
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        dist = st.dist;
        let results = finish_slots(st.results);
        let metrics = BatchMetrics::new(
            n,
            dist.workers_seen.max(1),
            started.elapsed().as_secs_f64(),
            busy_seconds,
        );
        Ok(ServeOutcome {
            results,
            metrics,
            cache: CacheStats { hits, misses },
            dist,
        })
    }
}

/// Bind + run in one call — the `wsnem serve` entry point.
pub fn serve(
    scenarios: &[Scenario],
    caches: &[Option<&ResultCache>],
    mode: CacheMode,
    opts: ServeOptions,
    on_done: Option<BatchProgress<'_>>,
) -> Result<ServeOutcome, FleetdError> {
    Coordinator::bind(scenarios, caches, mode, opts)?.run(on_done)
}

fn finish_slots(
    slots: Vec<Option<Result<ScenarioReport, ScenarioError>>>,
) -> Vec<Result<ScenarioReport, ScenarioError>> {
    slots
        .into_iter()
        .map(|slot| match slot {
            Some(r) => r,
            // Every shard is driven to done before the loops exit.
            None => Err(ScenarioError::Remote(
                "scenario left unresolved by the coordinator".into(),
            )),
        })
        .collect()
}

/// Run the remaining shards through the in-process work-queue runner.
/// Returns the busy seconds spent.
fn run_local_fallback(
    ctx: &Ctx<'_>,
    todo: &[usize],
    threads: Option<usize>,
    grace: Duration,
) -> f64 {
    if todo.is_empty() {
        return 0.0;
    }
    eprintln!(
        "warning: no live workers for {:.1}s; running {} remaining shard(s) locally",
        grace.as_secs_f64(),
        todo.len()
    );
    let (subset, base) = {
        let st = lock(&ctx.state);
        let subset: Vec<Scenario> = todo
            .iter()
            .map(|&i| ctx.scenarios[st.shards[i].slot].clone())
            .collect();
        (subset, st.completed)
    };
    let local_done = AtomicUsize::new(0);
    let cb = |_done: usize, _total: usize, name: &str| {
        if let Some(user_cb) = ctx.on_done {
            let k = local_done.fetch_add(1, Ordering::Relaxed) + 1;
            user_cb(base + k, ctx.total, name);
        }
    };
    let timeout = ctx.timeout_ms.map(|ms| ms as f64 / 1000.0);
    let (results, inner) = run_batch_with_options(&subset, threads, Some(&cb), timeout);
    let mut st = lock(&ctx.state);
    for (&shard_idx, result) in todo.iter().zip(results) {
        // `notify: false` — progress already streamed via the batch
        // callback above.
        complete_shard(ctx, &mut st, shard_idx, result, false, false);
    }
    ctx.cv.notify_all();
    inner.busy_seconds
}

/// Mark a shard done and file its result, idempotently: a shard that is
/// already done only overwrites the stored result (last-write-wins) and
/// counts a duplicate. Returns progress-callback data when the caller
/// should notify.
fn complete_shard(
    ctx: &Ctx<'_>,
    st: &mut State,
    shard_idx: usize,
    result: Result<ScenarioReport, ScenarioError>,
    remote: bool,
    notify: bool,
) -> Option<(usize, usize, String)> {
    let slot = st.shards[shard_idx].slot;
    if st.shards[shard_idx].done {
        st.dist.duplicate_results += 1;
        if result.is_ok() {
            st.results[slot] = Some(result);
        }
        return None;
    }
    if let Ok(report) = &result {
        if ctx.mode != CacheMode::Disabled {
            if let Some(cache) = ctx.caches[slot] {
                store_or_warn(cache, &ctx.scenarios[slot], report);
            }
        }
    }
    st.shards[shard_idx].done = true;
    st.shards[shard_idx].lease = None;
    st.results[slot] = Some(result);
    st.remaining -= 1;
    st.completed += 1;
    if remote {
        st.dist.shards_remote += 1;
    } else {
        st.dist.shards_local += 1;
    }
    if notify {
        Some((st.completed, ctx.total, st.shards[shard_idx].name.clone()))
    } else {
        None
    }
}

/// Return every lease held by `conn` to the pending pool.
fn release_leases(st: &mut State, conn: u64) {
    let mut released = 0;
    for sh in &mut st.shards {
        if sh.done {
            continue;
        }
        if let Some(l) = &sh.lease {
            if l.conn == conn {
                sh.lease = None;
                released += 1;
            }
        }
    }
    st.dist.reassigned += released;
}

fn touch(st: &mut State, conn_id: u64) {
    if let Some(w) = st.workers.get_mut(&conn_id) {
        w.last_seen = Instant::now();
    }
}

/// After `Done` is sent, keep reading (and discarding) until the worker
/// closes its end. Dropping the socket with unread bytes in the receive
/// buffer — a crossed `Request`, an in-flight heartbeat — makes the kernel
/// send RST instead of FIN, which can destroy the `Done` frame before the
/// worker reads it and turn a clean shutdown into a spurious reconnect
/// storm.
fn drain_until_closed(stream: &mut TcpStream) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        match read_message(stream) {
            Ok(_) => continue,
            Err(_) => break,
        }
    }
}

/// One worker connection, from `Hello` to disconnect.
fn handle_conn(ctx: &Ctx<'_>, conn_id: u64, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut registered = false;
    loop {
        if ctx.done.load(Ordering::SeqCst) {
            if write_message(&mut stream, &Message::Done).is_ok() {
                drain_until_closed(&mut stream);
            }
            break;
        }
        let msg = match read_message(&mut stream) {
            Ok(None) => continue,
            Ok(Some(m)) => m,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
            Err(_) => {
                // Corrupt, truncated or oversized: this connection's
                // framing can no longer be trusted — drop it; its leases
                // are released below and the worker reconnects clean.
                lock(&ctx.state).dist.rejected_frames += 1;
                break;
            }
        };
        match msg {
            Message::Hello { protocol, .. } => {
                if protocol != PROTOCOL_VERSION {
                    break;
                }
                let Ok(clone) = stream.try_clone() else { break };
                let shards = {
                    let mut st = lock(&ctx.state);
                    if !registered {
                        st.dist.workers_seen += 1;
                        registered = true;
                    }
                    st.workers.insert(
                        conn_id,
                        WorkerConn {
                            last_seen: Instant::now(),
                            stream: clone,
                        },
                    );
                    st.last_live = Instant::now();
                    st.shards.len() as u64
                };
                let welcome = Message::Welcome {
                    shards,
                    timeout_ms: ctx.timeout_ms,
                };
                if write_message(&mut stream, &welcome).is_err() {
                    break;
                }
            }
            _ if !registered => {
                // Frames before Hello are a protocol violation.
                lock(&ctx.state).dist.rejected_frames += 1;
                break;
            }
            Message::Request { .. } => {
                let reply = {
                    let mut st = lock(&ctx.state);
                    touch(&mut st, conn_id);
                    let pick = (0..st.shards.len())
                        .find(|&i| !st.shards[i].done && st.shards[i].lease.is_none());
                    match pick {
                        Some(i) => {
                            st.shards[i].lease = Some(Lease {
                                conn: conn_id,
                                deadline: Instant::now() + ctx.lease,
                            });
                            Message::Assign {
                                digest: st.shards[i].digest.clone(),
                                scenario: st.shards[i].key.clone(),
                            }
                        }
                        None if st.remaining == 0 => Message::Done,
                        None => Message::NoWork {
                            retry_ms: NO_WORK_RETRY_MS,
                        },
                    }
                };
                if write_message(&mut stream, &reply).is_err() {
                    break;
                }
                if matches!(reply, Message::Done) {
                    drain_until_closed(&mut stream);
                    break;
                }
            }
            Message::Result { digest, report } => {
                let notice = {
                    let mut st = lock(&ctx.state);
                    touch(&mut st, conn_id);
                    ingest_result(ctx, &mut st, conn_id, &digest, &report)
                };
                if let Some((done, total, name)) = notice {
                    ctx.cv.notify_all();
                    if let Some(cb) = ctx.on_done {
                        cb(done, total, &name);
                    }
                }
            }
            Message::Failed {
                digest,
                error,
                timeout_seconds,
            } => {
                let err = match timeout_seconds {
                    Some(seconds) => ScenarioError::Timeout { seconds },
                    None => ScenarioError::Remote(error),
                };
                let notice = {
                    let mut st = lock(&ctx.state);
                    touch(&mut st, conn_id);
                    match st.shards.iter().position(|s| s.digest == digest) {
                        Some(i) => complete_shard(ctx, &mut st, i, Err(err), true, true),
                        None => {
                            st.dist.rejected_frames += 1;
                            None
                        }
                    }
                };
                if let Some((done, total, name)) = notice {
                    ctx.cv.notify_all();
                    if let Some(cb) = ctx.on_done {
                        cb(done, total, &name);
                    }
                }
            }
            Message::Heartbeat { .. } => {
                let mut st = lock(&ctx.state);
                touch(&mut st, conn_id);
                st.last_live = Instant::now();
                // A heartbeat extends the holder's leases: slow-but-alive
                // work is not reassigned from under a beating worker.
                let deadline = Instant::now() + ctx.lease;
                for sh in &mut st.shards {
                    if sh.done {
                        continue;
                    }
                    if let Some(l) = &mut sh.lease {
                        if l.conn == conn_id {
                            l.deadline = deadline;
                        }
                    }
                }
            }
            // Coordinator-bound streams must not carry coordinator replies.
            Message::Welcome { .. }
            | Message::Assign { .. }
            | Message::NoWork { .. }
            | Message::Done => {
                lock(&ctx.state).dist.rejected_frames += 1;
                break;
            }
        }
    }
    // Connection gone, however it went: free its leases for reassignment.
    let mut st = lock(&ctx.state);
    st.workers.remove(&conn_id);
    release_leases(&mut st, conn_id);
    drop(st);
    ctx.cv.notify_all();
}

/// File a `Result` frame. Unknown digests and unparsable reports are
/// rejected (the sender's lease is released so the shard can rerun);
/// duplicates are tolerated last-write-wins.
fn ingest_result(
    ctx: &Ctx<'_>,
    st: &mut State,
    conn_id: u64,
    digest: &str,
    report_json: &str,
) -> Option<(usize, usize, String)> {
    let Some(idx) = st.shards.iter().position(|s| s.digest == digest) else {
        st.dist.rejected_frames += 1;
        return None;
    };
    match serde_json::from_str::<ScenarioReport>(report_json) {
        Ok(report) => complete_shard(ctx, st, idx, Ok(report), true, true),
        Err(_) => {
            st.dist.rejected_frames += 1;
            if !st.shards[idx].done {
                if let Some(l) = &st.shards[idx].lease {
                    if l.conn == conn_id {
                        st.shards[idx].lease = None;
                        st.dist.reassigned += 1;
                    }
                }
            }
            None
        }
    }
}
