//! # wsnem-fleetd
//!
//! Fault-tolerant distributed fleet execution: a TCP coordinator/worker
//! pair that spreads a scenario fleet across machines, keyed by the same
//! `.wsnem-cache/` content-hash digests the local fleet runner uses — so
//! work dedup, result transfer and warm-rejoin all reuse one identifier.
//!
//! ## Shape
//!
//! `wsnem serve <dir>` turns a fleet directory into shards (one scenario
//! each, cache hits resolved up front) and listens; `wsnem worker <addr>`
//! processes pull shards over length-prefixed NDJSON frames
//! ([`protocol`]) and stream report frames back. Workers pull, the
//! coordinator only answers — there is no push path to get ahead of a
//! slow worker.
//!
//! ## Robustness model
//!
//! Everything here assumes workers die mid-shard and sockets lie:
//!
//! * **Leases** ([`coordinator`]): a shard is leased, not given. Crashed,
//!   reaped or expired holders return their shards to the pool.
//! * **Heartbeats**: workers beat while computing; the liveness reaper
//!   cuts silent connections and a beat extends the holder's leases.
//! * **Backoff + jitter** ([`worker`]): reconnects spread out
//!   exponentially with per-worker deterministic jitter.
//! * **Idempotent ingestion**: results are keyed by digest,
//!   duplicate-tolerant, last-write-wins — a reassigned shard finished
//!   twice is still one row.
//! * **Watchdog**: the per-scenario `--scenario-timeout` budget is shared
//!   with workers so a runaway point fails instead of wedging its lease.
//! * **Graceful degradation**: no worker inside the grace window means
//!   the coordinator runs the remainder itself with the in-process
//!   work-queue runner and says so.
//!
//! The [`fault`] module scripts worker misbehavior (kill, mid-frame
//! disconnect, stalled heartbeat, corrupt frame) deterministically, so the
//! recovery machinery above is proven by tests rather than trusted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod coordinator;
pub mod error;
pub mod fault;
pub mod protocol;
pub mod worker;

pub use coordinator::{serve, Coordinator, DistStats, ServeOptions, ServeOutcome};
pub use error::FleetdError;
pub use fault::{Fault, FaultPlan, FaultPoint};
pub use protocol::{FrameError, Message, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};
