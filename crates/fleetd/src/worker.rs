//! The worker: connect, pull shards, compute, stream results back —
//! and reconnect with exponential backoff + jitter when anything breaks.
//!
//! A worker is stateless between sessions: every reconnect starts clean
//! with `Hello`, and any shard it was holding when it died is reassigned
//! by the coordinator's lease machinery. An optional local
//! `.wsnem-cache/`-format directory lets a rejoining worker answer shards
//! it already computed instantly — the digest in `Assign` is the same
//! content hash the cache files under.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wsnem_scenario::runner::run_scenario_bounded;
use wsnem_scenario::{store_or_warn, ResultCache, Scenario, ScenarioError};
use wsnem_stats::rng::{Rng64, Xoshiro256PlusPlus};
use wsnem_stats::StableHasher;

use crate::error::FleetdError;
use crate::fault::{write_garbage_frame, write_half_frame, Fault, FaultPlan, FaultPoint};
use crate::protocol::{read_message, write_message, FrameError, Message, PROTOCOL_VERSION};

/// Knobs for one worker process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Self-chosen name, shown in coordinator diagnostics and used to seed
    /// the backoff jitter (deterministic per name).
    pub name: String,
    /// Optional local result-cache directory (`.wsnem-cache` format); a
    /// rejoining worker answers already-computed shards from it.
    pub cache_dir: Option<PathBuf>,
    /// Scripted misbehavior for tests and drills.
    pub fault_plan: FaultPlan,
    /// Consecutive failed connection attempts before giving up.
    pub max_retries: u32,
    /// First reconnect delay in milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Reconnect delay ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Heartbeat period in milliseconds.
    pub heartbeat_ms: u64,
    /// Local per-scenario watchdog override in seconds; when `None` the
    /// coordinator's `Welcome` timeout applies.
    pub timeout_seconds: Option<f64>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: format!("worker-{}", std::process::id()),
            cache_dir: None,
            fault_plan: FaultPlan::none(),
            max_retries: 10,
            backoff_base_ms: 100,
            backoff_cap_ms: 5000,
            heartbeat_ms: 1000,
            timeout_seconds: None,
        }
    }
}

/// What one worker run amounted to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards whose results were sent (including cache answers).
    pub shards_done: u32,
    /// Shards answered from the local cache without computing.
    pub cache_hits: u32,
    /// Sessions re-established after a lost connection.
    pub reconnects: u32,
    /// Sessions opened in total.
    pub sessions: u32,
    /// True when a `kill-after` fault plan terminated the worker.
    pub killed: bool,
}

enum SessionEnd {
    /// The coordinator said `Done`: the fleet is complete.
    Done,
    /// A `kill-after` fault fired: simulate a crash, do not reconnect.
    Killed,
    /// The connection was lost (injected or real): reconnect with backoff.
    Lost,
}

/// Full jitter over an exponentially growing ceiling: uniform in
/// `[ceil/2, ceil]` where `ceil = min(base · 2^(attempt-1), cap)`. Seeded
/// per worker name, so test runs are reproducible.
fn backoff_delay(
    rng: &mut Xoshiro256PlusPlus,
    attempt: u32,
    base_ms: u64,
    cap_ms: u64,
) -> Duration {
    let shift = attempt.saturating_sub(1).min(16);
    let ceil = base_ms.saturating_mul(1u64 << shift).min(cap_ms).max(1);
    let half = ceil / 2;
    let jitter = rng.next_bounded(ceil - half + 1);
    Duration::from_millis(half + jitter)
}

fn send(writer: &Mutex<TcpStream>, msg: &Message) -> Result<(), FleetdError> {
    let mut w = writer
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    write_message(&mut *w, msg).map_err(FleetdError::from)
}

/// Wait up to `wait` for the next frame, absorbing idle ticks.
fn read_reply(r: &mut TcpStream, wait: Duration) -> Result<Message, FleetdError> {
    let deadline = Instant::now() + wait;
    loop {
        match read_message(r)? {
            Some(m) => return Ok(m),
            None => {
                if Instant::now() >= deadline {
                    return Err(FleetdError::Io(
                        "timed out waiting for a coordinator reply".into(),
                    ));
                }
            }
        }
    }
}

/// Run a worker against `addr` until the coordinator says `Done`, a
/// `kill-after` fault fires, or the reconnect budget is exhausted.
pub fn run_worker(addr: &str, opts: WorkerOptions) -> Result<WorkerSummary, FleetdError> {
    let cache = match &opts.cache_dir {
        Some(dir) => {
            Some(ResultCache::open(dir.clone()).map_err(|e| FleetdError::Io(e.to_string()))?)
        }
        None => None,
    };
    let mut plan = opts.fault_plan.clone();
    let mut summary = WorkerSummary::default();
    let mut rng = Xoshiro256PlusPlus::new(StableHasher::hash_bytes(opts.name.as_bytes()) as u64);
    let mut attempt: u32 = 0;
    loop {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                attempt += 1;
                if attempt > opts.max_retries {
                    return Err(FleetdError::GaveUp {
                        attempts: attempt,
                        last: e.to_string(),
                    });
                }
                std::thread::sleep(backoff_delay(
                    &mut rng,
                    attempt,
                    opts.backoff_base_ms,
                    opts.backoff_cap_ms,
                ));
                continue;
            }
        };
        summary.sessions += 1;
        if summary.sessions > 1 {
            summary.reconnects += 1;
        }
        match session(stream, &opts, cache.as_ref(), &mut plan, &mut summary) {
            Ok(SessionEnd::Done) => return Ok(summary),
            Ok(SessionEnd::Killed) => {
                summary.killed = true;
                return Ok(summary);
            }
            Ok(SessionEnd::Lost) => {
                // The session was established before it broke: reset the
                // give-up counter, back off briefly, reconnect.
                attempt = 1;
                std::thread::sleep(backoff_delay(
                    &mut rng,
                    attempt,
                    opts.backoff_base_ms,
                    opts.backoff_cap_ms,
                ));
            }
            Err(e) => {
                attempt += 1;
                if attempt > opts.max_retries {
                    return Err(FleetdError::GaveUp {
                        attempts: attempt,
                        last: e.to_string(),
                    });
                }
                std::thread::sleep(backoff_delay(
                    &mut rng,
                    attempt,
                    opts.backoff_base_ms,
                    opts.backoff_cap_ms,
                ));
            }
        }
    }
}

/// One connection: `Hello`/`Welcome`, then the request/compute/result
/// loop with a heartbeat thread writing through the shared socket lock.
fn session(
    mut reader: TcpStream,
    opts: &WorkerOptions,
    cache: Option<&ResultCache>,
    plan: &mut FaultPlan,
    summary: &mut WorkerSummary,
) -> Result<SessionEnd, FleetdError> {
    let _ = reader.set_nodelay(true);
    reader
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| FleetdError::Io(e.to_string()))?;
    let writer = Mutex::new(
        reader
            .try_clone()
            .map_err(|e| FleetdError::Io(e.to_string()))?,
    );
    send(
        &writer,
        &Message::Hello {
            worker: opts.name.clone(),
            protocol: PROTOCOL_VERSION,
        },
    )?;
    let welcome = read_reply(&mut reader, Duration::from_secs(10))?;
    let Message::Welcome { timeout_ms, .. } = welcome else {
        return Err(FleetdError::Frame(FrameError::Corrupt(format!(
            "expected Welcome, got {welcome:?}"
        ))));
    };
    let timeout = opts
        .timeout_seconds
        .or(timeout_ms.map(|ms| ms as f64 / 1000.0));

    let stop = AtomicBool::new(false);
    let pause = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Heartbeats go through the same write lock as results, so the
            // two writers can never interleave bytes mid-frame. Sleep in
            // short slices so session teardown is prompt.
            let mut since_beat = 0u64;
            loop {
                std::thread::sleep(Duration::from_millis(25));
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                since_beat += 25;
                if since_beat >= opts.heartbeat_ms {
                    since_beat = 0;
                    if !pause.load(Ordering::SeqCst)
                        && send(
                            &writer,
                            &Message::Heartbeat {
                                worker: opts.name.clone(),
                            },
                        )
                        .is_err()
                    {
                        // Dead socket; the shard loop will hit it too.
                        break;
                    }
                }
            }
        });
        let end = shard_loop(
            &mut reader,
            &writer,
            opts,
            cache,
            plan,
            summary,
            timeout,
            &pause,
        );
        stop.store(true, Ordering::SeqCst);
        end
    })
}

#[allow(clippy::too_many_arguments)]
fn shard_loop(
    reader: &mut TcpStream,
    writer: &Mutex<TcpStream>,
    opts: &WorkerOptions,
    cache: Option<&ResultCache>,
    plan: &mut FaultPlan,
    summary: &mut WorkerSummary,
    timeout: Option<f64>,
    pause: &AtomicBool,
) -> Result<SessionEnd, FleetdError> {
    loop {
        send(
            writer,
            &Message::Request {
                worker: opts.name.clone(),
            },
        )?;
        let reply = read_reply(reader, Duration::from_secs(30))?;
        match reply {
            Message::Assign { digest, scenario } => {
                // The digest is recomputed from the payload: a mismatch
                // means the frame (or the coordinator) is corrupt, and
                // running it would file a result under the wrong key.
                if ResultCache::digest_of_key(&scenario) != digest {
                    return Err(FleetdError::Frame(FrameError::Corrupt(
                        "shard digest does not match its scenario payload".into(),
                    )));
                }
                match plan.take_at(FaultPoint::Assigned, summary.shards_done) {
                    Some(Fault::KillAfterShards(_)) => return Ok(SessionEnd::Killed),
                    Some(Fault::DelayHeartbeat { stall_ms, .. }) => {
                        pause.store(true, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(stall_ms));
                        pause.store(false, Ordering::SeqCst);
                        // Probe the socket: if the liveness reaper already
                        // cut us, reconnect instead of computing a shard
                        // nobody will accept.
                        send(
                            writer,
                            &Message::Heartbeat {
                                worker: opts.name.clone(),
                            },
                        )?;
                    }
                    _ => {}
                }
                let parsed: Scenario = serde_json::from_str(&scenario)
                    .map_err(|e| FleetdError::Codec(e.to_string()))?;
                let result = match cache.and_then(|c| c.lookup(&parsed).unwrap_or(None)) {
                    Some(report) => {
                        summary.cache_hits += 1;
                        Ok(report)
                    }
                    None => {
                        let r = run_scenario_bounded(&parsed, None, timeout);
                        if let (Ok(report), Some(c)) = (&r, cache) {
                            store_or_warn(c, &parsed, report);
                        }
                        r
                    }
                };
                let msg = match &result {
                    Ok(report) => Message::Result {
                        digest,
                        report: serde_json::to_string(report)
                            .map_err(|e| FleetdError::Codec(e.to_string()))?,
                    },
                    Err(e) => {
                        let timeout_seconds = match e {
                            ScenarioError::Timeout { seconds } => Some(*seconds),
                            _ => None,
                        };
                        Message::Failed {
                            digest,
                            error: e.to_string(),
                            timeout_seconds,
                        }
                    }
                };
                match plan.take_at(FaultPoint::Sending, summary.shards_done) {
                    Some(Fault::DropMidFrame(_)) => {
                        let mut w = writer
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        let _ = write_half_frame(&mut *w, &msg);
                        let _ = w.shutdown(std::net::Shutdown::Both);
                        return Ok(SessionEnd::Lost);
                    }
                    Some(Fault::CorruptFrame(_)) => {
                        let mut w = writer
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        let _ = write_garbage_frame(&mut *w);
                        return Ok(SessionEnd::Lost);
                    }
                    _ => {}
                }
                send(writer, &msg)?;
                summary.shards_done += 1;
            }
            Message::NoWork { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 1000)));
            }
            Message::Done => return Ok(SessionEnd::Done),
            other => {
                return Err(FleetdError::Frame(FrameError::Corrupt(format!(
                    "unexpected coordinator message {other:?}"
                ))))
            }
        }
    }
}
