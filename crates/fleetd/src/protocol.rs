//! The coordinator/worker wire protocol: length-prefixed NDJSON frames.
//!
//! Every message on the wire is one **frame**: a 4-byte big-endian length
//! prefix followed by exactly that many payload bytes — the compact JSON
//! serialization of a [`Message`] terminated by `\n` (so a captured stream
//! with the prefixes stripped is valid NDJSON). The prefix lets the reader
//! reject oversized or truncated frames *before* parsing, and the decoder
//! maps every malformed input to a typed [`FrameError`] — never a panic —
//! because a byte stream from the network is attacker-shaped by
//! definition.
//!
//! Reads are **idle-aware**: sockets run with a short read timeout, and a
//! timeout before the first byte of a frame returns `Ok(None)` (nothing
//! arrived — go check your own shutdown flags) while a timeout *inside* a
//! frame, after [`MID_FRAME_GRACE`], is a [`FrameError::Truncated`] hard
//! error (the peer stalled mid-sentence).

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Protocol revision, exchanged in `Hello`. A coordinator drops workers
/// that speak a different revision rather than guessing.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard upper bound on a frame's payload length. Reports are a few KiB;
/// anything claiming more than this is a corrupt or hostile prefix and is
/// rejected without allocating.
pub const MAX_FRAME_LEN: u32 = 32 * 1024 * 1024;

/// How long a reader waits for the *rest* of a frame once its first byte
/// arrived, absorbing short socket read-timeouts in between.
pub const MID_FRAME_GRACE: Duration = Duration::from_secs(10);

/// One protocol message. Workers pull: the coordinator only ever answers.
///
/// Scenario payloads travel as their **canonical JSON key string** (the
/// exact bytes the `.wsnem-cache/` digest is computed over), so a worker
/// can verify the shard digest byte-for-byte and answer from its own warm
/// cache; reports travel as their serialized JSON so the coordinator
/// ingests them verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Worker → coordinator, once per connection: identify and version-check.
    Hello {
        /// Worker's self-chosen name (diagnostics only).
        worker: String,
        /// The [`PROTOCOL_VERSION`] the worker speaks.
        protocol: u32,
    },
    /// Coordinator → worker, answering `Hello`.
    Welcome {
        /// Shards in this fleet (cache hits excluded).
        shards: u64,
        /// Per-scenario wall-clock watchdog the coordinator wants workers
        /// to apply, in milliseconds (`--scenario-timeout`).
        timeout_ms: Option<u64>,
    },
    /// Worker → coordinator: give me a shard.
    Request {
        /// Worker name (diagnostics only).
        worker: String,
    },
    /// Coordinator → worker: run this shard.
    Assign {
        /// Content-hash digest the result must be filed under.
        digest: String,
        /// Canonical scenario JSON (the digest's preimage).
        scenario: String,
    },
    /// Coordinator → worker: nothing assignable right now (everything is
    /// leased out), ask again after `retry_ms`.
    NoWork {
        /// Suggested retry delay in milliseconds.
        retry_ms: u64,
    },
    /// Coordinator → worker: the fleet is complete, disconnect.
    Done,
    /// Worker → coordinator: a finished shard.
    Result {
        /// Digest from the `Assign` this answers.
        digest: String,
        /// Serialized `ScenarioReport` JSON.
        report: String,
    },
    /// Worker → coordinator: the shard failed (the fleet records the error
    /// and moves on; failures are per-point, never fatal to the batch).
    Failed {
        /// Digest from the `Assign` this answers.
        digest: String,
        /// Rendered error message.
        error: String,
        /// Set when the failure was the per-scenario watchdog firing, with
        /// the budget that was exceeded.
        timeout_seconds: Option<f64>,
    },
    /// Worker → coordinator: liveness beacon, also sent while a shard is
    /// computing so slow-but-alive work keeps its lease.
    Heartbeat {
        /// Worker name (diagnostics only).
        worker: String,
    },
}

/// Typed decode/transport failures. Malformed network input must land
/// here — never in a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// A length prefix claimed more than [`MAX_FRAME_LEN`] bytes.
    TooLarge {
        /// Claimed payload length.
        len: u32,
        /// The configured maximum.
        max: u32,
    },
    /// The stream ended (or stalled past [`MID_FRAME_GRACE`]) inside a
    /// frame.
    Truncated {
        /// Bytes the frame section needed.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The payload was not a valid UTF-8 JSON [`Message`].
    Corrupt(String),
    /// An underlying transport error.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte limit")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            FrameError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode a message into one complete frame (prefix + payload bytes).
pub fn encode_message(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let mut payload = serde_json::to_string(msg).map_err(|e| FrameError::Corrupt(e.to_string()))?;
    payload.push('\n');
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(FrameError::TooLarge {
            len: payload.len() as u32,
            max: MAX_FRAME_LEN,
        });
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload.as_bytes());
    Ok(frame)
}

/// Write one message as a frame and flush it.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), FrameError> {
    let frame = encode_message(msg)?;
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

fn is_idle(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

/// Read the rest of a section whose first `got` bytes are already in
/// `buf`, absorbing read-timeouts up to [`MID_FRAME_GRACE`].
fn read_remainder<R: Read>(r: &mut R, buf: &mut [u8], mut got: usize) -> Result<(), FrameError> {
    let expected = buf.len();
    let deadline = Instant::now() + MID_FRAME_GRACE;
    while got < expected {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(FrameError::Truncated { expected, got }),
            Ok(n) => got += n,
            Err(e) if is_idle(&e) => {
                if Instant::now() >= deadline {
                    return Err(FrameError::Truncated { expected, got });
                }
            }
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Read one message frame.
///
/// `Ok(None)` means *idle*: the socket's read timeout expired before any
/// byte of a frame arrived — the caller should check its shutdown flags
/// and call again. Once a frame has started, the peer gets
/// [`MID_FRAME_GRACE`] to finish it; a stall or EOF inside the frame is
/// [`FrameError::Truncated`], a clean EOF between frames is
/// [`FrameError::Closed`].
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, FrameError> {
    let mut prefix = [0u8; 4];
    // The first byte decides between idle, clean close and a frame start.
    let got = match r.read(&mut prefix[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) => n,
        Err(e) if is_idle(&e) => return Ok(None),
        Err(e) => return Err(FrameError::Io(e.to_string())),
    };
    read_remainder(r, &mut prefix, got)?;
    let len = u32::from_be_bytes(prefix);
    if len == 0 {
        return Err(FrameError::Corrupt("zero-length frame".into()));
    }
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_remainder(r, &mut payload, 0)?;
    decode_payload(&payload).map(Some)
}

/// Decode a frame payload (everything after the length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<Message, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Corrupt(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str::<Message>(text.trim_end_matches('\n'))
        .map_err(|e| FrameError::Corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let msgs = vec![
            Message::Hello {
                worker: "w1".into(),
                protocol: PROTOCOL_VERSION,
            },
            Message::Welcome {
                shards: 24,
                timeout_ms: Some(5000),
            },
            Message::Done,
            Message::NoWork { retry_ms: 200 },
        ];
        let mut wire = Vec::new();
        for m in &msgs {
            write_message(&mut wire, m).unwrap();
        }
        let mut r = Cursor::new(wire);
        for m in &msgs {
            assert_eq!(read_message(&mut r).unwrap().unwrap(), *m);
        }
        assert_eq!(read_message(&mut r).unwrap_err(), FrameError::Closed);
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"whatever");
        let err = read_message(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge { len, .. } if len == u32::MAX));
    }

    #[test]
    fn truncated_and_corrupt_frames_are_typed_errors() {
        // Frame cut inside the payload.
        let full = encode_message(&Message::Done).unwrap();
        let cut = &full[..full.len() - 2];
        let err = read_message(&mut Cursor::new(cut.to_vec())).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { .. }), "{err}");

        // Valid prefix, garbage payload.
        let mut wire = 7u32.to_be_bytes().to_vec();
        wire.extend_from_slice(b"garbage");
        let err = read_message(&mut Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(_)), "{err}");

        // Zero-length frame.
        let err = read_message(&mut Cursor::new(0u32.to_be_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(_)), "{err}");
    }
}
