//! Deterministic fault injection for the distributed layer.
//!
//! A [`FaultPlan`] scripts a worker's misbehavior ahead of time —
//! `wsnem worker --fault-plan kill-after=3` — so integration tests and CI
//! can prove the coordinator's recovery machinery (lease reassignment,
//! liveness reaping, corrupt-frame rejection) against *reproducible*
//! failures instead of hoping a race shows up. Each fault fires **once**,
//! at a deterministic trigger point keyed to the number of shards the
//! worker has completed.

use std::io::Write;

use crate::protocol::{encode_message, FrameError, Message};

/// One scripted misbehavior. `N` counts *completed* shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Crash (drop the socket without a word, stop working) when the
    /// worker is assigned its next shard after completing `N` — i.e. die
    /// holding an unfinished lease, forcing a reassignment.
    KillAfterShards(u32),
    /// When sending the result of the `N`-th shard, write only half the
    /// frame, then sever the connection; the coordinator must reject the
    /// truncated frame and reassign, the worker reconnects with backoff.
    DropMidFrame(u32),
    /// After completing `N` shards, stop heartbeating and stall for
    /// `stall_ms` while holding the next lease — long enough for the
    /// liveness reaper to declare the worker dead.
    DelayHeartbeat {
        /// Completed-shard count that arms the stall.
        after: u32,
        /// Stall duration in milliseconds.
        stall_ms: u64,
    },
    /// Instead of the `N`-th result, send a garbage payload under a valid
    /// length prefix; the coordinator must reject it as corrupt and drop
    /// the connection.
    CorruptFrame(u32),
}

/// Where in the worker loop a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A shard was just assigned (before any work happens).
    Assigned,
    /// A finished result is about to be sent.
    Sending,
}

/// An ordered, one-shot set of [`Fault`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: a well-behaved worker.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Plan with one fault.
    pub fn single(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Add a fault to the plan.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// True when no faults remain to fire.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse the CLI syntax: comma-separated
    /// `kill-after=N`, `drop-mid-frame=N`, `corrupt-frame=N`,
    /// `delay-heartbeat=N:STALL_MS`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, arg) = part
                .split_once('=')
                .ok_or_else(|| format!("fault `{part}`: expected `kind=value`"))?;
            let fault = match kind {
                "kill-after" => Fault::KillAfterShards(parse_u32(kind, arg)?),
                "drop-mid-frame" => Fault::DropMidFrame(parse_u32(kind, arg)?),
                "corrupt-frame" => Fault::CorruptFrame(parse_u32(kind, arg)?),
                "delay-heartbeat" => {
                    let (after, stall) = arg
                        .split_once(':')
                        .ok_or_else(|| format!("fault `{kind}`: expected `{kind}=N:STALL_MS`"))?;
                    Fault::DelayHeartbeat {
                        after: parse_u32(kind, after)?,
                        stall_ms: stall
                            .parse::<u64>()
                            .map_err(|_| format!("fault `{kind}`: bad stall `{stall}`"))?,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown fault `{other}` (expected kill-after, drop-mid-frame, \
                         corrupt-frame or delay-heartbeat)"
                    ))
                }
            };
            plan.push(fault);
        }
        Ok(plan)
    }

    /// Pop the first fault armed at `point` given `shards_done` completed
    /// shards. One-shot: a returned fault is removed from the plan.
    pub fn take_at(&mut self, point: FaultPoint, shards_done: u32) -> Option<Fault> {
        let idx = self.faults.iter().position(|f| match (point, f) {
            (FaultPoint::Assigned, Fault::KillAfterShards(n)) => shards_done >= *n,
            (FaultPoint::Assigned, Fault::DelayHeartbeat { after, .. }) => shards_done >= *after,
            // Sending the result of shard `shards_done + 1` (1-indexed).
            (FaultPoint::Sending, Fault::DropMidFrame(n)) => shards_done + 1 >= *n,
            (FaultPoint::Sending, Fault::CorruptFrame(n)) => shards_done + 1 >= *n,
            _ => false,
        })?;
        Some(self.faults.remove(idx))
    }
}

fn parse_u32(kind: &str, arg: &str) -> Result<u32, String> {
    arg.parse::<u32>()
        .map_err(|_| format!("fault `{kind}`: bad count `{arg}`"))
}

/// Write the first half of `msg`'s frame and stop — the injected
/// mid-frame disconnect. The peer's reader must report
/// [`FrameError::Truncated`].
pub fn write_half_frame<W: Write>(w: &mut W, msg: &Message) -> Result<(), FrameError> {
    let frame = encode_message(msg)?;
    let half = frame.len() / 2;
    w.write_all(&frame[..half])
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

/// Write a frame whose payload is garbage under a valid length prefix —
/// the injected corrupt frame. The peer's reader must report
/// [`FrameError::Corrupt`].
pub fn write_garbage_frame<W: Write>(w: &mut W) -> Result<(), FrameError> {
    let payload: &[u8] = b"\x00\xffnot json at all\n";
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(payload);
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_fault_class() {
        let plan = FaultPlan::parse(
            "kill-after=3, drop-mid-frame=1,corrupt-frame=2,delay-heartbeat=0:1500",
        )
        .unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                faults: vec![
                    Fault::KillAfterShards(3),
                    Fault::DropMidFrame(1),
                    Fault::CorruptFrame(2),
                    Fault::DelayHeartbeat {
                        after: 0,
                        stall_ms: 1500
                    },
                ]
            }
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("kill-after").is_err());
        assert!(FaultPlan::parse("kill-after=x").is_err());
        assert!(FaultPlan::parse("delay-heartbeat=3").is_err());
        assert!(FaultPlan::parse("explode=1").is_err());
    }

    #[test]
    fn faults_fire_once_at_their_trigger_point() {
        let mut plan = FaultPlan::parse("kill-after=2,corrupt-frame=1").unwrap();
        // Corrupt fires when sending the first result…
        assert_eq!(plan.take_at(FaultPoint::Assigned, 0), None);
        assert_eq!(
            plan.take_at(FaultPoint::Sending, 0),
            Some(Fault::CorruptFrame(1))
        );
        // …and never again.
        assert_eq!(plan.take_at(FaultPoint::Sending, 5), None);
        // Kill arms only once two shards are done.
        assert_eq!(plan.take_at(FaultPoint::Assigned, 1), None);
        assert_eq!(
            plan.take_at(FaultPoint::Assigned, 2),
            Some(Fault::KillAfterShards(2))
        );
        assert!(plan.is_empty());
    }
}
