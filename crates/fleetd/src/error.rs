//! Error type of the distributed layer.

use crate::protocol::FrameError;

/// Failures from the coordinator or worker side of a distributed run.
///
/// Per-scenario failures are *not* errors here — they travel inside the
/// result set exactly as in a local batch. `FleetdError` is reserved for
/// the run itself going wrong: the listener cannot bind, a worker cannot
/// reach the coordinator, the protocol broke down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetdError {
    /// Socket-level failure (bind, connect, shutdown).
    Io(String),
    /// A protocol frame could not be read or written.
    Frame(FrameError),
    /// The peer speaks a different protocol revision.
    Version {
        /// Our [`crate::protocol::PROTOCOL_VERSION`].
        ours: u32,
        /// The revision the peer announced.
        theirs: u32,
    },
    /// The worker exhausted its reconnect budget.
    GaveUp {
        /// Consecutive failed attempts before giving up.
        attempts: u32,
        /// The last error seen, rendered.
        last: String,
    },
    /// A scenario or report could not be (de)serialized for transport.
    Codec(String),
}

impl std::fmt::Display for FleetdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetdError::Io(msg) => write!(f, "io error: {msg}"),
            FleetdError::Frame(e) => write!(f, "protocol error: {e}"),
            FleetdError::Version { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}"
            ),
            FleetdError::GaveUp { attempts, last } => write!(
                f,
                "gave up reaching the coordinator after {attempts} attempt(s): {last}"
            ),
            FleetdError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for FleetdError {}

impl From<FrameError> for FleetdError {
    fn from(e: FrameError) -> Self {
        FleetdError::Frame(e)
    }
}
