//! Frame-codec property battery: seeded round-trips, length-prefix
//! bounds, truncation at every cut point, byte-flip corruption and raw
//! fuzz — the decoder must answer every input with a typed
//! [`FrameError`], never a panic.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants

use std::io::Cursor;

use wsnem_fleetd::protocol::{
    decode_payload, encode_message, read_message, write_message, FrameError, Message,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use wsnem_stats::rng::{Rng64, Xoshiro256PlusPlus};

fn rand_string(rng: &mut Xoshiro256PlusPlus, max_len: u64) -> String {
    let len = rng.next_bounded(max_len + 1) as usize;
    (0..len)
        .map(|_| {
            // Mix ASCII with characters that need JSON escaping.
            match rng.next_bounded(6) {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\u{00e9}',
                _ => (b'a' + rng.next_bounded(26) as u8) as char,
            }
        })
        .collect()
}

fn rand_message(rng: &mut Xoshiro256PlusPlus) -> Message {
    match rng.next_bounded(9) {
        0 => Message::Hello {
            worker: rand_string(rng, 40),
            protocol: rng.next_u64() as u32,
        },
        1 => Message::Welcome {
            shards: rng.next_u64() % 10_000,
            timeout_ms: if rng.next_bounded(2) == 0 {
                None
            } else {
                Some(rng.next_u64() % 1_000_000)
            },
        },
        2 => Message::Request {
            worker: rand_string(rng, 40),
        },
        3 => Message::Assign {
            digest: rand_string(rng, 64),
            scenario: rand_string(rng, 4000),
        },
        4 => Message::NoWork {
            retry_ms: rng.next_u64() % 60_000,
        },
        5 => Message::Done,
        6 => Message::Result {
            digest: rand_string(rng, 64),
            report: rand_string(rng, 4000),
        },
        7 => Message::Failed {
            digest: rand_string(rng, 64),
            error: rand_string(rng, 200),
            timeout_seconds: if rng.next_bounded(2) == 0 {
                None
            } else {
                Some(rng.next_f64() * 1000.0)
            },
        },
        _ => Message::Heartbeat {
            worker: rand_string(rng, 40),
        },
    }
}

#[test]
fn seeded_round_trip_battery() {
    let mut rng = Xoshiro256PlusPlus::new(0xF1EE7D);
    for round in 0..500 {
        let msg = rand_message(&mut rng);
        let frame = encode_message(&msg).unwrap();
        // Prefix accounts for exactly the payload bytes, which end in \n.
        let len = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        assert_eq!(len, frame.len() - 4, "round {round}");
        assert!(len <= MAX_FRAME_LEN as usize);
        assert_eq!(frame[frame.len() - 1], b'\n', "NDJSON-compatible payload");
        let back = read_message(&mut Cursor::new(frame)).unwrap().unwrap();
        assert_eq!(back, msg, "round {round}");
    }
}

#[test]
fn streams_of_many_frames_decode_in_order() {
    let mut rng = Xoshiro256PlusPlus::new(42);
    let msgs: Vec<Message> = (0..64).map(|_| rand_message(&mut rng)).collect();
    let mut wire = Vec::new();
    for m in &msgs {
        write_message(&mut wire, m).unwrap();
    }
    let mut r = Cursor::new(wire);
    for (i, m) in msgs.iter().enumerate() {
        assert_eq!(read_message(&mut r).unwrap().as_ref(), Some(m), "frame {i}");
    }
    assert_eq!(read_message(&mut r).unwrap_err(), FrameError::Closed);
}

#[test]
fn length_prefix_bounds_are_enforced() {
    // One past the limit: rejected before any payload is read.
    let mut wire = (MAX_FRAME_LEN + 1).to_be_bytes().to_vec();
    wire.extend_from_slice(b"x");
    assert!(matches!(
        read_message(&mut Cursor::new(wire)).unwrap_err(),
        FrameError::TooLarge { len, max } if len == MAX_FRAME_LEN + 1 && max == MAX_FRAME_LEN
    ));
    // Exactly at the limit with a short stream: Truncated, not TooLarge.
    let wire = MAX_FRAME_LEN.to_be_bytes().to_vec();
    assert!(matches!(
        read_message(&mut Cursor::new(wire)).unwrap_err(),
        FrameError::Truncated { .. }
    ));
    // Zero length: corrupt.
    assert!(matches!(
        read_message(&mut Cursor::new(0u32.to_be_bytes().to_vec())).unwrap_err(),
        FrameError::Corrupt(_)
    ));
    // Encoding an over-limit message is refused symmetrically.
    let huge = Message::Result {
        digest: "d".into(),
        report: "r".repeat(MAX_FRAME_LEN as usize),
    };
    assert!(matches!(
        encode_message(&huge).unwrap_err(),
        FrameError::TooLarge { .. }
    ));
}

#[test]
fn truncation_at_every_cut_point_is_a_typed_error() {
    let frame = encode_message(&Message::Hello {
        worker: "truncate-me".into(),
        protocol: PROTOCOL_VERSION,
    })
    .unwrap();
    for cut in 0..frame.len() {
        let err = read_message(&mut Cursor::new(frame[..cut].to_vec())).unwrap_err();
        if cut == 0 {
            assert_eq!(err, FrameError::Closed, "cut {cut}");
        } else {
            assert!(
                matches!(err, FrameError::Truncated { expected, got } if got < expected),
                "cut {cut}: {err}"
            );
        }
    }
}

#[test]
fn byte_flip_corruption_never_panics() {
    let mut rng = Xoshiro256PlusPlus::new(7);
    let frame = encode_message(&Message::Assign {
        digest: "abc123".into(),
        scenario: "{\"name\":\"x\"}".into(),
    })
    .unwrap();
    for i in 0..frame.len() {
        for _ in 0..4 {
            let mut mutated = frame.clone();
            mutated[i] ^= (1 + rng.next_bounded(255)) as u8;
            // Any typed outcome is acceptable; a panic is the only failure.
            let _ = read_message(&mut Cursor::new(mutated));
        }
    }
}

#[test]
fn raw_fuzz_blobs_never_panic() {
    let mut rng = Xoshiro256PlusPlus::new(0xDEAD);
    for _ in 0..2000 {
        let len = rng.next_bounded(256) as usize;
        let blob: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = read_message(&mut Cursor::new(blob.clone()));
        let _ = decode_payload(&blob);
    }
    // Non-UTF-8 payload is Corrupt, specifically.
    assert!(matches!(
        decode_payload(&[0xff, 0xfe, 0x00]),
        Err(FrameError::Corrupt(_))
    ));
}
