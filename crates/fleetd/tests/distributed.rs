//! End-to-end distributed runs over loopback TCP: a real coordinator, real
//! worker threads, scripted faults — and the tentpole invariant that a
//! fleet completed under worker crashes merges to the byte-identical CSV a
//! local run produces.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants

use std::net::TcpStream;
use std::time::Duration;

use wsnem_fleetd::protocol::{read_message, write_message, FrameError, Message, PROTOCOL_VERSION};
use wsnem_fleetd::{
    run_worker, Coordinator, FaultPlan, FleetdError, ServeOptions, ServeOutcome, WorkerOptions,
    WorkerSummary,
};
use wsnem_scenario::runner::run_scenario;
use wsnem_scenario::{
    builtin, run_cached, BackendId, CacheMode, CacheStats, PhaseSeconds, ResultCache, Scenario,
    ScenarioError, ScenarioReport,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wsnem-fleetd-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small all-miss fleet: distinct λ per point, fast Markov backend.
fn quick_fleet(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|i| {
            let mut s = builtin::paper_defaults();
            s.name = format!("pt-{i}");
            s.backends = vec![BackendId::Markov];
            s.cpu = s
                .cpu
                .with_replications(2)
                .with_horizon(200.0)
                .with_lambda(0.3 + 0.05 * i as f64);
            s
        })
        .collect()
}

fn sopts() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".into(),
        ..ServeOptions::default()
    }
}

fn wopts(name: &str) -> WorkerOptions {
    WorkerOptions {
        name: name.into(),
        max_retries: 8,
        backoff_base_ms: 20,
        backoff_cap_ms: 200,
        heartbeat_ms: 100,
        ..WorkerOptions::default()
    }
}

/// Bind on a free port, run the coordinator with worker threads attached
/// (each optionally delayed), join everything.
fn run_distributed(
    scenarios: &[Scenario],
    caches: &[Option<&ResultCache>],
    mode: CacheMode,
    opts: ServeOptions,
    workers: Vec<(WorkerOptions, u64)>,
) -> (ServeOutcome, Vec<Result<WorkerSummary, FleetdError>>) {
    let coord = Coordinator::bind(scenarios, caches, mode, opts).unwrap();
    let addr = coord.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|(w, delay_ms)| {
                let addr = addr.clone();
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(delay_ms));
                    run_worker(&addr, w)
                })
            })
            .collect();
        let outcome = coord.run(None).unwrap();
        let summaries: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (outcome, summaries)
    })
}

/// A report with its wall-clock fields zeroed: distributed and local runs
/// must agree on every *model* number; only timing is machine-dependent.
fn normalized(r: &ScenarioReport) -> ScenarioReport {
    let mut r = r.clone();
    r.elapsed_seconds = 0.0;
    r.phase_seconds = PhaseSeconds::default();
    for b in &mut r.backends {
        b.eval_seconds = 0.0;
    }
    r
}

fn merged_csv(results: &[Result<ScenarioReport, ScenarioError>]) -> Vec<String> {
    results
        .iter()
        .flat_map(|r| r.as_ref().unwrap().csv_rows())
        .collect()
}

#[test]
fn two_workers_complete_a_fleet_byte_identical_to_a_local_run() {
    let dir = temp_dir("happy");
    let scenarios = quick_fleet(8);
    let cache = ResultCache::open_under(&dir).unwrap();
    let caches: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| Some(&cache)).collect();

    let (outcome, summaries) = run_distributed(
        &scenarios,
        &caches,
        CacheMode::ReadWrite,
        sopts(),
        vec![(wopts("w1"), 0), (wopts("w2"), 0)],
    );

    assert_eq!(outcome.cache, CacheStats { hits: 0, misses: 8 });
    assert_eq!(outcome.dist.shards_total, 8);
    assert_eq!(outcome.dist.shards_remote, 8);
    assert_eq!(outcome.dist.shards_local, 0);
    assert_eq!(outcome.dist.duplicate_results, 0);
    assert_eq!(outcome.dist.rejected_frames, 0);
    assert_eq!(outcome.dist.reassigned, 0);
    assert!(!outcome.dist.fell_back_local);
    assert!(outcome.dist.workers_seen >= 1);
    // Every shard was worked exactly once, by whichever workers made it in
    // before the fleet drained (a straggler may find the party over).
    let done: u32 = summaries
        .iter()
        .filter_map(|s| s.as_ref().ok())
        .map(|s| s.shards_done)
        .sum();
    assert_eq!(done, 8, "summaries: {summaries:?}");

    // The distributed run populated the coordinator's cache; a warm local
    // run answers verbatim from it — merged CSV byte-identical.
    let (warm, _, stats) = run_cached(&scenarios, &caches, Some(1), CacheMode::ReadWrite, None);
    assert_eq!(stats, CacheStats { hits: 8, misses: 0 });
    for (d, w) in outcome.results.iter().zip(&warm) {
        assert_eq!(d.as_ref().unwrap(), w.as_ref().unwrap());
    }
    assert_eq!(merged_csv(&outcome.results), merged_csv(&warm));

    // And the model numbers match a from-scratch local computation.
    let none: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| None).collect();
    let (local, _, _) = run_cached(&scenarios, &none, Some(2), CacheMode::Disabled, None);
    for (d, l) in outcome.results.iter().zip(&local) {
        assert_eq!(
            normalized(d.as_ref().unwrap()),
            normalized(l.as_ref().unwrap())
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_matrix_every_class_recovers_to_a_complete_identical_fleet() {
    struct Case {
        tag: &'static str,
        plan: &'static str,
        opts: ServeOptions,
        expect_reassigned: bool,
        expect_rejected: bool,
    }
    let cases = [
        Case {
            tag: "kill",
            plan: "kill-after=1",
            opts: sopts(),
            expect_reassigned: true,
            expect_rejected: false,
        },
        Case {
            tag: "drop-mid-frame",
            plan: "drop-mid-frame=1",
            opts: sopts(),
            expect_reassigned: true,
            expect_rejected: true,
        },
        Case {
            tag: "corrupt-frame",
            plan: "corrupt-frame=1",
            opts: sopts(),
            expect_reassigned: true,
            expect_rejected: true,
        },
        Case {
            tag: "delay-heartbeat",
            plan: "delay-heartbeat=0:900",
            opts: ServeOptions {
                liveness_seconds: 0.3,
                lease_seconds: 0.5,
                ..sopts()
            },
            expect_reassigned: true,
            expect_rejected: false,
        },
    ];

    let scenarios = quick_fleet(6);
    let caches: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| None).collect();
    let (local, _, _) = run_cached(&scenarios, &caches, Some(2), CacheMode::Disabled, None);
    let reference: Vec<ScenarioReport> = local
        .iter()
        .map(|r| normalized(r.as_ref().unwrap()))
        .collect();

    for case in cases {
        let faulty = WorkerOptions {
            fault_plan: FaultPlan::parse(case.plan).unwrap(),
            ..wopts("faulty")
        };
        // The faulty worker connects first so its fault is guaranteed to
        // fire on a real shard; the good worker arrives late and mops up.
        let (outcome, summaries) = run_distributed(
            &scenarios,
            &caches,
            CacheMode::Disabled,
            case.opts,
            vec![(faulty, 0), (wopts("good"), 150)],
        );

        // Completion invariant: every scenario has exactly one Ok result,
        // no row missing, no row duplicated, numbers identical to local.
        assert_eq!(outcome.results.len(), 6, "{}", case.tag);
        for (i, (got, want)) in outcome.results.iter().zip(&reference).enumerate() {
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("{} [{i}]: {e}", case.tag));
            assert_eq!(&normalized(got), want, "{} [{i}]", case.tag);
        }
        assert_eq!(outcome.dist.shards_remote, 6, "{}", case.tag);
        assert_eq!(outcome.dist.shards_local, 0, "{}", case.tag);
        assert!(!outcome.dist.fell_back_local, "{}", case.tag);
        if case.expect_reassigned {
            assert!(
                outcome.dist.reassigned >= 1,
                "{}: expected a lease reassignment, dist = {:?}",
                case.tag,
                outcome.dist
            );
        }
        if case.expect_rejected {
            assert!(
                outcome.dist.rejected_frames >= 1,
                "{}: expected a rejected frame, dist = {:?}",
                case.tag,
                outcome.dist
            );
        }
        if case.tag == "kill" {
            let s = summaries[0]
                .as_ref()
                .unwrap_or_else(|e| panic!("kill: faulty worker errored: {e}"));
            assert!(s.killed, "kill-after must terminate the worker: {s:?}");
        }
        // The faulty worker may legitimately finish with GaveUp if it was
        // still reconnecting when the fleet drained; the good worker's
        // summary plus the coordinator counters above prove completion.
    }
}

#[test]
fn zero_workers_falls_back_to_a_local_run_within_the_grace_window() {
    let scenarios = quick_fleet(4);
    let caches: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| None).collect();
    let opts = ServeOptions {
        grace_seconds: 0.3,
        ..sopts()
    };
    let (outcome, summaries) =
        run_distributed(&scenarios, &caches, CacheMode::Disabled, opts, Vec::new());
    assert!(summaries.is_empty());
    assert!(outcome.dist.fell_back_local);
    assert_eq!(outcome.dist.workers_seen, 0);
    assert_eq!(outcome.dist.shards_local, 4);
    assert_eq!(outcome.dist.shards_remote, 0);

    let (local, _, _) = run_cached(&scenarios, &caches, Some(2), CacheMode::Disabled, None);
    for (d, l) in outcome.results.iter().zip(&local) {
        assert_eq!(
            normalized(d.as_ref().unwrap()),
            normalized(l.as_ref().unwrap())
        );
    }
}

#[test]
fn rejoining_worker_answers_from_its_local_cache() {
    let dir = temp_dir("rejoin");
    let scenarios = quick_fleet(5);
    let caches: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| None).collect();
    let worker_cache = dir.join("worker-cache");

    let cold_opts = WorkerOptions {
        cache_dir: Some(worker_cache.clone()),
        ..wopts("w")
    };
    let (first, summaries) = run_distributed(
        &scenarios,
        &caches,
        CacheMode::Disabled,
        sopts(),
        vec![(cold_opts.clone(), 0)],
    );
    let s = summaries[0].as_ref().unwrap();
    assert_eq!(s.shards_done, 5);
    assert_eq!(s.cache_hits, 0);

    // Same fleet again (the coordinator's cache is disabled, so all five
    // shards go out again): the rejoining worker answers every one from
    // its own cache without recomputing — and verbatim, so the reports are
    // bit-identical to the first run's, timing included.
    let (second, summaries) = run_distributed(
        &scenarios,
        &caches,
        CacheMode::Disabled,
        sopts(),
        vec![(cold_opts, 0)],
    );
    let s = summaries[0].as_ref().unwrap();
    assert_eq!(s.shards_done, 5);
    assert_eq!(s.cache_hits, 5);
    for (a, b) in first.results.iter().zip(&second.results) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
    assert_eq!(merged_csv(&first.results), merged_csv(&second.results));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_timeout_propagates_to_workers_as_typed_failures() {
    let mut slow = builtin::paper_defaults();
    slow.name = "slow".into();
    slow.backends = vec![BackendId::Des];
    slow.cpu = slow.cpu.with_replications(1).with_horizon(5.0e7);
    let mut fast = builtin::paper_defaults();
    fast.name = "fast".into();
    fast.backends = vec![BackendId::Markov];
    fast.cpu = fast.cpu.with_replications(2).with_horizon(200.0);
    let scenarios = vec![slow, fast];
    let caches: Vec<Option<&ResultCache>> = vec![None, None];

    let opts = ServeOptions {
        timeout_seconds: Some(0.2),
        ..sopts()
    };
    let (outcome, summaries) = run_distributed(
        &scenarios,
        &caches,
        CacheMode::Disabled,
        opts,
        vec![(wopts("w"), 0)],
    );
    // The runaway DES point came back as a typed watchdog failure carrying
    // the coordinator's budget; the analytic point completed normally.
    assert!(
        matches!(
            &outcome.results[0],
            Err(ScenarioError::Timeout { seconds }) if (*seconds - 0.2).abs() < 1e-9
        ),
        "{:?}",
        outcome.results[0]
    );
    assert!(outcome.results[1].is_ok(), "{:?}", outcome.results[1]);
    assert_eq!(outcome.dist.shards_remote, 2);
    let s = summaries[0].as_ref().unwrap();
    assert_eq!(s.shards_done, 2, "failed shards still count as answered");
}

#[test]
fn raw_client_duplicates_version_skew_and_unknown_digests_are_contained() {
    let scenarios = quick_fleet(2);
    let caches: Vec<Option<&ResultCache>> = vec![None, None];
    let coord = Coordinator::bind(&scenarios, &caches, CacheMode::Disabled, sopts()).unwrap();
    let addr = coord.local_addr().unwrap();

    let outcome = std::thread::scope(|scope| {
        let run = scope.spawn(|| coord.run(None).unwrap());

        let mut s = TcpStream::connect(addr).unwrap();
        let hello = Message::Hello {
            worker: "raw".into(),
            protocol: PROTOCOL_VERSION,
        };
        write_message(&mut s, &hello).unwrap();
        let Some(Message::Welcome { shards, .. }) = read_message(&mut s).unwrap() else {
            panic!("expected Welcome");
        };
        assert_eq!(shards, 2);

        // A connection speaking the wrong protocol revision is cut off.
        {
            let mut old = TcpStream::connect(addr).unwrap();
            let bad_hello = Message::Hello {
                worker: "old".into(),
                protocol: PROTOCOL_VERSION + 1,
            };
            write_message(&mut old, &bad_hello).unwrap();
            assert!(matches!(
                read_message(&mut old),
                Err(FrameError::Closed) | Err(FrameError::Io(_))
            ));
        }

        // A result for a digest that is not a shard is rejected without
        // dropping the connection.
        let bogus = Message::Result {
            digest: "not-a-shard".into(),
            report: "{}".into(),
        };
        write_message(&mut s, &bogus).unwrap();

        let request = Message::Request {
            worker: "raw".into(),
        };
        let complete_next = |s: &mut TcpStream, dup: bool| {
            write_message(s, &request).unwrap();
            let Some(Message::Assign { digest, scenario }) = read_message(s).unwrap() else {
                panic!("expected Assign");
            };
            let parsed: Scenario = serde_json::from_str(&scenario).unwrap();
            let report = serde_json::to_string(&run_scenario(&parsed).unwrap()).unwrap();
            let result = Message::Result { digest, report };
            write_message(s, &result).unwrap();
            if dup {
                write_message(s, &result).unwrap();
            }
        };
        complete_next(&mut s, true);
        complete_next(&mut s, false);

        // Drain until the coordinator declares the fleet complete.
        write_message(&mut s, &request).unwrap();
        loop {
            match read_message(&mut s) {
                Ok(Some(Message::Done)) | Err(_) => break,
                Ok(_) => {}
            }
        }
        run.join().unwrap()
    });

    assert_eq!(outcome.dist.duplicate_results, 1);
    assert_eq!(outcome.dist.rejected_frames, 1);
    assert_eq!(outcome.dist.shards_remote, 2);
    // The version-skewed connection never completed a Hello, so only the
    // raw client registered.
    assert_eq!(outcome.dist.workers_seen, 1);
    for r in &outcome.results {
        assert!(r.is_ok());
    }
}
