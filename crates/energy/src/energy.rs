//! Energy computation — the paper's Eq. 24 and Eq. 25.
//!
//! Both equations are the same weighted-power sum; they differ in the time
//! horizon: Eq. 25 multiplies by an explicit observation `Time`, while
//! Eq. 24 multiplies by the queueing-derived running-time estimate
//! `(N + L(1)²) / λ` of Eq. 23.

use crate::profile::PowerProfile;
use crate::state::{CpuState, StateFractions};

/// Per-state energy decomposition (millijoules) plus the total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy attributed to each state, canonical order (mJ).
    pub per_state_mj: [f64; 4],
    /// Total energy (mJ).
    pub total_mj: f64,
    /// The time horizon used (s).
    pub time_s: f64,
}

impl EnergyBreakdown {
    /// Total in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_mj / 1000.0
    }

    /// Energy of one state in joules.
    pub fn state_joules(&self, s: CpuState) -> f64 {
        self.per_state_mj[s.index()] / 1000.0
    }

    /// The state consuming the most energy.
    pub fn dominant_state(&self) -> CpuState {
        let mut best = CpuState::Standby;
        let mut best_v = f64::NEG_INFINITY;
        for s in CpuState::ALL {
            if self.per_state_mj[s.index()] > best_v {
                best_v = self.per_state_mj[s.index()];
                best = s;
            }
        }
        best
    }
}

/// Paper Eq. 25: `TotalEnergy = Σ_state fraction × power × Time`.
///
/// `time_s` is the observation horizon in seconds; power rates are mW so the
/// result is in mJ (converted helpers on [`EnergyBreakdown`]).
pub fn energy_eq25(
    fractions: &StateFractions,
    profile: &PowerProfile,
    time_s: f64,
) -> EnergyBreakdown {
    let powers = profile.as_array();
    let fr = fractions.as_array();
    let mut per_state = [0.0f64; 4];
    let mut total = 0.0;
    for i in 0..4 {
        per_state[i] = fr[i] * powers[i] * time_s;
        total += per_state[i];
    }
    EnergyBreakdown {
        per_state_mj: per_state,
        total_mj: total,
        time_s,
    }
}

/// Paper Eq. 23/24: energy over the *estimated* total running time
/// `(N + L(1)²) / λ` for serving `n_jobs` jobs at arrival rate λ with mean
/// queue population `l1 = L(1)`.
pub fn energy_eq24(
    fractions: &StateFractions,
    profile: &PowerProfile,
    n_jobs: f64,
    l1: f64,
    lambda: f64,
) -> EnergyBreakdown {
    let time_s = (n_jobs + l1 * l1) / lambda;
    energy_eq25(fractions, profile, time_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quarter() -> StateFractions {
        StateFractions::new(0.25, 0.25, 0.25, 0.25)
    }

    #[test]
    fn eq25_pure_states() {
        let p = PowerProfile::pxa271();
        // 1000 s entirely in standby → 17 mW × 1000 s = 17 J.
        let f = StateFractions::new(1.0, 0.0, 0.0, 0.0);
        let e = energy_eq25(&f, &p, 1000.0);
        assert!((e.total_joules() - 17.0).abs() < 1e-9);
        assert_eq!(e.dominant_state(), CpuState::Standby);
        // Entirely active → 193 J.
        let f = StateFractions::new(0.0, 0.0, 0.0, 1.0);
        let e = energy_eq25(&f, &p, 1000.0);
        assert!((e.total_joules() - 193.0).abs() < 1e-9);
    }

    #[test]
    fn eq25_is_linear_in_time() {
        let p = PowerProfile::pxa271();
        let e1 = energy_eq25(&quarter(), &p, 100.0);
        let e2 = energy_eq25(&quarter(), &p, 200.0);
        assert!((e2.total_mj - 2.0 * e1.total_mj).abs() < 1e-9);
        assert_eq!(e1.time_s, 100.0);
    }

    #[test]
    fn eq25_breakdown_sums_to_total() {
        let p = PowerProfile::pxa271();
        let f = StateFractions::new(0.4, 0.05, 0.35, 0.2);
        let e = energy_eq25(&f, &p, 500.0);
        let sum: f64 = e.per_state_mj.iter().sum();
        assert!((sum - e.total_mj).abs() < 1e-9);
        for s in CpuState::ALL {
            assert!(e.state_joules(s) >= 0.0);
        }
    }

    #[test]
    fn eq24_time_estimate() {
        let p = PowerProfile::pxa271();
        // N=1000 jobs, L=0, λ=1 → exactly 1000 s.
        let e24 = energy_eq24(&quarter(), &p, 1000.0, 0.0, 1.0);
        let e25 = energy_eq25(&quarter(), &p, 1000.0);
        assert!((e24.total_mj - e25.total_mj).abs() < 1e-9);
        // Nonzero L inflates the estimated horizon.
        let e24b = energy_eq24(&quarter(), &p, 1000.0, 2.0, 1.0);
        assert!(e24b.total_mj > e24.total_mj);
        assert!((e24b.time_s - 1004.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_state_prefers_high_power_when_tied_occupancy() {
        let p = PowerProfile::pxa271();
        let e = energy_eq25(&quarter(), &p, 10.0);
        assert_eq!(e.dominant_state(), CpuState::Active);
    }
}
