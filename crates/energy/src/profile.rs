//! Per-state power profiles.
//!
//! The PXA271 numbers are the paper's Table 3 (sourced from Jung et al.,
//! EWSN 2007). The other profiles are *synthetic but realistic* composites
//! assembled from public datasheets; they exist so the example applications
//! can compare processor classes, and they are clearly labeled as such.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::state::{CpuState, StateFractions};

/// Power draw (milliwatts) in each CPU power state.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PowerProfile {
    /// Profile name, e.g. `"PXA271"`.
    pub name: String,
    /// Power in Standby (mW).
    pub standby_mw: f64,
    /// Power while powering up (mW).
    pub powerup_mw: f64,
    /// Power in Idle (mW).
    pub idle_mw: f64,
    /// Power in Active (mW).
    pub active_mw: f64,
}

impl PowerProfile {
    /// Build a custom profile. All rates must be non-negative and finite.
    pub fn new(
        name: impl Into<String>,
        standby_mw: f64,
        powerup_mw: f64,
        idle_mw: f64,
        active_mw: f64,
    ) -> Result<Self, ProfileError> {
        let p = Self {
            name: name.into(),
            standby_mw,
            powerup_mw,
            idle_mw,
            active_mw,
        };
        p.validate()?;
        Ok(p)
    }

    /// Intel PXA271 — paper Table 3 (mW): Standby 17, Idle 88,
    /// Powering-Up 192.442, Active 193.
    pub fn pxa271() -> Self {
        Self {
            name: "PXA271".into(),
            standby_mw: 17.0,
            powerup_mw: 192.442,
            idle_mw: 88.0,
            active_mw: 193.0,
        }
    }

    /// TI MSP430-class profile (synthetic composite of datasheet figures,
    /// 3 V): deep LPM3 ≈ 6 µW, active ≈ 3.6 mW. Used by example apps for a
    /// low-power contrast; NOT a measured artifact of the paper.
    pub fn msp430_class() -> Self {
        Self {
            name: "MSP430-class (synthetic)".into(),
            standby_mw: 0.006,
            powerup_mw: 3.0,
            idle_mw: 1.2,
            active_mw: 3.6,
        }
    }

    /// ATmega128L-class profile (synthetic composite, 3 V, 8 MHz):
    /// power-save ≈ 75 µW, active ≈ 24 mW. NOT a measured artifact of the
    /// paper.
    pub fn atmega128l_class() -> Self {
        Self {
            name: "ATmega128L-class (synthetic)".into(),
            standby_mw: 0.075,
            powerup_mw: 20.0,
            idle_mw: 9.6,
            active_mw: 24.0,
        }
    }

    /// Validate rate sanity (non-negative, finite).
    pub fn validate(&self) -> Result<(), ProfileError> {
        for (state, v) in CpuState::ALL.iter().zip(self.as_array()) {
            if !(v >= 0.0) || !v.is_finite() {
                return Err(ProfileError::InvalidPower {
                    state: *state,
                    value: v,
                });
            }
        }
        Ok(())
    }

    /// Power rates in canonical state order (mW).
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.standby_mw,
            self.powerup_mw,
            self.idle_mw,
            self.active_mw,
        ]
    }

    /// Power rate for one state (mW).
    pub fn power_mw(&self, s: CpuState) -> f64 {
        self.as_array()[s.index()]
    }

    /// Expected power draw (mW) under the given steady-state occupancy —
    /// the weighted sum inside paper Eq. 24/25.
    pub fn mean_power_mw(&self, fractions: &StateFractions) -> f64 {
        self.as_array()
            .iter()
            .zip(fractions.as_array())
            .map(|(p, f)| p * f)
            .sum()
    }
}

/// Errors for profile construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// A power rate was negative, NaN or infinite.
    InvalidPower {
        /// Offending state.
        state: CpuState,
        /// Offending value (mW).
        value: f64,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::InvalidPower { state, value } => {
                write!(f, "invalid power for state {state}: {value} mW")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pxa271_matches_paper_table3() {
        let p = PowerProfile::pxa271();
        assert_eq!(p.standby_mw, 17.0);
        assert_eq!(p.idle_mw, 88.0);
        assert_eq!(p.powerup_mw, 192.442);
        assert_eq!(p.active_mw, 193.0);
        p.validate().unwrap();
    }

    #[test]
    fn mean_power_weighted_sum() {
        let p = PowerProfile::pxa271();
        // All time in standby → 17 mW.
        let f = StateFractions::new(1.0, 0.0, 0.0, 0.0);
        assert!((p.mean_power_mw(&f) - 17.0).abs() < 1e-12);
        // Even split.
        let f = StateFractions::new(0.25, 0.25, 0.25, 0.25);
        let expect = (17.0 + 192.442 + 88.0 + 193.0) / 4.0;
        assert!((p.mean_power_mw(&f) - expect).abs() < 1e-12);
    }

    #[test]
    fn mean_power_monotone_in_active_share() {
        // Moving occupancy from standby to active can only increase power.
        let p = PowerProfile::pxa271();
        let lazy = StateFractions::new(0.9, 0.0, 0.0, 0.1);
        let busy = StateFractions::new(0.1, 0.0, 0.0, 0.9);
        assert!(p.mean_power_mw(&busy) > p.mean_power_mw(&lazy));
    }

    #[test]
    fn custom_profiles_validate() {
        assert!(PowerProfile::new("x", 1.0, 2.0, 3.0, 4.0).is_ok());
        let err = PowerProfile::new("x", -1.0, 2.0, 3.0, 4.0).unwrap_err();
        assert!(matches!(
            err,
            ProfileError::InvalidPower {
                state: CpuState::Standby,
                ..
            }
        ));
        assert!(PowerProfile::new("x", 1.0, f64::NAN, 3.0, 4.0).is_err());
        assert!(err.to_string().contains("Standby"));
    }

    #[test]
    fn synthetic_profiles_are_labeled_and_ordered() {
        for p in [
            PowerProfile::msp430_class(),
            PowerProfile::atmega128l_class(),
        ] {
            assert!(p.name.contains("synthetic"));
            p.validate().unwrap();
            assert!(p.standby_mw < p.idle_mw);
            assert!(p.idle_mw < p.active_mw);
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trip() {
        let p = PowerProfile::pxa271();
        let json = serde_json::to_string(&p).unwrap();
        let back: PowerProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn power_mw_by_state() {
        let p = PowerProfile::pxa271();
        assert_eq!(p.power_mw(CpuState::Standby), 17.0);
        assert_eq!(p.power_mw(CpuState::Active), 193.0);
        assert_eq!(p.power_mw(CpuState::Idle), 88.0);
        assert_eq!(p.power_mw(CpuState::PowerUp), 192.442);
    }
}
