//! Battery capacity and node-lifetime estimation.
//!
//! The paper's motivation (§1) is extending the lifetime of battery-powered
//! nodes. Given a steady-state mean power draw, a battery model converts
//! capacity into an expected lifetime; the WSN examples use it to rank
//! power-down-threshold policies.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::profile::PowerProfile;
use crate::state::StateFractions;

/// An ideal-ish battery: nominal capacity derated by a usable fraction.
///
/// (No rate-capacity or recovery effects; adequate at the mW-scale steady
/// loads considered here, where discharge curves are close to linear.)
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Battery {
    /// Rated capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal voltage in volts.
    pub voltage_v: f64,
    /// Usable fraction of the rated capacity in `(0, 1]` (cutoff voltage,
    /// self-discharge, temperature derating).
    pub usable_fraction: f64,
}

impl Battery {
    /// A pair of AA alkaline cells (2 × 1.5 V in series, ~2500 mAh, 85%
    /// usable) — the classic mote power source.
    pub fn two_aa() -> Self {
        Self {
            capacity_mah: 2500.0,
            voltage_v: 3.0,
            usable_fraction: 0.85,
        }
    }

    /// A CR2032 coin cell (3 V, 225 mAh, 70% usable at mA-scale pulses).
    pub fn cr2032() -> Self {
        Self {
            capacity_mah: 225.0,
            voltage_v: 3.0,
            usable_fraction: 0.7,
        }
    }

    /// Usable energy in joules: `mAh × 3.6 × V × usable`.
    pub fn usable_energy_joules(&self) -> f64 {
        self.capacity_mah * 3.6 * self.voltage_v * self.usable_fraction
    }

    /// Expected lifetime in seconds at a constant draw of `power_mw`.
    ///
    /// Returns `f64::INFINITY` for a non-positive draw.
    pub fn lifetime_seconds(&self, power_mw: f64) -> f64 {
        if power_mw <= 0.0 {
            return f64::INFINITY;
        }
        self.usable_energy_joules() / (power_mw / 1000.0)
    }

    /// Expected lifetime in days at a constant draw of `power_mw`.
    pub fn lifetime_days(&self, power_mw: f64) -> f64 {
        self.lifetime_seconds(power_mw) / 86_400.0
    }

    /// Lifetime in days for a CPU with the given occupancy and profile.
    pub fn lifetime_days_for(&self, fractions: &StateFractions, profile: &PowerProfile) -> f64 {
        self.lifetime_days(profile.mean_power_mw(fractions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_capacity_math() {
        let b = Battery {
            capacity_mah: 1000.0,
            voltage_v: 3.0,
            usable_fraction: 1.0,
        };
        // 1000 mAh at 3 V = 3 Wh = 10800 J.
        assert!((b.usable_energy_joules() - 10_800.0).abs() < 1e-9);
    }

    #[test]
    fn lifetime_scales_inversely_with_power() {
        let b = Battery::two_aa();
        let l1 = b.lifetime_seconds(10.0);
        let l2 = b.lifetime_seconds(20.0);
        assert!((l1 / l2 - 2.0).abs() < 1e-9);
        assert!(b.lifetime_days(10.0) > 0.0);
    }

    #[test]
    fn zero_power_lives_forever() {
        let b = Battery::cr2032();
        assert!(b.lifetime_seconds(0.0).is_infinite());
        assert!(b.lifetime_seconds(-5.0).is_infinite());
    }

    #[test]
    fn sleepy_cpu_outlives_busy_cpu() {
        let b = Battery::two_aa();
        let p = PowerProfile::pxa271();
        let sleepy = StateFractions::new(0.95, 0.01, 0.02, 0.02);
        let busy = StateFractions::new(0.05, 0.01, 0.14, 0.8);
        // Mean draws: sleepy ≈ 23.7 mW, busy ≈ 169.5 mW — a ≈7× lifetime gap.
        assert!(
            b.lifetime_days_for(&sleepy, &p) > 5.0 * b.lifetime_days_for(&busy, &p),
            "standby-dominated workload should live several times longer"
        );
    }

    #[test]
    fn preset_batteries_sane() {
        assert!(
            Battery::two_aa().usable_energy_joules() > Battery::cr2032().usable_energy_joules()
        );
    }
}
