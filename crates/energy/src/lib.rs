//! # wsnem-energy
//!
//! Power-state modeling and energy accounting for embedded processors in
//! wireless sensor networks.
//!
//! The paper evaluates an Intel PXA271 with four power states (Table 3):
//! Standby 17 mW, Idle 88 mW, Powering-Up 192.442 mW, Active 193 mW. This
//! crate provides:
//!
//! * [`CpuState`] — the four-state power taxonomy shared by every model.
//! * [`StateFractions`] — steady-state occupancy percentages (the quantity
//!   Fig. 4 plots and Eq. 24/25 consume).
//! * [`PowerProfile`] — per-state power rates; ships the paper's PXA271
//!   numbers plus documented synthetic profiles for the example apps.
//! * [`energy`] — Eq. 25 (occupancy × power × time) and the paper's Eq. 24
//!   variant with its queueing-derived runtime estimate.
//! * [`battery`] — battery capacity → node lifetime estimation.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod battery;
pub mod energy;
pub mod profile;
pub mod state;

pub use battery::Battery;
pub use energy::{energy_eq24, energy_eq25, EnergyBreakdown};
pub use profile::PowerProfile;
pub use state::{CpuState, StateFractions};
