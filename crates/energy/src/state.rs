//! The four-state power taxonomy and steady-state occupancy fractions.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Power state of the modeled CPU.
///
/// The ordering/indices are stable and shared by all models: they are used to
/// index [`StateFractions::as_array`] and per-state power tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum CpuState {
    /// Deep low-power mode; the CPU must power up before serving jobs.
    Standby,
    /// Transitioning from standby to operational (constant Power Up Delay).
    PowerUp,
    /// Operational but not executing a job.
    Idle,
    /// Executing a job.
    Active,
}

impl CpuState {
    /// All states in canonical order `[Standby, PowerUp, Idle, Active]`.
    pub const ALL: [CpuState; 4] = [
        CpuState::Standby,
        CpuState::PowerUp,
        CpuState::Idle,
        CpuState::Active,
    ];

    /// Canonical index of this state (0..4).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CpuState::Standby => 0,
            CpuState::PowerUp => 1,
            CpuState::Idle => 2,
            CpuState::Active => 3,
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            CpuState::Standby => "Standby",
            CpuState::PowerUp => "PowerUp",
            CpuState::Idle => "Idle",
            CpuState::Active => "Active",
        }
    }
}

impl std::fmt::Display for CpuState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fractions of time spent in each power state (the "steady state
/// percentages" of the paper, expressed in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct StateFractions {
    /// Fraction of time in [`CpuState::Standby`].
    pub standby: f64,
    /// Fraction of time in [`CpuState::PowerUp`].
    pub powerup: f64,
    /// Fraction of time in [`CpuState::Idle`].
    pub idle: f64,
    /// Fraction of time in [`CpuState::Active`].
    pub active: f64,
}

impl StateFractions {
    /// Construct from explicit fractions.
    pub fn new(standby: f64, powerup: f64, idle: f64, active: f64) -> Self {
        Self {
            standby,
            powerup,
            idle,
            active,
        }
    }

    /// Fractions in canonical order `[standby, powerup, idle, active]`.
    pub fn as_array(&self) -> [f64; 4] {
        [self.standby, self.powerup, self.idle, self.active]
    }

    /// Build from a canonical-order array.
    pub fn from_array(a: [f64; 4]) -> Self {
        Self {
            standby: a[0],
            powerup: a[1],
            idle: a[2],
            active: a[3],
        }
    }

    /// Fraction for a specific state.
    pub fn get(&self, s: CpuState) -> f64 {
        self.as_array()[s.index()]
    }

    /// Sum of the four fractions (≈ 1 for a complete classification).
    pub fn total(&self) -> f64 {
        self.standby + self.powerup + self.idle + self.active
    }

    /// True when every fraction is in `[0, 1]` and they sum to 1 ± `tol`.
    pub fn is_normalized(&self, tol: f64) -> bool {
        self.as_array()
            .iter()
            .all(|&p| (0.0..=1.0 + tol).contains(&p))
            && (self.total() - 1.0).abs() <= tol
    }

    /// Percentages in canonical order (×100), as plotted in Fig. 4.
    pub fn as_percentages(&self) -> [f64; 4] {
        let a = self.as_array();
        [a[0] * 100.0, a[1] * 100.0, a[2] * 100.0, a[3] * 100.0]
    }

    /// Mean absolute difference against another set of fractions, in
    /// *percentage points* — the Δ metric of the paper's Table 4.
    pub fn mean_abs_delta_pct(&self, other: &StateFractions) -> f64 {
        let a = self.as_percentages();
        let b = other.as_percentages();
        a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>() / 4.0
    }

    /// Average several fraction sets component-wise.
    ///
    /// Returns `None` on empty input.
    pub fn mean_of(sets: &[StateFractions]) -> Option<StateFractions> {
        if sets.is_empty() {
            return None;
        }
        let mut acc = [0.0f64; 4];
        for s in sets {
            for (a, v) in acc.iter_mut().zip(s.as_array()) {
                *a += v;
            }
        }
        let n = sets.len() as f64;
        Some(StateFractions::from_array([
            acc[0] / n,
            acc[1] / n,
            acc[2] / n,
            acc[3] / n,
        ]))
    }
}

impl std::fmt::Display for StateFractions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "standby {:.2}% | powerup {:.2}% | idle {:.2}% | active {:.2}%",
            self.standby * 100.0,
            self.powerup * 100.0,
            self.idle * 100.0,
            self.active * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_round_trip() {
        let f = StateFractions::new(0.4, 0.1, 0.3, 0.2);
        assert_eq!(f.as_array(), [0.4, 0.1, 0.3, 0.2]);
        assert_eq!(StateFractions::from_array(f.as_array()), f);
        for s in CpuState::ALL {
            assert_eq!(f.get(s), f.as_array()[s.index()]);
        }
    }

    #[test]
    fn indices_are_stable() {
        assert_eq!(CpuState::Standby.index(), 0);
        assert_eq!(CpuState::PowerUp.index(), 1);
        assert_eq!(CpuState::Idle.index(), 2);
        assert_eq!(CpuState::Active.index(), 3);
        assert_eq!(CpuState::ALL.len(), 4);
    }

    #[test]
    fn normalization_check() {
        let good = StateFractions::new(0.25, 0.25, 0.25, 0.25);
        assert!(good.is_normalized(1e-9));
        let bad = StateFractions::new(0.5, 0.5, 0.5, 0.5);
        assert!(!bad.is_normalized(1e-9));
        let negative = StateFractions::new(-0.1, 0.4, 0.4, 0.3);
        assert!(!negative.is_normalized(1e-9));
    }

    #[test]
    fn delta_metric_matches_hand_computation() {
        let a = StateFractions::new(0.5, 0.0, 0.3, 0.2);
        let b = StateFractions::new(0.4, 0.1, 0.3, 0.2);
        // Δ = (10 + 10 + 0 + 0) / 4 percentage points.
        assert!((a.mean_abs_delta_pct(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.mean_abs_delta_pct(&a), 0.0);
    }

    #[test]
    fn mean_of_sets() {
        let a = StateFractions::new(1.0, 0.0, 0.0, 0.0);
        let b = StateFractions::new(0.0, 1.0, 0.0, 0.0);
        let m = StateFractions::mean_of(&[a, b]).unwrap();
        assert!((m.standby - 0.5).abs() < 1e-12);
        assert!((m.powerup - 0.5).abs() < 1e-12);
        assert!(StateFractions::mean_of(&[]).is_none());
    }

    #[test]
    fn display_formats() {
        let f = StateFractions::new(0.5, 0.1, 0.2, 0.2);
        let s = format!("{f}");
        assert!(s.contains("50.00%"));
        assert_eq!(CpuState::PowerUp.to_string(), "PowerUp");
    }
}
