//! Cancellable future-event list.
//!
//! The implementation lives in [`wsnem_stats::pq`], the shared home of the
//! tombstone timer heap used by both this DES kernel and the EDSPN
//! token-game engine (`wsnem_petri`); this module re-exports it so existing
//! `wsnem_des::event::{EventId, EventQueue}` paths keep working.
//!
//! A binary heap keyed by `(time, sequence)` gives O(log n) scheduling and
//! stable FIFO ordering among simultaneous events. Payloads live in a slab
//! so cancellation is O(1): the heap entry becomes a tombstone that `pop`
//! skips. [`EventId`]s carry a generation counter, so a stale id (slot
//! already reused) can never cancel someone else's event.

pub use wsnem_stats::pq::{EventId, EventQueue};

#[cfg(test)]
mod tests {
    use super::*;

    /// The DES kernel's contract: strict time order with FIFO ties — the
    /// full behavioural battery lives with the implementation in
    /// `wsnem_stats::pq`.
    #[test]
    fn reexport_preserves_des_contract() {
        let mut q: EventQueue<&str> = EventQueue::with_capacity(4);
        q.schedule(2.0, "late");
        let a = q.schedule(1.0, "tie-first");
        q.schedule(1.0, "tie-second");
        assert_eq!(q.peek_time(), Some(1.0));
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((1.0, "tie-second")));
        assert_eq!(q.pop(), Some((2.0, "late")));
        assert_eq!(q.pop(), None);
    }
}
