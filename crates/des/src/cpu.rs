//! The CPU power-state simulator — ground truth for the paper's comparison.
//!
//! Model (paper §4): a single-server queue with
//!
//! * open (default: Poisson) or closed job arrivals,
//! * generally-distributed service (default: exponential),
//! * a constant **Power Down Threshold** `T`: after the system has been idle
//!   (no job in service, empty buffer) for `T` seconds, the CPU drops to
//!   Standby,
//! * a constant **Power Up Delay** `D`: a job arriving in Standby triggers a
//!   power-up phase of `D` seconds before service can start; jobs arriving
//!   meanwhile queue up.
//!
//! Tie-breaking: an arrival and a power-down timeout at the same instant are
//! processed in schedule order, which lets the earlier-scheduled arrival
//! cancel the timer — i.e. the arrival wins, matching the Petri-net
//! semantics where the enabling check sees the new token.

use std::collections::VecDeque;

use wsnem_energy::{CpuState, EnergyBreakdown, PowerProfile, StateFractions};
use wsnem_obs::{NoopObserver, Observer};
use wsnem_stats::dist::{Dist, Sample};
use wsnem_stats::online::Welford;
use wsnem_stats::rng::{Rng64, Xoshiro256PlusPlus};
use wsnem_stats::timeweighted::TimeWeighted;

use crate::error::DesError;
use crate::event::{EventId, EventQueue};
use crate::workload::{Workload, WorkloadGen};

/// Simulation parameters for one CPU run.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSimParams {
    /// Service-time distribution (the paper: exponential, mean 0.1 s).
    pub service: Dist,
    /// Power Down Threshold `T` in seconds; `f64::INFINITY` disables
    /// powering down (plain M/G/1 behaviour).
    pub power_down_threshold: f64,
    /// Power Up Delay `D` in seconds.
    pub power_up_delay: f64,
    /// Simulated horizon in seconds.
    pub horizon: f64,
    /// Warm-up period (statistics reset at this time; `0` keeps everything).
    pub warmup: f64,
    /// Optional buffer capacity: arrivals beyond this many *waiting* jobs
    /// are dropped (`None` = infinite buffer, the paper's setting).
    pub max_queue: Option<usize>,
}

impl CpuSimParams {
    /// Parameters with the paper's service model (exponential, rate `mu`),
    /// thresholds and a 1000 s horizon.
    pub fn exponential_service(mu: f64, t_threshold: f64, d_delay: f64) -> Self {
        Self {
            service: Dist::Exponential { rate: mu },
            power_down_threshold: t_threshold,
            power_up_delay: d_delay,
            horizon: 1000.0,
            warmup: 0.0,
            max_queue: None,
        }
    }

    /// Validate the parameter set.
    pub fn validate(&self) -> Result<(), DesError> {
        self.service.validate()?;
        if !(self.power_down_threshold >= 0.0) {
            return Err(DesError::InvalidParameter {
                what: "power_down_threshold",
                constraint: ">= 0",
                value: self.power_down_threshold,
            });
        }
        if !(self.power_up_delay >= 0.0) || !self.power_up_delay.is_finite() {
            return Err(DesError::InvalidParameter {
                what: "power_up_delay",
                constraint: ">= 0 and finite",
                value: self.power_up_delay,
            });
        }
        if !(self.horizon > 0.0) || !self.horizon.is_finite() {
            return Err(DesError::InvalidParameter {
                what: "horizon",
                constraint: "> 0 and finite",
                value: self.horizon,
            });
        }
        if !(0.0..self.horizon).contains(&self.warmup) {
            return Err(DesError::InvalidParameter {
                what: "warmup",
                constraint: "0 <= warmup < horizon",
                value: self.warmup,
            });
        }
        Ok(())
    }
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuRunReport {
    /// Time-in-state fractions over the observation window.
    pub fractions: StateFractions,
    /// Length of the observation window (horizon − warmup).
    pub time_observed: f64,
    /// Jobs that arrived (post-warmup).
    pub arrivals: u64,
    /// Jobs that completed service (post-warmup).
    pub completions: u64,
    /// Jobs dropped at a full buffer (post-warmup).
    pub dropped: u64,
    /// Standby → PowerUp transitions.
    pub power_up_cycles: u64,
    /// On → Standby transitions.
    pub power_down_cycles: u64,
    /// Mean job latency (arrival → completion), seconds.
    pub mean_latency: f64,
    /// Latency sample variance.
    pub latency_variance: f64,
    /// Number of latency samples.
    pub latency_count: u64,
    /// Time-averaged number of jobs in the system (queue + in service).
    pub mean_jobs_in_system: f64,
    /// Completions per second over the observation window.
    pub throughput: f64,
}

impl CpuRunReport {
    /// Energy over the observed window for the given profile (Eq. 25).
    pub fn energy(&self, profile: &PowerProfile) -> EnergyBreakdown {
        wsnem_energy::energy_eq25(&self.fractions, profile, self.time_observed)
    }

    /// Energy total in joules (Eq. 25).
    pub fn energy_joules(&self, profile: &PowerProfile) -> f64 {
        self.energy(profile).total_joules()
    }

    /// Little's-law consistency check: `L ≈ λ_completed × W`. Returns the
    /// relative error between the time-averaged population and λW.
    pub fn littles_law_residual(&self) -> f64 {
        let lw = self.throughput * self.mean_latency;
        if self.mean_jobs_in_system == 0.0 {
            return if lw == 0.0 { 0.0 } else { f64::INFINITY };
        }
        (self.mean_jobs_in_system - lw).abs() / self.mean_jobs_in_system
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Power {
    Standby,
    PoweringUp,
    On,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// Open-workload arrival (schedules its successor).
    Arrival,
    /// Closed-workload submission (successor scheduled at departure).
    ClosedArrival,
    Departure,
    PowerDownTimeout,
    PowerUpDone,
    WarmupEnd,
}

/// The discrete-event CPU simulator.
#[derive(Debug)]
pub struct CpuDes {
    params: CpuSimParams,
    workload: Workload,
}

impl CpuDes {
    /// Build a simulator after validating parameters and workload.
    pub fn new(params: CpuSimParams, workload: Workload) -> Result<Self, DesError> {
        params.validate()?;
        workload.validate()?;
        Ok(Self { params, workload })
    }

    /// Convenience: run with a fresh xoshiro256++ stream for `seed`.
    pub fn run_with_seed(&self, seed: u64) -> CpuRunReport {
        let mut rng = Xoshiro256PlusPlus::new(seed);
        self.run(&mut rng)
    }

    /// Execute one replication.
    pub fn run<R: Rng64 + ?Sized>(&self, rng: &mut R) -> CpuRunReport {
        Runner::new(&self.params, &self.workload, rng, &mut NoopObserver).run(None)
    }

    /// Execute one replication with an attached
    /// [`Observer`].
    ///
    /// The observer sees every dispatched event (`event`), the pending-queue
    /// depth after each pop (`queue_depth`), every CPU power-state change
    /// (`state_enter`/`state_exit`, with states indexed in the
    /// `[standby, powerup, idle, active]` order of
    /// [`CpuState::index`](wsnem_energy::CpuState::index)), and every RNG
    /// draw (`rng_draw`). Attaching an observer never perturbs the run: RNG
    /// draw order is identical with and without instrumentation, and with
    /// [`NoopObserver`] every hook compiles away to [`run`](Self::run)'s
    /// exact code.
    pub fn run_observed<R: Rng64 + ?Sized, O: Observer>(
        &self,
        rng: &mut R,
        obs: &mut O,
    ) -> CpuRunReport {
        Runner::new(&self.params, &self.workload, rng, obs).run(None)
    }

    /// Execute one replication, additionally binning every post-warmup job
    /// latency into `histogram` (e.g. to read tail percentiles — the
    /// responsiveness cost of aggressive power-down policies).
    pub fn run_collecting<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
        histogram: &mut wsnem_stats::Histogram,
    ) -> CpuRunReport {
        Runner::new(&self.params, &self.workload, rng, &mut NoopObserver).run(Some(histogram))
    }
}

/// Per-run mutable state, split out so `CpuDes` stays reusable/shareable.
struct Runner<'a, R: Rng64 + ?Sized, O: Observer> {
    params: &'a CpuSimParams,
    rng: &'a mut R,
    obs: &'a mut O,
    /// Last state reported to the observer (instrumented runs only).
    obs_state: CpuState,
    /// When `obs_state` was entered.
    obs_entered: f64,
    queue: EventQueue<Ev>,
    open_gen: Option<WorkloadGen>,
    think: Option<Dist>,
    now: f64,
    power: Power,
    serving: Option<f64>,
    buffer: VecDeque<f64>,
    pd_timer: Option<EventId>,
    durations: [f64; 4],
    last_change: f64,
    window_start: f64,
    jobs_in_system: TimeWeighted,
    latency: Welford,
    arrivals: u64,
    completions: u64,
    dropped: u64,
    power_ups: u64,
    power_downs: u64,
}

impl<'a, R: Rng64 + ?Sized, O: Observer> Runner<'a, R, O> {
    fn new(params: &'a CpuSimParams, workload: &Workload, rng: &'a mut R, obs: &'a mut O) -> Self {
        let mut queue = EventQueue::with_capacity(64);
        let mut open_gen = None;
        let mut think = None;
        match workload {
            Workload::Open(spec) => {
                let Ok(mut g) = WorkloadGen::new(spec.clone()) else {
                    unreachable!("workload spec validated in CpuDes::new")
                };
                if O::ENABLED {
                    obs.rng_draw();
                }
                let first = g.next_gap(rng);
                queue.schedule(first, Ev::Arrival);
                open_gen = Some(g);
            }
            Workload::Closed(c) => {
                for _ in 0..c.population {
                    if O::ENABLED {
                        obs.rng_draw();
                    }
                    let t = c.think.sample(rng);
                    queue.schedule(t, Ev::ClosedArrival);
                }
                think = Some(c.think);
            }
        }
        if params.warmup > 0.0 {
            queue.schedule(params.warmup, Ev::WarmupEnd);
        }
        Self {
            params,
            rng,
            obs,
            obs_state: CpuState::Standby,
            obs_entered: 0.0,
            queue,
            open_gen,
            think,
            now: 0.0,
            power: Power::Standby,
            serving: None,
            buffer: VecDeque::new(),
            pd_timer: None,
            durations: [0.0; 4],
            last_change: 0.0,
            window_start: 0.0,
            jobs_in_system: TimeWeighted::new(0.0, 0.0),
            latency: Welford::new(),
            arrivals: 0,
            completions: 0,
            dropped: 0,
            power_ups: 0,
            power_downs: 0,
        }
    }

    #[inline]
    fn current_state(&self) -> CpuState {
        match self.power {
            Power::Standby => CpuState::Standby,
            Power::PoweringUp => CpuState::PowerUp,
            Power::On => {
                if self.serving.is_some() {
                    CpuState::Active
                } else {
                    CpuState::Idle
                }
            }
        }
    }

    /// Accrue state-occupancy time up to `t`; call *before* mutating state.
    #[inline]
    fn accrue(&mut self, t: f64) {
        let dt = t - self.last_change;
        if dt > 0.0 {
            self.durations[self.current_state().index()] += dt;
        }
        self.last_change = t;
    }

    /// Report a power-state change to the observer, if any happened since
    /// the last call. Compiles away entirely for disabled observers.
    #[inline]
    fn note_state(&mut self) {
        if O::ENABLED {
            let state = self.current_state();
            if state != self.obs_state {
                self.obs.state_exit(
                    self.now,
                    self.obs_state.index() as u8,
                    self.now - self.obs_entered,
                );
                self.obs.state_enter(self.now, state.index() as u8);
                self.obs_state = state;
                self.obs_entered = self.now;
            }
        }
    }

    #[inline]
    fn touch_population(&mut self) {
        let n = self.buffer.len() + usize::from(self.serving.is_some());
        self.jobs_in_system.update(self.now, n as f64);
    }

    fn start_service(&mut self) {
        debug_assert!(self.power == Power::On && self.serving.is_none());
        if let Some(arrived) = self.buffer.pop_front() {
            self.serving = Some(arrived);
            if O::ENABLED {
                self.obs.rng_draw();
            }
            let s = self.params.service.sample(self.rng).max(0.0);
            self.queue.schedule(self.now + s, Ev::Departure);
        }
    }

    fn arm_power_down_timer(&mut self) {
        debug_assert!(self.pd_timer.is_none());
        let t = self.params.power_down_threshold;
        if t.is_finite() {
            self.pd_timer = Some(self.queue.schedule(self.now + t, Ev::PowerDownTimeout));
        }
    }

    fn disarm_power_down_timer(&mut self) {
        if let Some(id) = self.pd_timer.take() {
            self.queue.cancel(id);
        }
    }

    fn handle_job_arrival(&mut self) {
        self.arrivals += 1;
        if let Some(cap) = self.params.max_queue {
            if self.buffer.len() >= cap {
                self.dropped += 1;
                // A dropped closed-workload customer goes straight back to
                // thinking.
                if let Some(think) = self.think {
                    if O::ENABLED {
                        self.obs.rng_draw();
                    }
                    let gap = think.sample(self.rng).max(0.0);
                    self.queue.schedule(self.now + gap, Ev::ClosedArrival);
                }
                return;
            }
        }
        self.buffer.push_back(self.now);
        self.touch_population();
        match self.power {
            Power::Standby => {
                self.power = Power::PoweringUp;
                self.power_ups += 1;
                self.queue
                    .schedule(self.now + self.params.power_up_delay, Ev::PowerUpDone);
            }
            Power::PoweringUp => {}
            Power::On => {
                self.disarm_power_down_timer();
                if self.serving.is_none() {
                    self.start_service();
                }
            }
        }
    }

    fn handle_departure(&mut self, histogram: &mut Option<&mut wsnem_stats::Histogram>) {
        // A Departure is only ever scheduled when a job enters service.
        let Some(arrived) = self.serving.take() else {
            unreachable!("departure without a job in service")
        };
        self.completions += 1;
        self.latency.push(self.now - arrived);
        if let Some(h) = histogram {
            if self.now >= self.params.warmup {
                h.push(self.now - arrived);
            }
        }
        self.touch_population();
        if let Some(think) = self.think {
            if O::ENABLED {
                self.obs.rng_draw();
            }
            let gap = think.sample(self.rng).max(0.0);
            self.queue.schedule(self.now + gap, Ev::ClosedArrival);
        }
        if self.buffer.is_empty() {
            self.arm_power_down_timer();
        } else {
            self.start_service();
        }
    }

    fn handle_power_down(&mut self) {
        // The timer is cancelled whenever a job shows up, so firing implies
        // a genuinely idle system.
        debug_assert!(self.power == Power::On);
        debug_assert!(self.serving.is_none() && self.buffer.is_empty());
        self.pd_timer = None;
        self.power = Power::Standby;
        self.power_downs += 1;
    }

    fn handle_power_up_done(&mut self) {
        debug_assert!(self.power == Power::PoweringUp);
        self.power = Power::On;
        if self.buffer.is_empty() {
            // Defensive: power-up is always triggered by an arrival, but a
            // bounded buffer may have dropped it.
            self.arm_power_down_timer();
        } else {
            self.start_service();
        }
    }

    fn reset_statistics(&mut self) {
        self.durations = [0.0; 4];
        self.last_change = self.now;
        self.window_start = self.now;
        self.jobs_in_system.reset_window(self.now);
        self.latency = Welford::new();
        self.arrivals = 0;
        self.completions = 0;
        self.dropped = 0;
        self.power_ups = 0;
        self.power_downs = 0;
    }

    fn run(mut self, mut histogram: Option<&mut wsnem_stats::Histogram>) -> CpuRunReport {
        let horizon = self.params.horizon;
        if O::ENABLED {
            self.obs.state_enter(0.0, self.obs_state.index() as u8);
        }
        while let Some((t, ev)) = self.queue.pop() {
            if t > horizon {
                break;
            }
            self.accrue(t);
            self.now = t;
            if O::ENABLED {
                let kind = match ev {
                    Ev::Arrival => "arrival",
                    Ev::ClosedArrival => "closed_arrival",
                    Ev::Departure => "departure",
                    Ev::PowerDownTimeout => "power_down_timeout",
                    Ev::PowerUpDone => "power_up_done",
                    Ev::WarmupEnd => "warmup_end",
                };
                self.obs.event(t, kind);
                self.obs.queue_depth(t, self.queue.len());
            }
            match ev {
                Ev::Arrival => {
                    self.handle_job_arrival();
                    if O::ENABLED {
                        self.obs.rng_draw();
                    }
                    // Ev::Arrival is only scheduled for open workloads,
                    // which construct the generator in Runner::new.
                    let Some(gen) = self.open_gen.as_mut() else {
                        unreachable!("open arrival without generator")
                    };
                    let gap = gen.next_gap(self.rng);
                    self.queue.schedule(self.now + gap, Ev::Arrival);
                }
                Ev::ClosedArrival => self.handle_job_arrival(),
                Ev::Departure => self.handle_departure(&mut histogram),
                Ev::PowerDownTimeout => self.handle_power_down(),
                Ev::PowerUpDone => self.handle_power_up_done(),
                Ev::WarmupEnd => self.reset_statistics(),
            }
            self.note_state();
        }
        // Close the books exactly at the horizon.
        self.accrue(horizon);
        self.now = horizon;
        if O::ENABLED {
            // Close the final sojourn so timeline totals span the full run.
            self.obs.state_exit(
                horizon,
                self.obs_state.index() as u8,
                horizon - self.obs_entered,
            );
        }
        self.jobs_in_system.advance_to(horizon);

        let observed = horizon - self.window_start;
        let total: f64 = self.durations.iter().sum();
        debug_assert!((total - observed).abs() < 1e-6 * observed.max(1.0));
        let inv = if observed > 0.0 { 1.0 / observed } else { 0.0 };
        let fractions = StateFractions::from_array([
            self.durations[0] * inv,
            self.durations[1] * inv,
            self.durations[2] * inv,
            self.durations[3] * inv,
        ]);
        CpuRunReport {
            fractions,
            time_observed: observed,
            arrivals: self.arrivals,
            completions: self.completions,
            dropped: self.dropped,
            power_up_cycles: self.power_ups,
            power_down_cycles: self.power_downs,
            mean_latency: self.latency.mean(),
            latency_variance: self.latency.variance(),
            latency_count: self.latency.count(),
            mean_jobs_in_system: self.jobs_in_system.mean(),
            throughput: if observed > 0.0 {
                self.completions as f64 / observed
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ClosedWorkload, OpenWorkload};

    fn paper_params(t: f64, d: f64) -> CpuSimParams {
        CpuSimParams {
            horizon: 5000.0,
            ..CpuSimParams::exponential_service(10.0, t, d)
        }
    }

    #[test]
    fn params_validation() {
        assert!(paper_params(0.5, 0.001).validate().is_ok());
        let mut p = paper_params(0.5, 0.001);
        p.power_down_threshold = -1.0;
        assert!(p.validate().is_err());
        let mut p = paper_params(0.5, 0.001);
        p.power_up_delay = f64::INFINITY;
        assert!(p.validate().is_err());
        let mut p = paper_params(0.5, 0.001);
        p.horizon = 0.0;
        assert!(p.validate().is_err());
        let mut p = paper_params(0.5, 0.001);
        p.warmup = p.horizon;
        assert!(p.validate().is_err());
        let mut p = paper_params(0.5, 0.001);
        p.service = Dist::Exponential { rate: -3.0 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn fractions_sum_to_one() {
        let sim = CpuDes::new(paper_params(0.3, 0.1), Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(7);
        assert!(
            r.fractions.is_normalized(1e-9),
            "fractions {:?}",
            r.fractions
        );
        assert!(r.time_observed > 0.0);
    }

    #[test]
    fn never_power_down_behaves_like_mg1_with_idle() {
        // T = ∞: after the initial power-up the CPU stays on; active
        // fraction → ρ = λ/μ, standby+powerup ≈ 0.
        let params = CpuSimParams {
            horizon: 20_000.0,
            warmup: 1000.0,
            ..CpuSimParams::exponential_service(10.0, f64::INFINITY, 0.001)
        };
        let sim = CpuDes::new(params, Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(42);
        assert!((r.fractions.active - 0.1).abs() < 0.01, "{:?}", r.fractions);
        assert!(r.fractions.standby < 1e-9);
        assert!(r.fractions.powerup < 1e-9);
        assert!((r.fractions.idle - 0.9).abs() < 0.01);
        assert_eq!(r.power_down_cycles, 0);
    }

    #[test]
    fn mm1_population_matches_theory() {
        // M/M/1 with ρ = 0.5 → mean jobs in system = ρ/(1−ρ) = 1.
        let params = CpuSimParams {
            horizon: 50_000.0,
            warmup: 2000.0,
            ..CpuSimParams::exponential_service(2.0, f64::INFINITY, 0.0)
        };
        let sim = CpuDes::new(params, Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(11);
        assert!(
            (r.mean_jobs_in_system - 1.0).abs() < 0.1,
            "L = {}",
            r.mean_jobs_in_system
        );
        // Mean latency W = 1/(μ−λ) = 1 s.
        assert!((r.mean_latency - 1.0).abs() < 0.1, "W = {}", r.mean_latency);
        assert!(r.littles_law_residual() < 0.05);
    }

    #[test]
    fn immediate_power_down_t_zero() {
        // T = 0: the CPU drops to standby the moment it goes idle → idle
        // fraction ≈ 0; every job burst pays the power-up delay.
        let sim = CpuDes::new(paper_params(0.0, 0.05), Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(3);
        assert!(r.fractions.idle < 1e-9, "idle = {}", r.fractions.idle);
        assert!(r.power_up_cycles > 100);
        assert!(r.power_up_cycles <= r.power_down_cycles + 1);
        assert!(r.fractions.standby > 0.5);
    }

    #[test]
    fn zero_power_up_delay() {
        let sim = CpuDes::new(paper_params(0.2, 0.0), Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(5);
        assert!(r.fractions.powerup < 1e-9);
        assert!(r.fractions.is_normalized(1e-9));
        assert!(r.completions > 0);
    }

    #[test]
    fn large_power_up_delay_queues_jobs() {
        // D = 10 s, λ = 1/s → each power-up accumulates ~10 jobs; utilization
        // still ≈ ρ because all jobs eventually get served.
        let params = CpuSimParams {
            horizon: 50_000.0,
            warmup: 5000.0,
            ..CpuSimParams::exponential_service(10.0, 0.5, 10.0)
        };
        let sim = CpuDes::new(params, Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(13);
        assert!(
            (r.fractions.active - 0.1).abs() < 0.02,
            "active = {}",
            r.fractions.active
        );
        assert!(
            r.fractions.powerup > 0.2,
            "powerup = {}",
            r.fractions.powerup
        );
        assert!(r.mean_latency > 1.0, "waking costs latency");
    }

    #[test]
    fn latencies_nonnegative_and_counted() {
        let sim = CpuDes::new(paper_params(0.5, 0.001), Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(21);
        assert_eq!(r.latency_count, r.completions);
        assert!(r.mean_latency >= 0.0);
        assert!(r.arrivals >= r.completions);
    }

    #[test]
    fn bounded_buffer_drops() {
        let params = CpuSimParams {
            max_queue: Some(1),
            horizon: 10_000.0,
            ..CpuSimParams::exponential_service(0.5, 0.5, 0.001)
        };
        // Overloaded: λ = 2, μ = 0.5 → most arrivals dropped.
        let sim = CpuDes::new(params, Workload::open_poisson(2.0)).unwrap();
        let r = sim.run_with_seed(9);
        assert!(r.dropped > 0);
        assert!(r.arrivals > r.completions + r.dropped / 2);
        assert!(r.fractions.is_normalized(1e-9));
    }

    #[test]
    fn closed_workload_bounded_population() {
        let params = paper_params(0.5, 0.01);
        let wl = Workload::Closed(ClosedWorkload {
            population: 3,
            think: Dist::Exponential { rate: 1.0 },
        });
        let sim = CpuDes::new(params, wl).unwrap();
        let r = sim.run_with_seed(17);
        // Population bound: never more than 3 jobs in the system.
        assert!(r.mean_jobs_in_system <= 3.0 + 1e-9);
        assert!(r.completions > 100);
        assert!(r.fractions.is_normalized(1e-9));
    }

    #[test]
    fn warmup_resets_statistics() {
        let mut params = paper_params(0.5, 0.001);
        params.warmup = 2500.0;
        let sim = CpuDes::new(params.clone(), Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(23);
        assert!((r.time_observed - 2500.0).abs() < 1e-9);
        // Roughly λ×window arrivals post-warmup.
        assert!((r.arrivals as f64 - 2500.0).abs() < 300.0, "{}", r.arrivals);
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = CpuDes::new(paper_params(0.4, 0.3), Workload::open_poisson(1.0)).unwrap();
        let a = sim.run_with_seed(99);
        let b = sim.run_with_seed(99);
        assert_eq!(a, b);
        let c = sim.run_with_seed(100);
        assert_ne!(a.fractions, c.fractions);
    }

    #[test]
    fn deterministic_arrivals_and_service_are_exact() {
        // Arrivals every 1 s, service 0.25 s, T = ∞ (stay on), D = 0:
        // active fraction must be exactly 0.25 after the first arrival.
        let params = CpuSimParams {
            service: Dist::Deterministic(0.25),
            power_down_threshold: f64::INFINITY,
            power_up_delay: 0.0,
            horizon: 10_001.0,
            warmup: 1.0,
            max_queue: None,
        };
        let wl = Workload::Open(OpenWorkload::Renewal(Dist::Deterministic(1.0)));
        let sim = CpuDes::new(params, wl).unwrap();
        let r = sim.run_with_seed(1);
        assert!(
            (r.fractions.active - 0.25).abs() < 1e-6,
            "active = {}",
            r.fractions.active
        );
        assert!((r.mean_latency - 0.25).abs() < 1e-9);
    }

    #[test]
    fn latency_histogram_collection() {
        let mut params = paper_params(0.5, 0.001);
        params.warmup = 500.0;
        let sim = CpuDes::new(params, Workload::open_poisson(1.0)).unwrap();
        let mut hist = wsnem_stats::Histogram::new(0.0, 5.0, 100);
        let mut rng = Xoshiro256PlusPlus::new(77);
        let r = sim.run_collecting(&mut rng, &mut hist);
        // Every post-warmup completion was binned.
        assert_eq!(hist.count(), r.completions);
        assert!(hist.count() > 1000);
        // Histogram mean agrees with the report's latency mean.
        assert!(
            (hist.mean() - r.mean_latency).abs() < 1e-9,
            "{} vs {}",
            hist.mean(),
            r.mean_latency
        );
        // Median latency below the mean (exponential-ish right skew).
        let median = hist.quantile(0.5).unwrap();
        assert!(median <= r.mean_latency + 0.05);
        // run() and run_collecting() produce identical reports.
        let mut rng2 = Xoshiro256PlusPlus::new(77);
        let r2 = sim.run(&mut rng2);
        assert_eq!(r, r2);
    }

    #[test]
    fn observers_do_not_perturb_runs() {
        use wsnem_obs::{Counters, NoopObserver, StateTimeline, Tee, TraceWriter};

        let configs = [
            (paper_params(0.5, 0.001), Workload::open_poisson(1.0)),
            (paper_params(0.0, 0.05), Workload::open_poisson(1.0)),
            (
                {
                    let mut p = paper_params(0.4, 0.3);
                    p.warmup = 1000.0;
                    p.max_queue = Some(2);
                    p
                },
                Workload::open_poisson(2.0),
            ),
            (
                paper_params(0.5, 0.01),
                Workload::Closed(ClosedWorkload {
                    population: 3,
                    think: Dist::Exponential { rate: 1.0 },
                }),
            ),
        ];
        for (i, (params, wl)) in configs.into_iter().enumerate() {
            let sim = CpuDes::new(params, wl).unwrap();
            for seed in [7u64, 99] {
                let mut rng_base = Xoshiro256PlusPlus::new(seed);
                let base = sim.run(&mut rng_base);

                let mut trace = TraceWriter::new(Vec::new()).with_limit(500);
                let mut rng = Xoshiro256PlusPlus::new(seed);
                let r = sim.run_observed(&mut rng, &mut trace);
                assert_eq!(r, base, "config {i} seed {seed}: TraceWriter");
                assert_eq!(rng, rng_base, "config {i} seed {seed}: TraceWriter RNG");
                assert!(trace.records_written() > 0);

                let mut timeline = StateTimeline::new();
                let mut rng = Xoshiro256PlusPlus::new(seed);
                let r = sim.run_observed(&mut rng, &mut timeline);
                assert_eq!(r, base, "config {i} seed {seed}: StateTimeline");
                assert_eq!(rng, rng_base, "config {i} seed {seed}: StateTimeline RNG");

                let mut counters = Counters::new();
                let mut rng = Xoshiro256PlusPlus::new(seed);
                let r = sim.run_observed(&mut rng, &mut counters);
                assert_eq!(r, base, "config {i} seed {seed}: Counters");
                let snap = counters.snapshot();
                assert!(snap.events > 0 && snap.rng_draws > 0);

                let mut tee = Tee::new(StateTimeline::new(), NoopObserver);
                let mut rng = Xoshiro256PlusPlus::new(seed);
                let r = sim.run_observed(&mut rng, &mut tee);
                assert_eq!(r, base, "config {i} seed {seed}: Tee");
            }
        }
    }

    #[test]
    fn timeline_sojourn_fractions_match_report() {
        // With warmup = 0 the observer's per-state sojourn totals span the
        // whole run, so its fractions must equal the report's exactly.
        use wsnem_obs::StateTimeline;
        let sim = CpuDes::new(paper_params(0.5, 0.001), Workload::open_poisson(1.0)).unwrap();
        let mut timeline = StateTimeline::new();
        let mut rng = Xoshiro256PlusPlus::new(42);
        let r = sim.run_observed(&mut rng, &mut timeline);
        assert!((timeline.total_time() - r.time_observed).abs() < 1e-9);
        let fr = r.fractions.as_array();
        for (state, &want) in fr.iter().enumerate() {
            let got = timeline.fraction(state as u8);
            assert!(
                (got - want).abs() < 1e-9,
                "state {state}: timeline {got} vs report {want}"
            );
        }
    }

    #[test]
    fn energy_helpers() {
        let sim = CpuDes::new(paper_params(0.5, 0.001), Workload::open_poisson(1.0)).unwrap();
        let r = sim.run_with_seed(31);
        let p = PowerProfile::pxa271();
        let e = r.energy(&p);
        assert!(e.total_joules() > 0.0);
        assert!((r.energy_joules(&p) - e.total_joules()).abs() < 1e-12);
        // Bounded by the extreme per-state rates.
        let lo = 17.0 * r.time_observed / 1000.0;
        let hi = 193.0 * r.time_observed / 1000.0;
        assert!(e.total_joules() >= lo && e.total_joules() <= hi);
    }
}
