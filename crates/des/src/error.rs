//! DES error type.

use std::fmt;

use wsnem_stats::StatsError;

/// Errors raised by simulator configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DesError {
    /// A distribution parameter was invalid.
    Stats(StatsError),
    /// A simulation parameter was out of domain.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// Constraint description.
        constraint: &'static str,
        /// Offending value.
        value: f64,
    },
    /// An event was scheduled in the past.
    TimeTravel {
        /// Current simulation time.
        now: f64,
        /// Requested event time.
        requested: f64,
    },
}

impl fmt::Display for DesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesError::Stats(e) => write!(f, "distribution error: {e}"),
            DesError::InvalidParameter {
                what,
                constraint,
                value,
            } => write!(f, "{what}: value {value} violates {constraint}"),
            DesError::TimeTravel { now, requested } => {
                write!(f, "event scheduled in the past: {requested} < now {now}")
            }
        }
    }
}

impl std::error::Error for DesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for DesError {
    fn from(e: StatsError) -> Self {
        DesError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DesError::from(StatsError::InvalidParameter {
            what: "Exponential",
            constraint: "rate > 0",
            value: -1.0,
        });
        assert!(e.to_string().contains("Exponential"));
        assert!(std::error::Error::source(&e).is_some());

        let t = DesError::TimeTravel {
            now: 5.0,
            requested: 3.0,
        };
        assert!(t.to_string().contains('3'));
        assert!(std::error::Error::source(&t).is_none());
    }
}
