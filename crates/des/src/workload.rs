//! Workload generators.
//!
//! The paper distinguishes **open** workloads (tasks arrive independently of
//! the system state — interrupt-driven sensing) from **closed** workloads
//! (a new task only arrives after the current one completes — fixed-interval
//! duty cycles). The paper implements an open Poisson workload; this module
//! provides that plus richer open processes (MMPP, bursty on-off, trace
//! replay) and the closed finite-population model, all behind one enum.

use wsnem_stats::dist::{Dist, Sample};
use wsnem_stats::rng::Rng64;

use crate::error::DesError;

/// Specification of an open (state-independent) arrival process.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenWorkload {
    /// Renewal process: i.i.d. interarrival times (Poisson when the
    /// distribution is exponential — the paper's generator).
    Renewal(Dist),
    /// 2-state Markov-Modulated Poisson Process: Poisson arrivals whose rate
    /// flips between `rate0`/`rate1` at exponential switching times — a
    /// standard model of bursty sensor traffic.
    Mmpp2 {
        /// Arrival rate in modulating state 0.
        rate0: f64,
        /// Arrival rate in modulating state 1.
        rate1: f64,
        /// Switching rate 0 → 1.
        switch01: f64,
        /// Switching rate 1 → 0.
        switch10: f64,
    },
    /// On-off bursts: during an "on" period (duration `on`), arrivals are
    /// Poisson with `rate_on`; "off" periods (duration `off`) are silent.
    BurstyOnOff {
        /// Duration distribution of on periods.
        on: Dist,
        /// Duration distribution of off periods.
        off: Dist,
        /// Poisson arrival rate while on.
        rate_on: f64,
    },
    /// Replay a fixed sequence of interarrival gaps, cycling when exhausted.
    Trace(Vec<f64>),
}

impl OpenWorkload {
    /// Poisson arrivals at `rate` per second — the paper's default.
    pub fn poisson(rate: f64) -> Self {
        OpenWorkload::Renewal(Dist::Exponential { rate })
    }

    /// Validate the specification.
    pub fn validate(&self) -> Result<(), DesError> {
        match self {
            OpenWorkload::Renewal(d) => {
                d.validate()?;
                Ok(())
            }
            OpenWorkload::Mmpp2 {
                rate0,
                rate1,
                switch01,
                switch10,
            } => {
                for (name, v) in [
                    ("mmpp2.rate0", *rate0),
                    ("mmpp2.rate1", *rate1),
                    ("mmpp2.switch01", *switch01),
                    ("mmpp2.switch10", *switch10),
                ] {
                    if !(v >= 0.0) || !v.is_finite() {
                        return Err(DesError::InvalidParameter {
                            what: name,
                            constraint: ">= 0 and finite",
                            value: v,
                        });
                    }
                }
                if *rate0 <= 0.0 && *rate1 <= 0.0 {
                    return Err(DesError::InvalidParameter {
                        what: "mmpp2",
                        constraint: "at least one state rate > 0",
                        value: 0.0,
                    });
                }
                Ok(())
            }
            OpenWorkload::BurstyOnOff { on, off, rate_on } => {
                on.validate()?;
                off.validate()?;
                if !(*rate_on > 0.0) {
                    return Err(DesError::InvalidParameter {
                        what: "bursty.rate_on",
                        constraint: "> 0",
                        value: *rate_on,
                    });
                }
                Ok(())
            }
            OpenWorkload::Trace(gaps) => {
                if gaps.is_empty() {
                    return Err(DesError::InvalidParameter {
                        what: "trace",
                        constraint: "non-empty",
                        value: 0.0,
                    });
                }
                if gaps.iter().any(|g| !(*g >= 0.0) || !g.is_finite()) {
                    return Err(DesError::InvalidParameter {
                        what: "trace",
                        constraint: "gaps >= 0 and finite",
                        value: f64::NAN,
                    });
                }
                Ok(())
            }
        }
    }

    /// Long-run mean arrival rate (arrivals per unit time).
    pub fn mean_rate(&self) -> f64 {
        match self {
            OpenWorkload::Renewal(d) => 1.0 / d.mean(),
            OpenWorkload::Mmpp2 {
                rate0,
                rate1,
                switch01,
                switch10,
            } => {
                // Stationary distribution of the 2-state modulating chain.
                let p0 = switch10 / (switch01 + switch10);
                p0 * rate0 + (1.0 - p0) * rate1
            }
            OpenWorkload::BurstyOnOff { on, off, rate_on } => {
                let frac_on = on.mean() / (on.mean() + off.mean());
                frac_on * rate_on
            }
            OpenWorkload::Trace(gaps) => {
                let total: f64 = gaps.iter().sum();
                if total > 0.0 {
                    gaps.len() as f64 / total
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// Closed (finite-population) workload: `population` customers alternate
/// between thinking (for a `think`-distributed time) and submitting a job.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedWorkload {
    /// Number of circulating customers.
    pub population: u32,
    /// Think-time distribution.
    pub think: Dist,
}

impl ClosedWorkload {
    /// Validate the specification.
    pub fn validate(&self) -> Result<(), DesError> {
        if self.population == 0 {
            return Err(DesError::InvalidParameter {
                what: "closed.population",
                constraint: ">= 1",
                value: 0.0,
            });
        }
        self.think.validate()?;
        Ok(())
    }
}

/// A workload: open or closed.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Open: arrivals independent of system state.
    Open(OpenWorkload),
    /// Closed: arrivals gated by completions.
    Closed(ClosedWorkload),
}

impl Workload {
    /// The paper's generator: open Poisson arrivals at `rate`.
    pub fn open_poisson(rate: f64) -> Self {
        Workload::Open(OpenWorkload::poisson(rate))
    }

    /// Validate the specification.
    pub fn validate(&self) -> Result<(), DesError> {
        match self {
            Workload::Open(o) => o.validate(),
            Workload::Closed(c) => c.validate(),
        }
    }
}

/// Stateful generator that produces successive interarrival gaps for an
/// [`OpenWorkload`] (holds the MMPP modulating state / burst phase / trace
/// cursor).
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    spec: OpenWorkload,
    // MMPP: current modulating state; BurstyOnOff: time left in current
    // phase and whether we're on; Trace: cursor.
    mmpp_state: u8,
    burst_on: bool,
    burst_left: f64,
    cursor: usize,
}

impl WorkloadGen {
    /// Create a generator for the given open workload.
    pub fn new(spec: OpenWorkload) -> Result<Self, DesError> {
        spec.validate()?;
        Ok(Self {
            spec,
            mmpp_state: 0,
            burst_on: false,
            burst_left: 0.0,
            cursor: 0,
        })
    }

    /// Next interarrival gap (time from the previous arrival to the next).
    pub fn next_gap<R: Rng64 + ?Sized>(&mut self, rng: &mut R) -> f64 {
        match &self.spec {
            OpenWorkload::Renewal(d) => {
                // Clamp like the service/think sites: a distribution with
                // negative support must not rewind simulation time.
                d.sample(rng).max(0.0)
            }
            OpenWorkload::Mmpp2 {
                rate0,
                rate1,
                switch01,
                switch10,
            } => {
                let (rates, switches) = ([*rate0, *rate1], [*switch01, *switch10]);
                let mut elapsed = 0.0f64;
                // Competing exponentials: next arrival vs next modulating
                // switch; loop until an arrival wins.
                loop {
                    let s = self.mmpp_state as usize;
                    let arr_rate = rates[s];
                    let sw_rate = switches[s];
                    let t_arrival = if arr_rate > 0.0 {
                        -rng.next_open_f64().ln() / arr_rate
                    } else {
                        f64::INFINITY
                    };
                    let t_switch = if sw_rate > 0.0 {
                        -rng.next_open_f64().ln() / sw_rate
                    } else {
                        f64::INFINITY
                    };
                    if t_arrival <= t_switch {
                        return elapsed + t_arrival;
                    }
                    elapsed += t_switch;
                    self.mmpp_state ^= 1;
                }
            }
            OpenWorkload::BurstyOnOff { on, off, rate_on } => {
                let mut elapsed = 0.0f64;
                loop {
                    if !self.burst_on {
                        // Silent: skip the rest of the off period.
                        elapsed += self.burst_left;
                        self.burst_on = true;
                        self.burst_left = on.sample(rng).max(0.0);
                        continue;
                    }
                    let t_arrival = -rng.next_open_f64().ln() / rate_on;
                    if t_arrival <= self.burst_left {
                        self.burst_left -= t_arrival;
                        return elapsed + t_arrival;
                    }
                    elapsed += self.burst_left;
                    self.burst_on = false;
                    self.burst_left = off.sample(rng).max(0.0);
                }
            }
            OpenWorkload::Trace(gaps) => {
                let g = gaps[self.cursor % gaps.len()];
                self.cursor += 1;
                g
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnem_stats::rng::Xoshiro256PlusPlus;

    fn mean_gap(spec: OpenWorkload, n: usize, seed: u64) -> f64 {
        let mut gen = WorkloadGen::new(spec).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(seed);
        (0..n).map(|_| gen.next_gap(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn poisson_mean_rate() {
        let w = OpenWorkload::poisson(2.0);
        assert!((w.mean_rate() - 2.0).abs() < 1e-12);
        let m = mean_gap(w, 100_000, 1);
        assert!((m - 0.5).abs() < 0.01, "mean gap {m}");
    }

    #[test]
    fn mmpp_long_run_rate() {
        let w = OpenWorkload::Mmpp2 {
            rate0: 10.0,
            rate1: 1.0,
            switch01: 0.5,
            switch10: 0.5,
        };
        w.validate().unwrap();
        // p0 = 0.5 → mean rate 5.5 → mean gap ≈ 1/5.5.
        assert!((w.mean_rate() - 5.5).abs() < 1e-12);
        let m = mean_gap(w, 200_000, 2);
        assert!((m - 1.0 / 5.5).abs() < 0.01, "mean gap {m}");
    }

    #[test]
    fn mmpp_with_silent_state() {
        // State 1 has rate 0 — arrivals only while in state 0.
        let w = OpenWorkload::Mmpp2 {
            rate0: 4.0,
            rate1: 0.0,
            switch01: 1.0,
            switch10: 1.0,
        };
        w.validate().unwrap();
        assert!((w.mean_rate() - 2.0).abs() < 1e-12);
        let m = mean_gap(w, 100_000, 3);
        assert!((m - 0.5).abs() < 0.02, "mean gap {m}");
    }

    #[test]
    fn bursty_long_run_rate() {
        let w = OpenWorkload::BurstyOnOff {
            on: Dist::Deterministic(1.0),
            off: Dist::Deterministic(3.0),
            rate_on: 8.0,
        };
        w.validate().unwrap();
        // On 25% of the time at rate 8 → mean rate 2.
        assert!((w.mean_rate() - 2.0).abs() < 1e-12);
        let m = mean_gap(w, 200_000, 4);
        assert!((m - 0.5).abs() < 0.02, "mean gap {m}");
    }

    #[test]
    fn trace_replay_cycles() {
        let w = OpenWorkload::Trace(vec![1.0, 2.0, 3.0]);
        let mut gen = WorkloadGen::new(w.clone()).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(5);
        let gaps: Vec<f64> = (0..7).map(|_| gen.next_gap(&mut rng)).collect();
        assert_eq!(gaps, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
        assert!((w.mean_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(OpenWorkload::Trace(vec![]).validate().is_err());
        assert!(OpenWorkload::Trace(vec![-1.0]).validate().is_err());
        assert!(OpenWorkload::poisson(-1.0).validate().is_err());
        assert!(OpenWorkload::Mmpp2 {
            rate0: 0.0,
            rate1: 0.0,
            switch01: 1.0,
            switch10: 1.0
        }
        .validate()
        .is_err());
        assert!(OpenWorkload::BurstyOnOff {
            on: Dist::Deterministic(1.0),
            off: Dist::Deterministic(1.0),
            rate_on: 0.0
        }
        .validate()
        .is_err());
        assert!(ClosedWorkload {
            population: 0,
            think: Dist::Deterministic(1.0)
        }
        .validate()
        .is_err());
        assert!(Workload::open_poisson(1.0).validate().is_ok());
        assert!(Workload::Closed(ClosedWorkload {
            population: 3,
            think: Dist::Exponential { rate: 1.0 }
        })
        .validate()
        .is_ok());
    }
}
