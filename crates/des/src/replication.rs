//! Parallel independent replications.
//!
//! Replication `i` always consumes RNG stream `i` derived from the master
//! seed, and results are reduced in replication order — so the summary is
//! bit-identical whether it ran on 1 thread or 64 (the reproducibility
//! contract DESIGN.md §6 promises).

use wsnem_energy::StateFractions;
use wsnem_stats::ci::ConfidenceInterval;
use wsnem_stats::online::Welford;
use wsnem_stats::rng::StreamFactory;
use wsnem_stats::StatsError;

use crate::cpu::{CpuDes, CpuRunReport};

/// Cross-replication summary of CPU runs.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Every per-replication report, in replication order.
    pub reports: Vec<CpuRunReport>,
    /// Across-replication accumulators of the four state fractions
    /// (canonical order).
    pub fraction_stats: [Welford; 4],
    /// Across-replication accumulator of mean latency.
    pub latency_stats: Welford,
}

impl ReplicationSummary {
    /// Mean state fractions across replications.
    pub fn mean_fractions(&self) -> StateFractions {
        StateFractions::from_array([
            self.fraction_stats[0].mean(),
            self.fraction_stats[1].mean(),
            self.fraction_stats[2].mean(),
            self.fraction_stats[3].mean(),
        ])
    }

    /// Confidence interval of one state fraction (canonical index).
    pub fn fraction_ci(
        &self,
        state_index: usize,
        level: f64,
    ) -> Result<ConfidenceInterval, StatsError> {
        ConfidenceInterval::from_welford(&self.fraction_stats[state_index], level)
    }

    /// Mean of the per-replication mean latencies.
    pub fn mean_latency(&self) -> f64 {
        self.latency_stats.mean()
    }

    /// Number of replications.
    pub fn replications(&self) -> usize {
        self.reports.len()
    }
}

/// Run `n` independent replications of `sim`, distributing them over
/// `threads` OS threads (`None` = available parallelism).
///
/// # Panics
/// Panics if `n == 0`.
pub fn run_replications(
    sim: &CpuDes,
    n: usize,
    master_seed: u64,
    threads: Option<usize>,
) -> ReplicationSummary {
    assert!(n > 0, "need at least one replication");
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let factory = StreamFactory::new(master_seed);

    let mut reports: Vec<Option<CpuRunReport>> = vec![None; n];
    if threads == 1 {
        for (i, slot) in reports.iter_mut().enumerate() {
            let mut rng = factory.stream(i as u64);
            *slot = Some(sim.run(&mut rng));
        }
    } else {
        // Static block partition: thread k owns a contiguous chunk. Each
        // chunk is an exclusive &mut slice, so no locks in the hot path.
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (k, slots) in reports.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        let rep = k * chunk + j;
                        let mut rng = factory.stream(rep as u64);
                        *slot = Some(sim.run(&mut rng));
                    }
                });
            }
        });
    }

    // Ordered, deterministic reduction. Both branches above write every
    // slot: the serial loop visits each index, and `chunks_mut` partitions
    // the whole slice across threads.
    let reports: Vec<CpuRunReport> = reports
        .into_iter()
        .map(|r| match r {
            Some(report) => report,
            None => unreachable!("replication slot left unfilled"),
        })
        .collect();
    let mut fraction_stats = [Welford::new(); 4];
    let mut latency_stats = Welford::new();
    for r in &reports {
        for (w, v) in fraction_stats.iter_mut().zip(r.fractions.as_array()) {
            w.push(v);
        }
        latency_stats.push(r.mean_latency);
    }
    ReplicationSummary {
        reports,
        fraction_stats,
        latency_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSimParams;
    use crate::workload::Workload;

    fn sim() -> CpuDes {
        let params = CpuSimParams {
            horizon: 500.0,
            ..CpuSimParams::exponential_service(10.0, 0.3, 0.001)
        };
        CpuDes::new(params, Workload::open_poisson(1.0)).unwrap()
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = sim();
        let seq = run_replications(&s, 8, 2024, Some(1));
        let par = run_replications(&s, 8, 2024, Some(4));
        assert_eq!(seq.reports, par.reports, "thread count must not matter");
        assert_eq!(seq.mean_fractions(), par.mean_fractions());
    }

    #[test]
    fn summary_statistics() {
        let s = sim();
        let sum = run_replications(&s, 16, 7, None);
        assert_eq!(sum.replications(), 16);
        let f = sum.mean_fractions();
        assert!(f.is_normalized(1e-6), "{f:?}");
        let ci = sum.fraction_ci(3, 0.95).unwrap(); // Active
        assert!(ci.half_width > 0.0);
        assert!(ci.contains(f.active));
        assert!(sum.mean_latency() > 0.0);
    }

    #[test]
    fn more_threads_than_replications() {
        let s = sim();
        let sum = run_replications(&s, 2, 7, Some(16));
        assert_eq!(sum.replications(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let s = sim();
        let _ = run_replications(&s, 0, 1, None);
    }

    #[test]
    fn different_master_seeds_differ() {
        let s = sim();
        let a = run_replications(&s, 4, 1, Some(2));
        let b = run_replications(&s, 4, 2, Some(2));
        assert_ne!(a.reports, b.reports);
    }
}
