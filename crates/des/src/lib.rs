//! # wsnem-des
//!
//! A discrete-event simulation (DES) kernel plus the CPU power-state
//! simulator the paper uses as ground truth (the authors used a Matlab event
//! simulator; this is the faithful Rust substitute).
//!
//! * [`event`] — a cancellable future-event list: binary heap + slab with
//!   generation-checked [`event::EventId`]s, stable (time, seq) ordering.
//! * [`workload`] — open workload generators (renewal/Poisson, 2-state MMPP,
//!   bursty on-off, trace replay) and closed (finite-population) workloads.
//! * [`cpu`] — the M/M/1-with-setup-and-timeout processor model: Poisson (or
//!   general) arrivals, one server, constant Power-Down Threshold `T` and
//!   Power-Up Delay `D`, with exact time-in-state accounting.
//! * [`replication`] — embarrassingly-parallel independent replications with
//!   per-replication RNG streams and order-deterministic reduction.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod cpu;
pub mod error;
pub mod event;
pub mod replication;
pub mod workload;

pub use cpu::{CpuDes, CpuRunReport, CpuSimParams};
pub use error::DesError;
pub use event::{EventId, EventQueue};
pub use replication::{run_replications, ReplicationSummary};
pub use workload::{ClosedWorkload, OpenWorkload, Workload, WorkloadGen};
