//! Validation of the DES substrate against classical queueing theory:
//! D/D/1 exactness, M/D/1 and M/G/1 Pollaczek–Khinchine, M/M/1 moments.
//! (Power management disabled: `T = ∞`, `D = 0` reduce the CPU simulator to
//! a plain single-server queue with an Idle state.)

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_des::cpu::{CpuDes, CpuSimParams};
use wsnem_des::replication::run_replications;
use wsnem_des::workload::{OpenWorkload, Workload};
use wsnem_stats::dist::Dist;
use wsnem_stats::online::Welford;

fn queue_only_params(service: Dist, horizon: f64, warmup: f64) -> CpuSimParams {
    CpuSimParams {
        service,
        power_down_threshold: f64::INFINITY,
        power_up_delay: 0.0,
        horizon,
        warmup,
        max_queue: None,
    }
}

/// Mean jobs-in-system across replications.
fn mean_l(sim: &CpuDes, reps: usize) -> (f64, f64) {
    let summary = run_replications(sim, reps, 99, None);
    let mut l = Welford::new();
    let mut w = Welford::new();
    for r in &summary.reports {
        l.push(r.mean_jobs_in_system);
        w.push(r.mean_latency);
    }
    (l.mean(), w.mean())
}

#[test]
fn dd1_is_exact() {
    // Deterministic arrivals every 1 s, deterministic service 0.4 s:
    // never any queueing; latency exactly 0.4 s; utilization exactly 0.4.
    let params = queue_only_params(Dist::Deterministic(0.4), 10_000.0, 100.0);
    let wl = Workload::Open(OpenWorkload::Renewal(Dist::Deterministic(1.0)));
    let sim = CpuDes::new(params, wl).unwrap();
    let r = sim.run_with_seed(1);
    assert!(
        (r.fractions.active - 0.4).abs() < 1e-3,
        "{}",
        r.fractions.active
    );
    assert!((r.mean_latency - 0.4).abs() < 1e-9);
    assert!(r.latency_variance < 1e-12, "no latency jitter in D/D/1");
    assert!((r.mean_jobs_in_system - 0.4).abs() < 1e-3);
}

#[test]
fn md1_matches_pollaczek_khinchine() {
    // M/D/1, λ = 1, deterministic service 0.5 (ρ = 0.5):
    // Lq = ρ²(1 + Cs²) / (2(1−ρ)) with Cs² = 0 → Lq = 0.25; L = Lq + ρ = 0.75.
    let params = queue_only_params(Dist::Deterministic(0.5), 40_000.0, 1000.0);
    let sim = CpuDes::new(params, Workload::open_poisson(1.0)).unwrap();
    let (l, w) = mean_l(&sim, 8);
    assert!((l - 0.75).abs() < 0.02, "L = {l}");
    // Little: W = L/λ = 0.75.
    assert!((w - 0.75).abs() < 0.02, "W = {w}");
}

#[test]
fn mg1_erlang_service_matches_pollaczek_khinchine() {
    // M/G/1 with Erlang-2 service, mean 0.5 (ρ = 0.5), Cs² = 1/2:
    // Lq = ρ²(1 + Cs²)/(2(1−ρ)) = 0.25 · 1.5 / 1 = 0.375; L = 0.875.
    let service = Dist::Erlang { k: 2, rate: 4.0 };
    let params = queue_only_params(service, 40_000.0, 1000.0);
    let sim = CpuDes::new(params, Workload::open_poisson(1.0)).unwrap();
    let (l, _) = mean_l(&sim, 8);
    assert!((l - 0.875).abs() < 0.03, "L = {l}");
}

#[test]
fn mg1_hyperexponential_tail_heavier_than_md1() {
    // Service with higher variability (LogNormal, Cs² > 1) must queue more
    // than deterministic service at equal ρ — the P-K ordering.
    let lognormal = Dist::LogNormal {
        // mean 0.5 with sigma² = ln 2 ⇒ mu = ln(0.5) − ln(2)/2.
        mu: -0.5 * std::f64::consts::LN_2 - std::f64::consts::LN_2,
        sigma: std::f64::consts::LN_2.sqrt(),
    };
    // Check the mean really is 0.5 before relying on it.
    use wsnem_stats::dist::Sample;
    assert!(
        (lognormal.mean() - 0.5).abs() < 1e-9,
        "{}",
        lognormal.mean()
    );

    let det = CpuDes::new(
        queue_only_params(Dist::Deterministic(0.5), 40_000.0, 1000.0),
        Workload::open_poisson(1.0),
    )
    .unwrap();
    let ln = CpuDes::new(
        queue_only_params(lognormal, 40_000.0, 1000.0),
        Workload::open_poisson(1.0),
    )
    .unwrap();
    let (l_det, _) = mean_l(&det, 8);
    let (l_ln, _) = mean_l(&ln, 8);
    assert!(
        l_ln > l_det + 0.1,
        "variable service must queue more: {l_ln} vs {l_det}"
    );
}

#[test]
fn mm1_second_moment() {
    // M/M/1 ρ = 0.5: latency is exponential with mean 1/(μ−λ) = 1 →
    // variance 1.
    let params = queue_only_params(Dist::Exponential { rate: 2.0 }, 60_000.0, 1000.0);
    let sim = CpuDes::new(params, Workload::open_poisson(1.0)).unwrap();
    let r = sim.run_with_seed(5);
    assert!((r.mean_latency - 1.0).abs() < 0.05, "{}", r.mean_latency);
    assert!(
        (r.latency_variance - 1.0).abs() < 0.15,
        "{}",
        r.latency_variance
    );
}

#[test]
fn setup_time_increases_latency_but_not_throughput() {
    // Adding power management (T = 0.2, D = 0.5) to a stable queue delays
    // jobs but all of them still complete: throughput ≈ λ either way.
    let plain = CpuDes::new(
        queue_only_params(Dist::Exponential { rate: 10.0 }, 20_000.0, 500.0),
        Workload::open_poisson(1.0),
    )
    .unwrap();
    let managed = CpuDes::new(
        CpuSimParams {
            power_down_threshold: 0.2,
            power_up_delay: 0.5,
            ..queue_only_params(Dist::Exponential { rate: 10.0 }, 20_000.0, 500.0)
        },
        Workload::open_poisson(1.0),
    )
    .unwrap();
    let p = plain.run_with_seed(9);
    let m = managed.run_with_seed(9);
    assert!((p.throughput - 1.0).abs() < 0.02);
    assert!((m.throughput - 1.0).abs() < 0.02);
    assert!(
        m.mean_latency > p.mean_latency + 0.1,
        "wake-ups cost latency: {} vs {}",
        m.mean_latency,
        p.mean_latency
    );
}
