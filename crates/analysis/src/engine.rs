//! The check engine: orchestrates passes over scenarios, scenario files and
//! raw net-spec files, and folds lint configuration into the final report.

use std::path::Path;

use wsnem_core::BackendRegistry;
use wsnem_petri::NetSpec;
use wsnem_scenario::{files, Scenario, ScenarioError};

use crate::diag::{Diagnostic, Location, Severity};
use crate::lints::{self, LintConfig};
use crate::{net_passes, scenario_passes};

/// What to run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckOptions {
    /// Skip the net-level passes — schema/scenario findings only. This is
    /// exactly what `wsnem validate` runs.
    pub only_schema: bool,
}

/// Check an in-memory scenario: scenario-level passes, then (unless
/// `only_schema`) the net-level passes over its EDSPN.
pub fn check_scenario(
    s: &Scenario,
    registry: &BackendRegistry,
    opts: CheckOptions,
) -> Vec<Diagnostic> {
    let mut out = scenario_passes::run(s, registry);
    if !opts.only_schema {
        out.extend(net_passes::run(s));
    }
    out
}

/// The filename suffix that marks a raw Petri-net spec file, checked by the
/// net-level passes directly (no scenario wrapping).
pub const NET_SPEC_SUFFIX: &str = ".net.json";

/// Check one file: a `.net.json` net spec runs the net passes; anything
/// else parses as a scenario (without validating — every finding comes back
/// as a diagnostic, not one hard error) and runs [`check_scenario`]. Every
/// diagnostic is stamped with the file path.
pub fn check_file(path: &Path, registry: &BackendRegistry, opts: CheckOptions) -> Vec<Diagnostic> {
    let display = path.display().to_string();
    let mut out = if display.ends_with(NET_SPEC_SUFFIX) {
        check_net_spec_file(path)
    } else {
        match files::parse(path) {
            Ok(s) => check_scenario(&s, registry, opts),
            Err(e) => {
                let lint = match &e {
                    ScenarioError::UnsupportedVersion { .. } => &lints::SCHEMA_VERSION,
                    _ => &lints::PARSE_ERROR,
                };
                vec![lint.at(Location::default(), e.to_string())]
            }
        }
    };
    for d in &mut out {
        if d.location.file.is_none() {
            d.location.file = Some(display.clone());
        }
    }
    out
}

/// Parse and check a raw `.net.json` net-spec file.
fn check_net_spec_file(path: &Path) -> Vec<Diagnostic> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return vec![lints::PARSE_ERROR.at(Location::default(), e.to_string())],
    };
    let spec: NetSpec = match serde_json::from_str(&text) {
        Ok(spec) => spec,
        Err(e) => {
            return vec![
                lints::PARSE_ERROR.at(Location::default(), format!("net spec does not parse: {e}"))
            ]
        }
    };
    match spec.build() {
        Ok(net) => net_passes::check_net(&net, Location::default()),
        Err(e) => {
            vec![lints::PARSE_ERROR.at(Location::default(), format!("net spec does not build: {e}"))]
        }
    }
}

/// Apply a [`LintConfig`] to raw diagnostics: allowed lints vanish, the
/// rest take their effective severity, and the result is ordered
/// worst-first (stable within a severity).
pub fn resolve(diagnostics: Vec<Diagnostic>, config: &LintConfig) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = diagnostics
        .into_iter()
        .filter_map(|mut d| {
            config.effective(&d).map(|severity| {
                d.severity = severity;
                d
            })
        })
        .collect();
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// Severity counts over resolved diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct Counts {
    /// Diagnostics at [`Severity::Error`].
    pub errors: usize,
    /// Diagnostics at [`Severity::Warning`].
    pub warnings: usize,
    /// Diagnostics at [`Severity::Info`].
    pub infos: usize,
}

/// Count resolved diagnostics by severity.
pub fn counts(diagnostics: &[Diagnostic]) -> Counts {
    let mut c = Counts::default();
    for d in diagnostics {
        match d.severity {
            Severity::Error => c.errors += 1,
            Severity::Warning => c.warnings += 1,
            Severity::Info => c.infos += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Level;
    use wsnem_scenario::builtin;

    fn registry() -> &'static BackendRegistry {
        wsnem_scenario::global_registry()
    }

    fn write_temp(tag: &str, name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wsnem-analysis-engine-{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write");
        path
    }

    #[test]
    fn check_file_parses_scenario_and_stamps_path() {
        let s = builtin::paper_defaults();
        let text = files::to_string(&s, files::FileFormat::Toml).expect("renders");
        let path = write_temp("stamp", "s.toml", &text);
        let diags = check_file(&path, registry(), CheckOptions::default());
        assert!(!diags.is_empty());
        for d in &diags {
            assert_eq!(
                d.location.file.as_deref(),
                Some(path.display().to_string().as_str())
            );
        }
        assert!(diags.iter().all(|d| d.severity < Severity::Warning));
    }

    #[test]
    fn syntax_error_is_e001() {
        let path = write_temp("syntax", "bad.toml", "this is not toml = = =");
        let diags = check_file(&path, registry(), CheckOptions::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E001");
    }

    #[test]
    fn net_spec_files_run_net_passes() {
        // A one-shot net: drains its token and deadlocks, and has no
        // T-semiflow.
        let mut b = wsnem_petri::NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(p0, t, 1);
        b.output_arc(t, p1, 1);
        let net = b.build().expect("valid net");
        let spec = serde_json::to_string_pretty(&net.to_spec()).expect("serializes");
        let path = write_temp("netspec", "oneshot.net.json", &spec);
        let diags = check_file(&path, registry(), CheckOptions::default());
        assert!(
            diags.iter().any(|d| d.code == "E007"),
            "one-shot net deadlocks: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.code == "W005"),
            "one-shot net has no T-semiflow: {diags:?}"
        );
    }

    #[test]
    fn only_schema_skips_net_passes() {
        let s = builtin::paper_defaults();
        let diags = check_scenario(&s, registry(), CheckOptions { only_schema: true });
        assert!(
            diags.iter().all(|d| d.code != "I003" && d.code != "I001"),
            "{diags:?}"
        );
    }

    #[test]
    fn resolve_drops_allowed_and_sorts_worst_first() {
        let mut s = builtin::paper_defaults();
        s.cpu.lambda = 12.0;
        let mut cfg = LintConfig::default();
        cfg.set("semiflow-coverage", Level::Allow)
            .expect("known lint");
        let diags = resolve(
            check_scenario(&s, registry(), CheckOptions::default()),
            &cfg,
        );
        assert!(diags.iter().all(|d| d.code != "I002"));
        assert_eq!(diags.first().map(|d| d.code), Some("E005"));
        let c = counts(&diags);
        assert!(c.errors >= 1, "{c:?}");
    }
}
