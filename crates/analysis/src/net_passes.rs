//! Net-level passes: build the per-node EDSPN (or take a raw net spec) and
//! prove what can be proved before simulating — conservation from P-semiflow
//! coverage, steady-cycle existence from T-semiflows, deadlock and dead
//! transitions from bounded reachability, and the structural class.

use wsnem_core::build_cpu_edspn_with_service;
use wsnem_petri::analysis::{
    dead_transitions, explain_dead_marking, explore, is_free_choice, is_marked_graph,
    is_state_machine, p_semiflows, structurally_dead_transitions, t_semiflows, ReachOptions,
};
use wsnem_petri::{PetriError, PetriNet};
use wsnem_scenario::Scenario;
use wsnem_stats::Dist;

use crate::diag::{Diagnostic, Location};
use crate::lints;

/// Exploration budget for `wsnem check`: small enough that checking a
/// thousand-scenario fleet stays interactive, large enough to cover every
/// bounded net the models build (the EDSPN's bounded component has a few
/// dozen markings; mutation-style fixture nets have a handful).
pub const CHECK_REACH_OPTIONS: ReachOptions = ReachOptions {
    max_markings: 2048,
    max_tokens: 128,
};

/// Check the scenario's per-node EDSPN: build it from the scenario's λ,
/// service distribution, T and D exactly as the Petri backend would, then
/// run the net passes on it.
pub fn run(s: &Scenario) -> Vec<Diagnostic> {
    let service: Dist = s
        .service
        .as_ref()
        .map(|sv| sv.to_dist(s.cpu.mu))
        .unwrap_or(Dist::Exponential { rate: s.cpu.mu });
    let loc = Location::scenario(&s.name);
    match build_cpu_edspn_with_service(
        s.cpu.lambda,
        service,
        s.cpu.power_down_threshold,
        s.cpu.power_up_delay,
    ) {
        Ok((net, _)) => check_net(&net, loc),
        // An unbuildable net means some parameter is out of range; the
        // scenario passes' catch-all already reports that with field-level
        // context, so stay quiet rather than duplicate it.
        Err(_) => Vec::new(),
    }
}

/// Run every net pass on an already-built net. `loc` seeds the location of
/// each finding (file or scenario); place/transition names go in `field`.
pub fn check_net(net: &PetriNet, loc: Location) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    semiflow_pass(net, &loc, &mut out);
    structural_pass(net, &loc, &mut out);
    dead_and_deadlock_pass(net, &loc, &mut out);
    out
}

fn name_list(names: impl IntoIterator<Item = String>) -> String {
    names.into_iter().collect::<Vec<_>>().join(", ")
}

/// P-semiflow coverage (conservation / structural boundedness) and
/// T-semiflow existence (a steady firing cycle).
fn semiflow_pass(net: &PetriNet, loc: &Location, out: &mut Vec<Diagnostic>) {
    match p_semiflows(net) {
        Ok(flows) => {
            let uncovered: Vec<String> = net
                .places()
                .filter(|p| flows.iter().all(|y| y[p.index()] == 0))
                .map(|p| net.place_name(p).to_owned())
                .collect();
            if uncovered.is_empty() {
                out.push(lints::SEMIFLOW_COVERAGE.at(
                    loc.clone(),
                    format!(
                        "every place is covered by one of {} P-semiflow(s): token \
                         counts are conserved, so the net is structurally bounded",
                        flows.len()
                    ),
                ));
            } else {
                out.push(lints::SEMIFLOW_COVERAGE.at(
                    loc.clone().with_field(name_list(uncovered)),
                    "no P-semiflow covers these places: token counts there are not \
                     conserved (for the EDSPN's job buffer under open arrivals this \
                     is expected — boundedness is a stability question, not a \
                     structural one)",
                ));
            }
        }
        Err(PetriError::InvariantExplosion { .. }) => out.push(lints::REACHABILITY_CAPPED.at(
            loc.clone(),
            "P-semiflow computation exceeded its row budget; conservation unverified",
        )),
        Err(_) => {}
    }
    match t_semiflows(net) {
        Ok(flows) if flows.is_empty() => {
            out.push(
                lints::NO_T_SEMIFLOW
                    .at(
                        loc.clone(),
                        "no T-semiflow exists: no firing mix reproduces a marking, so \
                         the net has no steady repeating cycle",
                    )
                    .with_help(
                        "a long-run model needs a repeatable cycle; check for \
                         transitions that only drain the initial tokens",
                    ),
            );
        }
        Ok(_) => {}
        Err(PetriError::InvariantExplosion { .. }) => out.push(lints::REACHABILITY_CAPPED.at(
            loc.clone(),
            "T-semiflow computation exceeded its row budget; cycle existence unverified",
        )),
        Err(_) => {}
    }
}

/// Structural classification, reported as a plain fact.
fn structural_pass(net: &PetriNet, loc: &Location, out: &mut Vec<Diagnostic>) {
    let class = if is_state_machine(net) {
        "state machine (no synchronization)"
    } else if is_marked_graph(net) {
        "marked graph (no conflict)"
    } else if is_free_choice(net) {
        "free choice"
    } else {
        "general (non-free-choice: conflicts and synchronization interleave)"
    };
    out.push(lints::STRUCTURAL_CLASS.at(
        loc.clone(),
        format!(
            "structural class: {class}; {} place(s), {} transition(s)",
            net.n_places(),
            net.n_transitions()
        ),
    ));
}

/// Deadlock and dead-transition detection under the bounded exploration
/// budget. Structurally dead transitions are reported regardless of the
/// budget (the fixpoint is exact about them); behavioral verdicts only when
/// exploration completed.
fn dead_and_deadlock_pass(net: &PetriNet, loc: &Location, out: &mut Vec<Diagnostic>) {
    let structurally_dead = structurally_dead_transitions(net);
    if !structurally_dead.is_empty() {
        let names = name_list(
            structurally_dead
                .iter()
                .map(|&t| net.transition_name(t).to_owned()),
        );
        out.push(
            lints::DEAD_TRANSITION
                .at(
                    loc.clone().with_field(names),
                    "structurally dead: an input place can never be marked by any \
                     firing sequence, so the transition never fires under any timing",
                )
                .with_help("add a producer arc or an initial token on the starved input place"),
        );
    }
    match explore(net, CHECK_REACH_OPTIONS) {
        Ok(graph) => {
            // Complete graph: behavioral verdicts are exact.
            let dead_markings: Vec<usize> = (0..graph.len())
                .filter(|&i| net.enabled_transitions(&graph.markings[i]).is_empty())
                .collect();
            if let Some(&i) = dead_markings.first() {
                let m = &graph.markings[i];
                let why = explain_dead_marking(net, m);
                let marking: Vec<String> = net
                    .places()
                    .filter(|&p| m.tokens(p) > 0)
                    .map(|p| format!("{}={}", net.place_name(p), m.tokens(p)))
                    .collect();
                let mut msg = format!(
                    "{} of {} reachable marking(s) enable no transition; first dead \
                     marking: {{{}}}",
                    dead_markings.len(),
                    graph.len(),
                    marking.join(", ")
                );
                if !why.empty_siphon.is_empty() {
                    msg.push_str(&format!(
                        "; empty siphon {{{}}} can never be re-marked",
                        name_list(
                            why.empty_siphon
                                .iter()
                                .map(|&p| net.place_name(p).to_owned())
                        )
                    ));
                }
                if !why.inhibitor_blocked.is_empty() {
                    msg.push_str(&format!(
                        "; inhibitor arcs alone block {{{}}}",
                        name_list(
                            why.inhibitor_blocked
                                .iter()
                                .map(|&t| net.transition_name(t).to_owned())
                        )
                    ));
                }
                let mut d = lints::NET_DEADLOCK.at(loc.clone(), msg);
                if why.is_inhibitor_induced() {
                    d = d.with_help(
                        "the deadlock is purely inhibitor-induced: every input arc is \
                         satisfied, only inhibitor thresholds hold transitions back — \
                         raise the threshold or drain the inhibiting place",
                    );
                }
                out.push(d);
            }
            let behaviorally_dead: Vec<String> = dead_transitions(net, &graph)
                .into_iter()
                .filter(|t| !structurally_dead.contains(t))
                .map(|t| net.transition_name(t).to_owned())
                .collect();
            if !behaviorally_dead.is_empty() {
                out.push(lints::DEAD_TRANSITION.at(
                    loc.clone().with_field(name_list(behaviorally_dead)),
                    format!(
                        "fires on no edge of the complete {}-marking reachability \
                         graph: unreachable under the net's priorities and guards",
                        graph.len()
                    ),
                ));
            }
        }
        Err(PetriError::Unbounded { place, bound }) => {
            out.push(lints::REACHABILITY_CAPPED.at(
                loc.clone().with_field(place.clone()),
                format!(
                    "place `{place}` exceeded {bound} token(s) during exploration — \
                     the net is unbounded there (expected for the EDSPN's open job \
                     buffer); deadlock and liveness verdicts limited to the explored \
                     prefix"
                ),
            ));
        }
        Err(PetriError::TooManyMarkings { limit }) => {
            out.push(lints::REACHABILITY_CAPPED.at(
                loc.clone(),
                format!(
                    "state space exceeds {limit} markings; deadlock and liveness \
                     verdicts limited to the explored prefix"
                ),
            ));
        }
        Err(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use wsnem_petri::NetBuilder;
    use wsnem_scenario::builtin;

    #[test]
    fn every_builtin_edspn_is_clean() {
        for s in builtin::all() {
            let diags = run(&s);
            let bad: Vec<&Diagnostic> = diags
                .iter()
                .filter(|d| d.severity >= Severity::Warning)
                .collect();
            assert!(bad.is_empty(), "{}: {bad:?}", s.name);
            // The EDSPN's job buffer is open, so exploration must cap out as
            // an informational finding, never an error.
            assert!(
                diags.iter().any(|d| d.code == "I003"),
                "{}: {diags:?}",
                s.name
            );
        }
    }

    #[test]
    fn inhibitor_frozen_net_reports_e007_with_witness() {
        let mut b = NetBuilder::new();
        let a = b.place("A", 2);
        let bb = b.place("B", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(a, t, 1);
        b.output_arc(t, bb, 1);
        b.inhibitor_arc(bb, t, 1);
        let net = b.build().expect("valid net");
        let diags = check_net(&net, Location::default());
        let hit = diags
            .iter()
            .find(|d| d.code == "E007")
            .expect("deadlock must be found");
        assert!(hit.message.contains("inhibitor"), "{hit:?}");
    }

    #[test]
    fn starved_transition_reports_e008() {
        let mut b = NetBuilder::new();
        let p0 = b.place("P0", 1);
        let p1 = b.place("P1", 0);
        let never = b.place("Never", 0);
        let live = b.exponential("live", 1.0);
        b.input_arc(p0, live, 1);
        b.output_arc(live, p1, 1);
        let back = b.exponential("back", 1.0);
        b.input_arc(p1, back, 1);
        b.output_arc(back, p0, 1);
        let dead = b.exponential("dead", 1.0);
        b.input_arc(never, dead, 1);
        b.output_arc(dead, p0, 1);
        let net = b.build().expect("valid net");
        let diags = check_net(&net, Location::default());
        let hit = diags
            .iter()
            .find(|d| d.code == "E008")
            .expect("dead transition must be found");
        assert_eq!(hit.location.field.as_deref(), Some("dead"));
        // The live cycle keeps the net deadlock-free.
        assert!(diags.iter().all(|d| d.code != "E007"), "{diags:?}");
    }
}
