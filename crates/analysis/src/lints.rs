//! The lint registry: every check `wsnem check` can emit, with a stable
//! code, a kebab-case name, a default severity and an example trigger —
//! plus the per-run severity overrides (`-W` / `-D` / `-A`, `--deny
//! warnings`) that rewrite them.

use crate::diag::{Diagnostic, Location, Severity};

/// A registered lint: stable identity plus its default severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable code: `Exxx` for default-error lints, `Wxxx` for warnings,
    /// `Ixxx` for informational findings.
    pub code: &'static str,
    /// Kebab-case name, accepted wherever the code is.
    pub name: &'static str,
    /// Severity before any per-run override.
    pub severity: Severity,
    /// One-line description of what the lint catches.
    pub summary: &'static str,
    /// An example input that triggers it.
    pub trigger: &'static str,
}

impl Lint {
    /// Build a diagnostic for this lint at its default severity.
    pub fn at(&'static self, location: Location, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: self.code,
            name: self.name,
            severity: self.severity,
            location,
            message: message.into(),
            help: None,
        }
    }
}

macro_rules! lints {
    ($($ident:ident = ($code:literal, $name:literal, $sev:ident, $summary:literal, $trigger:literal);)*) => {
        $(
            #[doc = $summary]
            // Summaries are user-facing strings first: bracketed math like
            // `E[S]` must not be parsed as an intra-doc link.
            #[allow(rustdoc::broken_intra_doc_links)]
            pub static $ident: Lint = Lint {
                code: $code,
                name: $name,
                severity: Severity::$sev,
                summary: $summary,
                trigger: $trigger,
            };
        )*
        /// Every registered lint, in code order.
        pub static ALL: &[&Lint] = &[$(&$ident),*];
    };
}

lints! {
    PARSE_ERROR = (
        "E001", "parse-error", Error,
        "the file cannot be read, parsed, or built into a net",
        "a TOML scenario with unbalanced brackets, or a .net.json arc naming a missing place"
    );
    SCHEMA_VERSION = (
        "E002", "schema-version", Error,
        "the file's schema_version is outside the supported range",
        "schema_version = 99 in a scenario written against a future wsnem"
    );
    UNKNOWN_BACKEND = (
        "E003", "unknown-backend", Error,
        "a requested backend is not in the solver registry",
        "backends = [\"markov\"] in a build whose registry dropped the Markov solver"
    );
    INVALID_FIELD = (
        "E004", "invalid-field", Error,
        "a field fails schema validation (out of range, inconsistent, or missing)",
        "cpu.mu = -1, or warmup >= horizon"
    );
    UNSTABLE_QUEUE = (
        "E005", "unstable-queue", Error,
        "offered load rho = lambda_eff * E[S] >= 1: the job queue grows without bound",
        "lambda = 12 against mu = 10, or a relay whose forwarded traffic pushes it past mu"
    );
    CAPABILITY_MISMATCH = (
        "E006", "capability-mismatch", Error,
        "a backend is asked for something its capabilities rule out",
        "service.type = \"deterministic\" with the analytic markov backend"
    );
    NET_DEADLOCK = (
        "E007", "net-deadlock", Error,
        "the Petri net can reach a marking that enables no transition",
        "a .net.json whose inhibitor arc freezes the only live transition"
    );
    DEAD_TRANSITION = (
        "E008", "dead-transition", Error,
        "a transition can never fire (structurally starved or unreached in the full state space)",
        "a transition whose input place has no producer and no initial token"
    );
    MANIFEST_MISMATCH = (
        "E009", "manifest-mismatch", Error,
        "a fleet directory disagrees with its manifest.json (missing file, drifted content)",
        "deleting fleet-03.toml from a generated fleet, or hand-editing its lambda"
    );
    HIGH_RHO = (
        "W001", "high-rho", Warning,
        "offered load rho >= 0.95: stable on paper, but near-saturated queues mix slowly",
        "lambda = 9.6 against mu = 10"
    );
    RADIO_SATURATION = (
        "W002", "radio-saturation", Warning,
        "packet airtime alone fills (or overfills) a node's radio schedule",
        "tx_pps * tx_airtime_s + rx_pps * rx_airtime_s >= 1 on a relay under a slow MAC"
    );
    DEGENERATE_SWEEP = (
        "W003", "degenerate-sweep", Warning,
        "a sweep axis repeats a value: duplicate rows cost simulation time and add nothing",
        "sweep.values = [0.5, 0.5, 1.0]"
    );
    MANIFEST_EXTRA_FILE = (
        "W004", "manifest-extra-file", Warning,
        "a scenario file in a fleet directory is not listed in the manifest",
        "copying an extra .toml into a generated fleet directory"
    );
    NO_T_SEMIFLOW = (
        "W005", "no-t-semiflow", Warning,
        "no transition semiflow exists: no firing mix returns the net to a marking, so no steady cycle",
        "a net that only drains its initial tokens"
    );
    SCENARIO_TIMEOUT = (
        "W006", "scenario-timeout", Warning,
        "a scenario exceeded the --scenario-timeout wall-clock watchdog and was marked failed",
        "a DES point with horizon = 5e7 under --scenario-timeout 10"
    );
    STRUCTURAL_CLASS = (
        "I001", "structural-class", Info,
        "structural classification of the net (state machine / marked graph / free choice)",
        "any net with conflict or synchronization"
    );
    SEMIFLOW_COVERAGE = (
        "I002", "semiflow-coverage", Info,
        "places not covered by any P-semiflow: token count there is not conserved",
        "the EDSPN job buffer, unbounded under open arrivals"
    );
    REACHABILITY_CAPPED = (
        "I003", "reachability-capped", Info,
        "state-space exploration hit its budget; reachability verdicts cover the explored prefix only",
        "any net with an unbounded place, such as the EDSPN under open arrivals"
    );
    WORKLOAD_APPROXIMATION = (
        "I004", "workload-approximation", Info,
        "a non-Poisson workload drives backends that assume Poisson arrivals",
        "a bursty on-off workload evaluated by the analytic markov backend"
    );
}

/// Look a lint up by code (`E005`) or name (`unstable-queue`),
/// case-insensitively.
pub fn find(code_or_name: &str) -> Option<&'static Lint> {
    ALL.iter()
        .copied()
        .find(|l| l.code.eq_ignore_ascii_case(code_or_name) || l.name == code_or_name)
}

/// A per-run severity override level, mirroring `rustc`'s `-W`/`-D`/`-A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Suppress the lint entirely.
    Allow,
    /// Report at warning severity.
    Warn,
    /// Report at error severity (fails the check).
    Deny,
}

/// Per-run lint configuration: individual overrides plus the blanket
/// `--deny warnings` switch.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// `(lint code, level)` pairs, last-one-wins.
    overrides: Vec<(&'static str, Level)>,
    /// Escalate every effective warning to an error. Applied after
    /// individual overrides, so `-W e007 --deny warnings` still fails.
    pub deny_warnings: bool,
}

impl LintConfig {
    /// Record an override for a lint named by code or name. Errors on
    /// unknown lints, listing the registry.
    pub fn set(&mut self, code_or_name: &str, level: Level) -> Result<(), String> {
        let lint = find(code_or_name).ok_or_else(|| {
            let known: Vec<String> = ALL
                .iter()
                .map(|l| format!("{} ({})", l.code, l.name))
                .collect();
            format!(
                "unknown lint `{code_or_name}` (known: {})",
                known.join(", ")
            )
        })?;
        self.overrides.push((lint.code, level));
        Ok(())
    }

    /// The severity a diagnostic reports at under this configuration, or
    /// `None` when it is allowed away.
    pub fn effective(&self, d: &Diagnostic) -> Option<Severity> {
        let mut severity = d.severity;
        // Last explicit override wins.
        if let Some((_, level)) = self
            .overrides
            .iter()
            .rev()
            .find(|(code, _)| *code == d.code)
        {
            severity = match level {
                Level::Allow => return None,
                Level::Warn => Severity::Warning,
                Level::Deny => Severity::Error,
            };
        }
        if self.deny_warnings && severity == Severity::Warning {
            severity = Severity::Error;
        }
        Some(severity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_sorted() {
        let codes: Vec<&str> = ALL.iter().map(|l| l.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes.len(), sorted.len(), "duplicate lint code");
        // E* default to Error, W* to Warning, I* to Info — the code prefix
        // is a promise about the default.
        for l in ALL {
            let expect = match l.code.as_bytes()[0] {
                b'E' => Severity::Error,
                b'W' => Severity::Warning,
                b'I' => Severity::Info,
                other => panic!("unexpected code prefix {other}"),
            };
            assert_eq!(l.severity, expect, "{}", l.code);
        }
    }

    #[test]
    fn find_accepts_code_and_name_case_insensitively() {
        assert_eq!(find("E005").map(|l| l.name), Some("unstable-queue"));
        assert_eq!(find("e005").map(|l| l.name), Some("unstable-queue"));
        assert_eq!(find("unstable-queue").map(|l| l.code), Some("E005"));
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn overrides_rewrite_severity() {
        let d = UNSTABLE_QUEUE.at(Location::default(), "m");
        let mut cfg = LintConfig::default();
        assert_eq!(cfg.effective(&d), Some(Severity::Error));
        cfg.set("unstable-queue", Level::Warn).unwrap();
        assert_eq!(cfg.effective(&d), Some(Severity::Warning));
        cfg.set("E005", Level::Allow).unwrap();
        assert_eq!(cfg.effective(&d), None, "last override wins");
        assert!(cfg.set("no-such-lint", Level::Deny).is_err());
    }

    #[test]
    fn deny_warnings_escalates_after_overrides() {
        let warn = HIGH_RHO.at(Location::default(), "m");
        let cfg = LintConfig {
            deny_warnings: true,
            ..LintConfig::default()
        };
        assert_eq!(cfg.effective(&warn), Some(Severity::Error));
        // Info stays info; allowed lints stay gone.
        let info = SEMIFLOW_COVERAGE.at(Location::default(), "m");
        assert_eq!(cfg.effective(&info), Some(Severity::Info));
        let mut cfg = cfg;
        cfg.set("high-rho", Level::Allow).unwrap();
        assert_eq!(cfg.effective(&warn), None);
        // A demoted error becomes a warning, then --deny warnings pulls it
        // back up: demotion under the blanket deny is a no-op by design.
        cfg.set("net-deadlock", Level::Warn).unwrap();
        let err = NET_DEADLOCK.at(Location::default(), "m");
        assert_eq!(cfg.effective(&err), Some(Severity::Error));
    }
}
