//! # wsnem-analysis
//!
//! Static model verification and lints: prove a scenario sound — or explain
//! precisely how it is broken — before a single event fires.
//!
//! The crate powers `wsnem check` (and the preflight inside `wsnem run` /
//! `compare`). Every finding is a [`Diagnostic`] carrying a stable lint
//! code (`E005 unstable-queue`, `W002 radio-saturation`, …), a severity, a
//! location (file / scenario / node / field) and, where one exists, a
//! concrete fix. Severities are policy, not fate: a [`LintConfig`] applies
//! `rustc`-style `-W` / `-D` / `-A` overrides and `--deny warnings`.
//!
//! Two pass families:
//!
//! * **Scenario passes** ([`scenario_passes`]) work on the file alone:
//!   schema versioning, backend registration and capability mismatches,
//!   queue stability ρ = λ_eff·E\[S\] on the *forwarding-inflated* arrival
//!   rate of every network node, radio airtime saturation, and sweep
//!   hygiene. A catch-all keeps `check` at least as strict as schema
//!   validation.
//! * **Net passes** ([`net_passes`]) build the scenario's per-node EDSPN
//!   exactly as the Petri backend would (or take a raw `.net.json` spec)
//!   and run the `wsnem-petri` analyses: P-semiflow coverage (conservation
//!   and structural boundedness), T-semiflow existence (a steady cycle),
//!   bounded reachability for deadlock detection — with an empty-siphon or
//!   inhibitor-arc witness — and dead-transition detection, plus the
//!   structural classification as an informational note.
//!
//! [`manifest`] adds fleet-manifest verification for `wsnem gen --check`:
//! a generated directory is compared against what its `manifest.json`
//! deterministically regenerates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod diag;
pub mod engine;
pub mod lints;
pub mod manifest;
pub mod net_passes;
pub mod scenario_passes;

pub use diag::{Diagnostic, Location, Severity};
pub use engine::{check_file, check_scenario, counts, resolve, CheckOptions, Counts};
pub use lints::{Level, Lint, LintConfig};
