//! Fleet-manifest verification (`wsnem gen --check`): does a generated
//! directory still match its `manifest.json`?
//!
//! The manifest records the generator spec, the base scenario and the file
//! list; regenerating the fleet from it is bit-deterministic, so the
//! expected content of every file is known exactly. The checks:
//!
//! * a listed file missing on disk — [`crate::lints::MANIFEST_MISMATCH`],
//!   with a rename hint when an unlisted file carries the missing content;
//! * a listed file whose scenario drifted from the regenerated one —
//!   [`crate::lints::MANIFEST_MISMATCH`] naming the first differing field;
//! * a scenario file on disk the manifest does not list —
//!   [`crate::lints::MANIFEST_EXTRA_FILE`].

use std::collections::BTreeMap;
use std::path::Path;

use wsnem_scenario::gen::{self, Manifest};
use wsnem_scenario::{files, Scenario};

use crate::diag::{Diagnostic, Location};
use crate::lints;

/// Verify `dir` against its `manifest.json`.
pub fn check_fleet_dir(dir: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let manifest_path = dir.join(gen::MANIFEST_FILE);
    let loc = Location::default().with_file(manifest_path.display().to_string());
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) => {
            out.push(
                lints::MANIFEST_MISMATCH
                    .at(loc, format!("cannot read manifest: {e}"))
                    .with_help("generate the fleet with `wsnem gen <DIR> ...` first"),
            );
            return out;
        }
    };
    let manifest: Manifest = match serde_json::from_str(&text) {
        Ok(m) => m,
        Err(e) => {
            out.push(lints::MANIFEST_MISMATCH.at(loc, format!("manifest does not parse: {e}")));
            return out;
        }
    };
    let expected = match gen::generate(&manifest.base, &manifest.spec) {
        Ok(fleet) => fleet,
        Err(e) => {
            out.push(
                lints::MANIFEST_MISMATCH
                    .at(loc, format!("the recorded spec no longer regenerates: {e}")),
            );
            return out;
        }
    };
    if expected.len() != manifest.files.len() {
        out.push(lints::MANIFEST_MISMATCH.at(
            loc,
            format!(
                "the recorded spec regenerates {} scenario(s) but the manifest lists \
                 {} file(s)",
                expected.len(),
                manifest.files.len()
            ),
        ));
        return out;
    }

    // Parse every unlisted scenario file once, so missing-file checks can
    // suggest renames by content.
    let mut extras: BTreeMap<String, Option<Scenario>> = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_scenario = name.ends_with(".toml") || name.ends_with(".json");
            if !is_scenario
                || name == gen::MANIFEST_FILE
                || manifest.files.iter().any(|f| f == &name)
            {
                continue;
            }
            extras.insert(name.clone(), files::parse(entry.path()).ok());
        }
    }

    for (file, want) in manifest.files.iter().zip(&expected) {
        let path = dir.join(file);
        let floc = Location::default().with_file(path.display().to_string());
        if !path.is_file() {
            let renamed = extras
                .iter()
                .find(|(_, parsed)| parsed.as_ref() == Some(want))
                .map(|(name, _)| name.clone());
            let mut d =
                lints::MANIFEST_MISMATCH.at(floc, "listed in the manifest but missing on disk");
            d = match renamed {
                Some(name) => d.with_help(format!(
                    "`{name}` carries this scenario's exact content — renamed? \
                     restore the manifest name or regenerate"
                )),
                None => d.with_help("regenerate the fleet with `wsnem gen`"),
            };
            out.push(d);
            continue;
        }
        match files::parse(&path) {
            Err(e) => out.push(lints::MANIFEST_MISMATCH.at(floc, format!("unreadable: {e}"))),
            Ok(got) if &got != want => {
                out.push(
                    lints::MANIFEST_MISMATCH
                        .at(
                            floc.with_field(first_difference(want, &got)),
                            "content drifted from what the manifest's spec regenerates",
                        )
                        .with_help(
                            "either re-run `wsnem gen` to restore the file, or treat the \
                             edit as a new hand-authored scenario outside the fleet",
                        ),
                );
            }
            Ok(_) => {}
        }
    }

    for name in extras.keys() {
        out.push(
            lints::MANIFEST_EXTRA_FILE
                .at(
                    Location::default().with_file(dir.join(name).display().to_string()),
                    "scenario file is not listed in the manifest",
                )
                .with_help(
                    "fleet runs will pick it up anyway; regenerate with `wsnem gen` or \
                     move hand-authored scenarios out of the fleet directory",
                ),
        );
    }
    out
}

/// Name the first field where two scenarios differ — enough context to act
/// on without diffing serializations by hand.
fn first_difference(want: &Scenario, got: &Scenario) -> String {
    let fields: &[(&str, bool)] = &[
        ("schema_version", want.schema_version != got.schema_version),
        ("name", want.name != got.name),
        ("description", want.description != got.description),
        ("cpu", want.cpu != got.cpu),
        ("profile", want.profile != got.profile),
        ("battery", want.battery != got.battery),
        ("workload", want.workload != got.workload),
        ("service", want.service != got.service),
        ("backends", want.backends != got.backends),
        ("report", want.report != got.report),
        ("sweep", want.sweep != got.sweep),
        ("network", want.network != got.network),
    ];
    fields
        .iter()
        .find(|(_, differs)| *differs)
        .map(|(name, _)| (*name).to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnem_scenario::gen::{write_fleet, GenSpec};
    use wsnem_scenario::{builtin, FieldSpec, FileFormat, GenField, GenMethod};

    fn fresh_fleet(tag: &str) -> (std::path::PathBuf, Manifest) {
        let dir = std::env::temp_dir().join(format!("wsnem-analysis-manifest-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = GenSpec {
            method: GenMethod::Grid,
            count: 0,
            seed: 7,
            prefix: "fleet".into(),
            fields: vec![FieldSpec {
                field: GenField::Lambda,
                min: 0.25,
                max: 0.75,
                points: Some(3),
            }],
        };
        let manifest = write_fleet(&dir, &builtin::paper_defaults(), &spec, FileFormat::Toml)
            .expect("fleet generates");
        (dir, manifest)
    }

    #[test]
    fn pristine_fleet_is_clean() {
        let (dir, _) = fresh_fleet("clean");
        assert_eq!(check_fleet_dir(&dir), Vec::new());
    }

    #[test]
    fn missing_listed_file_is_e009() {
        let (dir, m) = fresh_fleet("missing");
        std::fs::remove_file(dir.join(&m.files[0])).expect("file exists");
        let diags = check_fleet_dir(&dir);
        assert!(diags.iter().any(|d| d.code == "E009"), "{diags:?}");
    }

    #[test]
    fn renamed_file_is_e009_plus_w004_with_hint() {
        let (dir, m) = fresh_fleet("renamed");
        std::fs::rename(dir.join(&m.files[0]), dir.join("sneaky.toml")).expect("rename");
        let diags = check_fleet_dir(&dir);
        let missing = diags
            .iter()
            .find(|d| d.code == "E009")
            .expect("missing file diagnosed");
        assert!(
            missing
                .help
                .as_deref()
                .is_some_and(|h| h.contains("sneaky.toml")),
            "{missing:?}"
        );
        assert!(diags.iter().any(|d| d.code == "W004"), "{diags:?}");
    }

    #[test]
    fn drifted_content_is_e009_naming_the_field() {
        let (dir, m) = fresh_fleet("drift");
        let path = dir.join(&m.files[1]);
        let mut s = files::load(&path).expect("loads");
        s.cpu.lambda *= 2.0;
        std::fs::write(
            &path,
            files::to_string(&s, FileFormat::Toml).expect("renders"),
        )
        .expect("writes");
        let diags = check_fleet_dir(&dir);
        let hit = diags
            .iter()
            .find(|d| d.code == "E009")
            .expect("drift diagnosed");
        assert_eq!(hit.location.field.as_deref(), Some("cpu"));
    }

    #[test]
    fn missing_manifest_is_e009() {
        let dir = std::env::temp_dir().join("wsnem-analysis-manifest-none");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let diags = check_fleet_dir(&dir);
        assert!(diags.iter().any(|d| d.code == "E009"), "{diags:?}");
    }
}
