//! The diagnostic data model: what a check found, where, and how bad it is.

use std::fmt;

use serde::{Serialize, Value};

/// How seriously a diagnostic should be taken.
///
/// Ordered: `Info < Warning < Error`, so "the worst severity in a report"
/// is a plain `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a structural fact worth knowing, never a defect.
    Info,
    /// A smell or risk the model will still simulate through.
    Warning,
    /// The scenario or net is unsound; running it is refused by default.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a diagnostic points: any subset of file / scenario / node / field.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Location {
    /// Source file the finding came from, when checking files.
    pub file: Option<String>,
    /// Scenario name.
    pub scenario: Option<String>,
    /// Network node name, for per-node findings.
    pub node: Option<String>,
    /// Schema field or net element (place / transition) the finding is about.
    pub field: Option<String>,
}

impl Location {
    /// Location naming just a scenario.
    pub fn scenario(name: &str) -> Self {
        Location {
            scenario: Some(name.to_owned()),
            ..Location::default()
        }
    }

    /// Attach a field path.
    pub fn with_field(mut self, field: impl Into<String>) -> Self {
        self.field = Some(field.into());
        self
    }

    /// Attach a node name.
    pub fn with_node(mut self, node: impl Into<String>) -> Self {
        self.node = Some(node.into());
        self
    }

    /// Attach a source file.
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// True when nothing is set (a whole-run diagnostic).
    pub fn is_empty(&self) -> bool {
        *self == Location::default()
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(file) = &self.file {
            parts.push(file.clone());
        }
        if let Some(s) = &self.scenario {
            parts.push(format!("scenario `{s}`"));
        }
        if let Some(n) = &self.node {
            parts.push(format!("node `{n}`"));
        }
        if let Some(fld) = &self.field {
            parts.push(fld.clone());
        }
        f.write_str(&parts.join(": "))
    }
}

/// One finding: a lint code, its (default) severity, where it points, what
/// went wrong and, when there is one, a concrete way out.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (`E005`, `W002`, `I001`, …).
    pub code: &'static str,
    /// The lint's kebab-case name (`unstable-queue`).
    pub name: &'static str,
    /// Severity as configured lints resolved it (default severity at
    /// construction; the engine rewrites it when `-W`/`-D` overrides apply).
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// What was found.
    pub message: String,
    /// How to fix it, when a concrete suggestion exists.
    pub help: Option<String>,
}

// The in-workspace serde derive supports no field attributes, and the JSON
// output wants lowercase severities and absent-not-null locations — so the
// `Serialize` impls are spelled out.
impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Location {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = Vec::new();
        for (key, v) in [
            ("file", &self.file),
            ("scenario", &self.scenario),
            ("node", &self.node),
            ("field", &self.field),
        ] {
            if let Some(v) = v {
                entries.push((key.to_owned(), Value::Str(v.clone())));
            }
        }
        Value::Map(entries)
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("code".to_owned(), Value::Str(self.code.to_owned())),
            ("name".to_owned(), Value::Str(self.name.to_owned())),
            ("severity".to_owned(), self.severity.to_value()),
            ("location".to_owned(), self.location.to_value()),
            ("message".to_owned(), Value::Str(self.message.clone())),
        ];
        if let Some(help) = &self.help {
            entries.push(("help".to_owned(), Value::Str(help.clone())));
        }
        Value::Map(entries)
    }
}

impl Diagnostic {
    /// Attach a help suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Render in the `severity[code] location: message` human form, with the
    /// help suggestion indented below.
    pub fn render(&self) -> String {
        let mut s = format!("{}[{}]", self.severity, self.code);
        if !self.location.is_empty() {
            s.push_str(&format!(" {}", self.location));
        }
        s.push_str(&format!(": {}", self.message));
        if let Some(help) = &self.help {
            s.push_str(&format!("\n  help: {help}"));
        }
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(
            [Severity::Warning, Severity::Info].iter().max(),
            Some(&Severity::Warning)
        );
    }

    #[test]
    fn location_renders_set_parts_only() {
        let loc = Location::scenario("s").with_node("n1").with_field("lambda");
        assert_eq!(loc.to_string(), "scenario `s`: node `n1`: lambda");
        assert!(Location::default().is_empty());
        assert!(!loc.is_empty());
    }

    #[test]
    fn diagnostic_renders_help_indented() {
        let d = Diagnostic {
            code: "E005",
            name: "unstable-queue",
            severity: Severity::Error,
            location: Location::scenario("s"),
            message: "rho = 1.2".into(),
            help: Some("lower lambda".into()),
        }
        .with_help("lower lambda");
        let text = d.render();
        assert!(text.starts_with("error[E005] scenario `s`: rho = 1.2"));
        assert!(text.contains("\n  help: lower lambda"));
    }
}
