//! Scenario-level passes: schema and capability checks, queue stability on
//! the forwarding-inflated arrival rate, radio airtime saturation and sweep
//! hygiene — everything decidable from the scenario file alone, before any
//! net is built or event fired.

use wsnem_core::BackendRegistry;
use wsnem_scenario::{Scenario, SweepAxis, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
use wsnem_stats::Sample;

use crate::diag::{Diagnostic, Location, Severity};
use crate::lints;

/// Offered load at which [`lints::HIGH_RHO`] starts firing: the queue is
/// still stable, but near-saturated M/G/1 queues mix slowly enough that
/// finite-horizon estimates turn noisy.
pub const HIGH_RHO_THRESHOLD: f64 = 0.95;

/// Run every scenario-level pass. The result is ordered deterministically:
/// schema and capability findings first, then stability, radio and sweep
/// findings, then the catch-all.
pub fn run(s: &Scenario, registry: &BackendRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    schema_pass(s, registry, &mut out);
    stability_pass(s, &mut out);
    radio_pass(s, &mut out);
    sweep_pass(s, &mut out);
    catch_all_pass(s, registry, &mut out);
    out
}

/// Schema version, backend registration and capability checks.
fn schema_pass(s: &Scenario, registry: &BackendRegistry, out: &mut Vec<Diagnostic>) {
    let loc = Location::scenario(&s.name);
    if s.schema_version < MIN_SCHEMA_VERSION || s.schema_version > SCHEMA_VERSION {
        out.push(
            lints::SCHEMA_VERSION
                .at(
                    loc.clone().with_field("schema_version"),
                    format!(
                        "schema version {} is outside the supported range {}..={}",
                        s.schema_version, MIN_SCHEMA_VERSION, SCHEMA_VERSION
                    ),
                )
                .with_help(format!(
                    "files written against schema {SCHEMA_VERSION} or older load; \
                     regenerate the file with this build's `wsnem export`"
                )),
        );
    }
    if s.backends.is_empty() {
        out.push(lints::INVALID_FIELD.at(
            loc.clone().with_field("backends"),
            "at least one backend is required",
        ));
    }
    for b in &s.backends {
        if registry.get(*b).is_none() {
            out.push(
                lints::UNKNOWN_BACKEND
                    .at(
                        loc.clone().with_field("backends"),
                        format!("backend `{b}` is not registered"),
                    )
                    .with_help(format!(
                        "registered backends: {}",
                        registry
                            .ids()
                            .iter()
                            .map(|id| id.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
            );
        }
    }
    if let Some(service) = &s.service {
        if !service.is_exponential() {
            for b in &s.backends {
                let caps = registry.capabilities_of(*b);
                if caps.is_some_and(|c| !c.supports_service_dist) {
                    out.push(
                        lints::CAPABILITY_MISMATCH
                            .at(
                                loc.clone().with_field("service"),
                                format!(
                                    "backend `{b}` does not support the non-exponential \
                                     service distribution `{}`",
                                    service.label()
                                ),
                            )
                            .with_help(
                                "restrict `backends` to solvers whose capabilities \
                                 advertise service distributions (mg1, petri-net, des), \
                                 or drop the `service` section",
                            ),
                    );
                }
            }
        }
    }
    if let Some(w) = &s.workload {
        if !w.is_poisson() {
            let assuming: Vec<String> = s
                .backends
                .iter()
                .filter(|b| {
                    registry
                        .capabilities_of(**b)
                        .is_some_and(|c| c.assumes_poisson)
                })
                .map(|b| b.to_string())
                .collect();
            if !assuming.is_empty() {
                out.push(lints::WORKLOAD_APPROXIMATION.at(
                    loc.with_field("workload"),
                    format!(
                        "non-Poisson workload is evaluated by backend(s) that assume \
                         Poisson arrivals ({}); the agreement report quantifies the \
                         distortion",
                        assuming.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Mean service time E[S] in seconds: the declared service distribution at
/// rate `mu`, or the paper's exponential default.
fn mean_service_s(s: &Scenario) -> f64 {
    s.service
        .as_ref()
        .map(|sv| sv.to_dist(s.cpu.mu).mean())
        .unwrap_or(1.0 / s.cpu.mu)
}

/// Emit [`lints::UNSTABLE_QUEUE`] / [`lints::HIGH_RHO`] for one effective
/// arrival rate.
fn check_rho(lambda_eff: f64, mean_s: f64, loc: Location, out: &mut Vec<Diagnostic>) {
    let rho = lambda_eff * mean_s;
    if !rho.is_finite() || rho <= 0.0 {
        return; // nonsensical rates are the catch-all's problem
    }
    if rho >= 1.0 {
        out.push(
            lints::UNSTABLE_QUEUE
                .at(
                    loc,
                    format!(
                        "offered load rho = {lambda_eff:.4} jobs/s x {mean_s:.4} s = \
                         {rho:.3} >= 1: the queue grows without bound"
                    ),
                )
                .with_help(format!(
                    "keep the effective arrival rate below {:.4} jobs/s, or shorten \
                     the mean service time",
                    1.0 / mean_s
                )),
        );
    } else if rho >= HIGH_RHO_THRESHOLD {
        out.push(lints::HIGH_RHO.at(
            loc,
            format!(
                "offered load rho = {rho:.3} is within {:.0}% of saturation: \
                 estimates at this load need long horizons to settle",
                100.0 * (1.0 - HIGH_RHO_THRESHOLD)
            ),
        ));
    }
}

/// Queue stability: base point, every λ-sweep value, and every network node
/// at its forwarding-inflated arrival rate.
fn stability_pass(s: &Scenario, out: &mut Vec<Diagnostic>) {
    let mean_s = mean_service_s(s);
    if !mean_s.is_finite() || mean_s <= 0.0 {
        return;
    }
    let loc = Location::scenario(&s.name);
    check_rho(
        s.cpu.lambda,
        mean_s,
        loc.clone().with_field("cpu.lambda"),
        out,
    );
    if let Some(sweep) = &s.sweep {
        if sweep.axis == SweepAxis::Lambda {
            for (i, &v) in sweep.values.iter().enumerate() {
                check_rho(
                    v,
                    mean_s,
                    loc.clone().with_field(format!("sweep.values[{i}]")),
                    out,
                );
            }
        }
    }
    if let Some(network) = &s.network {
        for (node, fwd) in network.nodes.iter().zip(forwarded_rates(s)) {
            if fwd > 0.0 {
                check_rho(
                    node.event_rate + fwd,
                    mean_s,
                    loc.clone()
                        .with_node(&node.name)
                        .with_field(format!("event_rate + {fwd:.3} pkt/s forwarded")),
                    out,
                );
            } else {
                check_rho(
                    node.event_rate,
                    mean_s,
                    loc.clone().with_node(&node.name).with_field("event_rate"),
                    out,
                );
            }
        }
    }
}

/// Per-node sink-ward forwarding load (pkt/s), zeros when the network (or
/// its routing) cannot be built — those failures belong to the catch-all.
fn forwarded_rates(s: &Scenario) -> Vec<f64> {
    let Some(network) = &s.network else {
        return Vec::new();
    };
    let zeros = vec![0.0; network.nodes.len()];
    let (Ok(profile), Ok(battery)) = (s.profile.build(), s.battery.build()) else {
        return zeros;
    };
    network
        .build_network(s.cpu, &profile, &battery)
        .ok()
        .and_then(|n| n.forwarded_rates().ok())
        .unwrap_or(zeros)
}

/// Radio airtime saturation: a node whose packet airtime alone fills its
/// schedule cannot also listen, back off, or sleep.
fn radio_pass(s: &Scenario, out: &mut Vec<Diagnostic>) {
    let Some(network) = &s.network else {
        return;
    };
    let forwarded = forwarded_rates(s);
    for (i, node) in network.nodes.iter().enumerate() {
        let Ok(radio) = network.radio_spec_for(i).lower() else {
            continue; // the catch-all reports unlooweable radio specs
        };
        let fwd = forwarded.get(i).copied().unwrap_or(0.0);
        let tx_pps = node.event_rate * node.tx_per_event + fwd;
        let rx_pps = node.rx_rate + fwd;
        if !(tx_pps >= 0.0 && rx_pps >= 0.0) {
            continue;
        }
        let airtime = tx_pps * radio.tx_airtime_s + rx_pps * radio.rx_airtime_s;
        if airtime >= 1.0 {
            out.push(
                lints::RADIO_SATURATION
                    .at(
                        Location::scenario(&s.name)
                            .with_node(&node.name)
                            .with_field("radio"),
                        format!(
                            "packet airtime fills {:.0}% of wall-clock time \
                             ({tx_pps:.2} tx pkt/s x {:.4} s + {rx_pps:.2} rx pkt/s x \
                             {:.4} s): the MAC cannot carry this traffic",
                            100.0 * airtime,
                            radio.tx_airtime_s,
                            radio.rx_airtime_s
                        ),
                    )
                    .with_help(
                        "lower the node's traffic, shorten packet airtime, or pick a \
                         faster MAC preset",
                    ),
            );
        }
    }
}

/// Sweep hygiene: duplicate values re-simulate a point for nothing.
fn sweep_pass(s: &Scenario, out: &mut Vec<Diagnostic>) {
    let Some(sweep) = &s.sweep else {
        return;
    };
    let mut dupes: Vec<String> = Vec::new();
    for (i, v) in sweep.values.iter().enumerate() {
        if sweep.values[..i].contains(v) && !dupes.iter().any(|d| d == &v.to_string()) {
            dupes.push(v.to_string());
        }
    }
    if !dupes.is_empty() {
        out.push(
            lints::DEGENERATE_SWEEP
                .at(
                    Location::scenario(&s.name).with_field("sweep.values"),
                    format!(
                        "sweep axis `{}` repeats value(s) {}: duplicate points cost \
                         simulation time and add nothing",
                        sweep.axis.label(),
                        dupes.join(", ")
                    ),
                )
                .with_help("deduplicate `sweep.values`"),
        );
    }
}

/// Safety net: whatever full schema validation rejects that no granular pass
/// classified becomes a generic [`lints::INVALID_FIELD`] — `check` is never
/// *less* strict than `validate`.
fn catch_all_pass(s: &Scenario, registry: &BackendRegistry, out: &mut Vec<Diagnostic>) {
    if out.iter().any(|d| d.severity == Severity::Error) {
        return;
    }
    if let Err(e) = s.validate_with(registry) {
        out.push(lints::INVALID_FIELD.at(Location::scenario(&s.name), e.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnem_scenario::builtin;

    fn registry() -> &'static BackendRegistry {
        wsnem_scenario::global_registry()
    }

    #[test]
    fn builtins_raise_no_errors_or_warnings() {
        for s in builtin::all() {
            let diags = run(&s, registry());
            let bad: Vec<&Diagnostic> = diags
                .iter()
                .filter(|d| d.severity >= Severity::Warning)
                .collect();
            assert!(bad.is_empty(), "{}: {bad:?}", s.name);
        }
    }

    #[test]
    fn unstable_lambda_fires_e005() {
        let mut s = builtin::paper_defaults();
        s.cpu.lambda = 12.0; // mu = 10 => rho = 1.2
        let diags = run(&s, registry());
        assert!(
            diags.iter().any(|d| d.code == "E005"),
            "expected E005, got {diags:?}"
        );
        // The catch-all must NOT duplicate it as E004: a granular error
        // already explains the failure.
        assert!(diags.iter().all(|d| d.code != "E004"), "{diags:?}");
    }

    #[test]
    fn unstable_lambda_sweep_value_fires_e005_with_index() {
        let mut s = builtin::paper_defaults();
        s.sweep = Some(wsnem_scenario::SweepSpec {
            axis: SweepAxis::Lambda,
            values: vec![0.5, 11.0],
        });
        let diags = run(&s, registry());
        let hit = diags
            .iter()
            .find(|d| d.code == "E005")
            .expect("sweep value 11.0 is past mu = 10");
        assert_eq!(hit.location.field.as_deref(), Some("sweep.values[1]"));
    }

    #[test]
    fn near_saturation_warns_w001() {
        let mut s = builtin::paper_defaults();
        s.cpu.lambda = 9.6; // rho = 0.96
        let diags = run(&s, registry());
        assert!(diags.iter().any(|d| d.code == "W001"), "{diags:?}");
        assert!(diags.iter().all(|d| d.severity < Severity::Error));
    }

    #[test]
    fn deterministic_service_shifts_the_stability_bound() {
        let mut s = builtin::paper_defaults();
        // Deterministic service at 1/mu = 0.1 s: lambda = 9.99 is stable
        // (rho = 0.999) but over the HIGH_RHO threshold.
        s.service = Some(wsnem_core::ServiceDist::Deterministic);
        s.backends = vec![wsnem_core::BackendId::Des];
        s.cpu.lambda = 9.99;
        let diags = run(&s, registry());
        assert!(diags.iter().any(|d| d.code == "W001"), "{diags:?}");
        assert!(diags.iter().all(|d| d.code != "E005"), "{diags:?}");
    }

    #[test]
    fn capability_mismatch_fires_e006() {
        let mut s = builtin::paper_defaults();
        s.service = Some(wsnem_core::ServiceDist::Deterministic);
        // paper-defaults includes analytic backends that cannot take it.
        let diags = run(&s, registry());
        assert!(diags.iter().any(|d| d.code == "E006"), "{diags:?}");
    }

    #[test]
    fn duplicate_sweep_values_warn_w003() {
        let mut s = builtin::paper_defaults();
        s.sweep = Some(wsnem_scenario::SweepSpec {
            axis: SweepAxis::PowerDownThreshold,
            values: vec![0.25, 0.5, 0.25],
        });
        let diags = run(&s, registry());
        assert!(diags.iter().any(|d| d.code == "W003"), "{diags:?}");
    }

    #[test]
    fn future_schema_version_fires_e002() {
        let mut s = builtin::paper_defaults();
        s.schema_version = SCHEMA_VERSION + 1;
        let diags = run(&s, registry());
        assert!(diags.iter().any(|d| d.code == "E002"), "{diags:?}");
    }

    #[test]
    fn unvalidatable_leftovers_become_e004() {
        let mut s = builtin::paper_defaults();
        s.cpu.horizon = -1.0;
        let diags = run(&s, registry());
        assert!(diags.iter().any(|d| d.code == "E004"), "{diags:?}");
    }

    #[test]
    fn forwarding_load_destabilizes_a_relay() {
        // A chain whose sink-adjacent relay forwards everyone's traffic:
        // its effective lambda = own + forwarded exceeds mu.
        let mut s = builtin::find("chain-3hop").expect("builtin exists");
        for node in &mut s.network.as_mut().expect("has network").nodes {
            node.event_rate = 4.0; // relay carries 4 + 2 x 4 = 12 > mu = 10
        }
        let diags = run(&s, registry());
        let hit = diags
            .iter()
            .find(|d| d.code == "E005")
            .expect("relay must destabilize");
        assert!(hit.location.node.is_some(), "{hit:?}");
    }
}
