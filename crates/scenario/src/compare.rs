//! Cross-backend comparison matrices — the paper's Tables 4/5 as a report
//! section, generalized to any scenario.
//!
//! [`compare_scenario`] runs **every registered backend** (not just the ones
//! the scenario requests) over the scenario's base parameters and each sweep
//! point, then reports per-state occupancy deltas against the ground-truth
//! reference in percentage points, together with the measured wall-clock
//! cost per backend — the paper's §6 accuracy-vs-cost trade-off, computed
//! instead of asserted. Backends that cannot evaluate a point (an
//! unregistered capability, out-of-domain parameters) contribute an error
//! cell rather than aborting the matrix.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use wsnem_core::{backend, BackendId, BackendRegistry, CpuModelParams};
use wsnem_energy::StateFractions;

use crate::error::ScenarioError;
use crate::runner::scenario_eval_options;
use crate::schema::Scenario;

/// Per-state occupancy difference against the reference, in percentage
/// points (the paper's Table 4 unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateDeltaPp {
    /// Δ standby (pp).
    pub standby: f64,
    /// Δ powerup (pp).
    pub powerup: f64,
    /// Δ idle (pp).
    pub idle: f64,
    /// Δ active (pp).
    pub active: f64,
}

impl StateDeltaPp {
    fn between(b: &StateFractions, reference: &StateFractions) -> Self {
        Self {
            standby: 100.0 * (b.standby - reference.standby),
            powerup: 100.0 * (b.powerup - reference.powerup),
            idle: 100.0 * (b.idle - reference.idle),
            active: 100.0 * (b.active - reference.active),
        }
    }

    /// Largest absolute per-state delta (pp).
    pub fn max_abs(&self) -> f64 {
        self.standby
            .abs()
            .max(self.powerup.abs())
            .max(self.idle.abs())
            .max(self.active.abs())
    }
}

/// One backend's verdict at one comparison point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareCell {
    /// The backend.
    pub backend: BackendId,
    /// Steady-state occupancy, when the backend evaluated the point.
    pub fractions: Option<StateFractions>,
    /// Per-state delta vs the reference backend (pp); `None` for the
    /// reference itself or when either side failed.
    pub delta_pp: Option<StateDeltaPp>,
    /// Mean absolute per-state delta (pp) — the Table 4 summary metric.
    pub mean_abs_delta_pp: Option<f64>,
    /// Wall-clock evaluation cost (s) — the §6 trade-off, measured.
    pub eval_seconds: f64,
    /// Why the backend could not evaluate this point, when it could not.
    pub error: Option<String>,
}

/// One row of the matrix: a parameter point with every backend's cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareRow {
    /// Swept value at this point (`None` for the scenario's base point).
    pub value: Option<f64>,
    /// Per-backend cells, in registry order.
    pub cells: Vec<CompareCell>,
}

/// The full cross-backend comparison matrix for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareReport {
    /// Scenario name.
    pub scenario: String,
    /// Sweep axis label (`None` when the scenario declares no sweep — the
    /// matrix then has the single base row).
    pub axis: Option<String>,
    /// Backends compared, in registry order.
    pub backends: Vec<BackendId>,
    /// The reference backend deltas are measured against (the registered
    /// ground truth, by capability).
    pub reference: BackendId,
    /// One row per evaluated point.
    pub rows: Vec<CompareRow>,
    /// Largest mean-absolute delta (pp) over all non-reference cells —
    /// the matrix's single pass/fail number.
    pub max_mean_abs_delta_pp: f64,
    /// Total wall-clock seconds per backend, summed over rows (§6).
    pub backend_seconds: Vec<BackendSeconds>,
    /// Total matrix wall-clock time (s).
    pub elapsed_seconds: f64,
}

/// Wall-clock total for one backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendSeconds {
    /// The backend.
    pub backend: BackendId,
    /// Summed evaluation time (s).
    pub seconds: f64,
}

/// Utilization below which tiered comparison (`wsnem compare --tiered`)
/// skips the simulation backends: at low ρ the analytic backends are exact
/// and the simulators only add wall-clock cost and Monte-Carlo noise. At
/// and above this threshold, heavy-traffic effects are what simulation is
/// for, so every backend runs.
pub const TIERED_RHO_THRESHOLD: f64 = 0.9;

/// Compare every backend of the built-in registry on a scenario.
pub fn compare_scenario(scenario: &Scenario) -> Result<CompareReport, ScenarioError> {
    compare_scenario_with(scenario, backend::global(), None)
}

/// Compare every backend of an explicit registry, pinning the inner
/// replication thread count (`None` = available parallelism).
pub fn compare_scenario_with(
    scenario: &Scenario,
    registry: &BackendRegistry,
    inner_threads: Option<usize>,
) -> Result<CompareReport, ScenarioError> {
    compare_impl(scenario, registry, inner_threads, None)
}

/// [`compare_scenario_with`] with capability-driven tiering: points whose
/// utilization ρ = λ·E\[S\] stays below [`TIERED_RHO_THRESHOLD`] run only the
/// analytic backends; the simulators get a "skipped by tiering" cell at
/// zero cost. Points at or above the threshold compare every backend, as
/// the untiered matrix does.
pub fn compare_scenario_tiered(
    scenario: &Scenario,
    registry: &BackendRegistry,
    inner_threads: Option<usize>,
) -> Result<CompareReport, ScenarioError> {
    compare_impl(
        scenario,
        registry,
        inner_threads,
        Some(TIERED_RHO_THRESHOLD),
    )
}

fn compare_impl(
    scenario: &Scenario,
    registry: &BackendRegistry,
    inner_threads: Option<usize>,
    tier: Option<f64>,
) -> Result<CompareReport, ScenarioError> {
    scenario.validate_with(registry)?;
    if registry.is_empty() {
        return Err(ScenarioError::Invalid(
            "comparison needs at least one registered backend".into(),
        ));
    }
    let started = Instant::now();
    let backends = registry.ids();
    let reference = registry
        .capabilities()
        .iter()
        .find(|c| c.ground_truth)
        .map(|c| c.id)
        .unwrap_or(backends[0]);

    let mut points: Vec<(Option<f64>, CpuModelParams)> = vec![(None, scenario.cpu)];
    if let Some(sweep) = &scenario.sweep {
        for &v in &sweep.values {
            points.push((Some(v), sweep.axis.apply(scenario.cpu, v)));
        }
    }

    let mut rows = Vec::with_capacity(points.len());
    let mut backend_seconds: Vec<BackendSeconds> = backends
        .iter()
        .map(|&backend| BackendSeconds {
            backend,
            seconds: 0.0,
        })
        .collect();
    let mut max_mean_abs_delta_pp = 0.0f64;

    for (value, params) in points {
        let opts = scenario_eval_options(scenario, params, inner_threads);
        // Tiering: below the ρ threshold only analytic backends run — the
        // closed forms are exact there, and the simulators would just burn
        // wall-clock confirming them.
        let skip_simulated = tier.and_then(|threshold| {
            use wsnem_stats::dist::Sample;
            let service = scenario.service.unwrap_or_default();
            let rho = params.lambda * service.to_dist(params.mu).mean();
            (rho < threshold).then_some((rho, threshold))
        });
        let evals: Vec<(BackendId, Result<wsnem_core::ModelEvaluation, String>, f64)> = backends
            .iter()
            .map(|&id| {
                let analytic = registry
                    .capabilities_of(id)
                    .map(|c| c.analytic)
                    .unwrap_or(false);
                if let Some((rho, threshold)) = skip_simulated.filter(|_| !analytic) {
                    let msg = format!("skipped by tiering (rho = {rho:.3} < {threshold})");
                    return (id, Err(msg), 0.0);
                }
                let t0 = Instant::now();
                let result = registry
                    .solve(id, &params, &opts)
                    .map_err(|e| e.to_string());
                let spent = result
                    .as_ref()
                    .map(|e| e.eval_seconds)
                    .unwrap_or_else(|_| t0.elapsed().as_secs_f64());
                (id, result, spent)
            })
            .collect();
        let reference_fractions = evals
            .iter()
            .find(|(id, _, _)| *id == reference)
            .and_then(|(_, r, _)| r.as_ref().ok())
            .map(|e| e.fractions);

        let mut cells = Vec::with_capacity(evals.len());
        for ((id, result, spent), totals) in evals.iter().zip(&mut backend_seconds) {
            totals.seconds += spent;
            let cell = match result {
                Err(msg) => CompareCell {
                    backend: *id,
                    fractions: None,
                    delta_pp: None,
                    mean_abs_delta_pp: None,
                    eval_seconds: *spent,
                    error: Some(msg.clone()),
                },
                Ok(e) => {
                    let deltas = reference_fractions.filter(|_| *id != reference).map(|r| {
                        (
                            StateDeltaPp::between(&e.fractions, &r),
                            e.fractions.mean_abs_delta_pct(&r),
                        )
                    });
                    if let Some((_, mean)) = &deltas {
                        max_mean_abs_delta_pp = max_mean_abs_delta_pp.max(*mean);
                    }
                    CompareCell {
                        backend: *id,
                        fractions: Some(e.fractions),
                        delta_pp: deltas.map(|(d, _)| d),
                        mean_abs_delta_pp: deltas.map(|(_, m)| m),
                        eval_seconds: *spent,
                        error: None,
                    }
                }
            };
            cells.push(cell);
        }
        rows.push(CompareRow { value, cells });
    }

    Ok(CompareReport {
        scenario: scenario.name.clone(),
        axis: scenario.sweep.as_ref().map(|s| s.axis.label().to_owned()),
        backends,
        reference,
        rows,
        max_mean_abs_delta_pp,
        backend_seconds,
        elapsed_seconds: started.elapsed().as_secs_f64(),
    })
}

impl CompareReport {
    /// CSV header matching [`CompareReport::csv_rows`].
    pub const CSV_HEADER: &'static str = "scenario,axis,value,backend,reference,\
        standby_frac,powerup_frac,idle_frac,active_frac,\
        d_standby_pp,d_powerup_pp,d_idle_pp,d_active_pp,mean_abs_delta_pp,\
        eval_seconds,backend_total_seconds,error";

    /// Flatten the matrix into CSV rows (one per backend per point).
    pub fn csv_rows(&self) -> Vec<String> {
        use crate::report::{csv_field, opt};
        let axis = self.axis.as_deref().unwrap_or("");
        let mut out = Vec::new();
        for row in &self.rows {
            for c in &row.cells {
                let f = c.fractions;
                let d = c.delta_pp;
                // The per-backend wall-clock total used to live only in the
                // JSON/summary outputs; the CSV dropped it. Every cell now
                // carries its backend's matrix-wide total alongside the
                // per-point cost.
                let backend_total = self
                    .backend_seconds
                    .iter()
                    .find(|b| b.backend == c.backend)
                    .map(|b| b.seconds)
                    .unwrap_or(0.0);
                out.push(format!(
                    "{scenario},{axis},{value},{backend},{reference},{},{},{},{},{},{},{},{},{},{},{backend_total},{error}",
                    opt(f.map(|x| x.standby)),
                    opt(f.map(|x| x.powerup)),
                    opt(f.map(|x| x.idle)),
                    opt(f.map(|x| x.active)),
                    opt(d.map(|x| x.standby)),
                    opt(d.map(|x| x.powerup)),
                    opt(d.map(|x| x.idle)),
                    opt(d.map(|x| x.active)),
                    opt(c.mean_abs_delta_pp),
                    c.eval_seconds,
                    scenario = csv_field(&self.scenario),
                    value = opt(row.value),
                    backend = c.backend,
                    reference = self.reference,
                    error = csv_field(c.error.as_deref().unwrap_or_default()),
                ));
            }
        }
        out
    }

    /// Human-readable matrix in the shape of the paper's Tables 4/5: one
    /// block per point, one line per backend with state percentages, the
    /// per-state deltas in pp and the measured evaluation cost.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "comparison matrix: {} ({} backends, reference {})\n",
            self.scenario,
            self.backends.len(),
            self.reference
        );
        for row in &self.rows {
            match (self.axis.as_deref(), row.value) {
                (Some(axis), Some(v)) => out.push_str(&format!("  {axis} = {v}\n")),
                _ => out.push_str("  base parameters\n"),
            }
            out.push_str(&format!(
                "    {:<12} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>10}\n",
                "backend",
                "stby%",
                "pwrup%",
                "idle%",
                "activ%",
                "Δstby",
                "Δpwrup",
                "Δidle",
                "Δactiv",
                "meanΔpp",
                "eval s",
            ));
            for c in &row.cells {
                match (&c.fractions, &c.error) {
                    (Some(f), _) => {
                        let d = c.delta_pp;
                        let dd = |get: fn(&StateDeltaPp) -> f64| {
                            d.map(|x| format!("{:+9.3}", get(&x)))
                                .unwrap_or_else(|| format!("{:>9}", "-"))
                        };
                        out.push_str(&format!(
                            "    {:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {} {} {} {} | {:>8} {:>10.4}\n",
                            c.backend.to_string(),
                            100.0 * f.standby,
                            100.0 * f.powerup,
                            100.0 * f.idle,
                            100.0 * f.active,
                            dd(|x| x.standby),
                            dd(|x| x.powerup),
                            dd(|x| x.idle),
                            dd(|x| x.active),
                            c.mean_abs_delta_pp
                                .map(|m| format!("{m:8.3}"))
                                .unwrap_or_else(|| format!("{:>8}", "ref")),
                            c.eval_seconds,
                        ));
                    }
                    (None, err) => out.push_str(&format!(
                        "    {:<12} unavailable: {}\n",
                        c.backend.to_string(),
                        err.as_deref().unwrap_or("unknown error")
                    )),
                }
            }
        }
        out.push_str(&format!(
            "  max mean |Δ| = {:.3} pp over {} point(s)\n",
            self.max_mean_abs_delta_pp,
            self.rows.len()
        ));
        let costs: Vec<String> = self
            .backend_seconds
            .iter()
            .map(|b| format!("{} {:.4}s", b.backend, b.seconds))
            .collect();
        out.push_str(&format!(
            "  wall-clock per backend: {}  (total {:.3}s)\n",
            costs.join(", "),
            self.elapsed_seconds
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{SweepAxis, SweepSpec};

    fn quick_scenario() -> Scenario {
        let mut s = Scenario::paper_template("compare-quick");
        s.cpu = s
            .cpu
            .with_replications(4)
            .with_horizon(1500.0)
            .with_warmup(100.0);
        s
    }

    #[test]
    fn matrix_covers_every_registered_backend() {
        let report = compare_scenario(&quick_scenario()).unwrap();
        assert_eq!(report.backends, BackendId::ALL.to_vec());
        assert_eq!(report.reference, BackendId::Des);
        assert_eq!(report.rows.len(), 1, "no sweep → base row only");
        assert!(report.axis.is_none());
        let row = &report.rows[0];
        assert_eq!(row.cells.len(), 5);
        for c in &row.cells {
            assert!(c.error.is_none(), "{:?}", c);
            assert!(c.fractions.unwrap().is_normalized(1e-6));
            if c.backend == report.reference {
                assert!(c.delta_pp.is_none());
            } else {
                assert!(c.mean_abs_delta_pp.unwrap() < 2.0, "{c:?}");
                assert!(c.delta_pp.unwrap().max_abs() < 2.0, "{c:?}");
            }
        }
        // Paper Table 4 at D = 1 ms: everyone agrees.
        assert!(report.max_mean_abs_delta_pp < 2.0);
        // §6: analytic backends are orders of magnitude cheaper.
        let secs = |id: BackendId| {
            report
                .backend_seconds
                .iter()
                .find(|b| b.backend == id)
                .unwrap()
                .seconds
        };
        assert!(secs(BackendId::Markov) < secs(BackendId::Des));
        let s = report.summary();
        for id in BackendId::ALL {
            assert!(s.contains(id.name()), "{s}");
        }
        assert!(s.contains("max mean |Δ|"), "{s}");
    }

    #[test]
    fn sweep_points_become_rows() {
        let mut s = quick_scenario();
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::PowerDownThreshold,
            values: vec![0.2, 0.8],
        });
        let report = compare_scenario(&s).unwrap();
        assert_eq!(report.axis.as_deref(), Some("power_down_threshold"));
        assert_eq!(report.rows.len(), 3, "base + 2 sweep points");
        assert_eq!(report.rows[1].value, Some(0.2));
        assert_eq!(report.rows[2].value, Some(0.8));
        let csv = report.csv_rows();
        assert_eq!(csv.len(), 3 * 5);
        let cols = CompareReport::CSV_HEADER.split(',').count();
        for row in &csv {
            assert_eq!(row.split(',').count(), cols, "{row}");
        }
        assert!(csv[5].contains(",power_down_threshold,0.2,"), "{}", csv[5]);
    }

    #[test]
    fn tiered_compare_skips_simulators_below_rho_threshold() {
        // The paper defaults sit far below the 0.9 tier — only the
        // analytic backends run at the base point. A λ-sweep point pushed
        // to ρ = 0.95 crosses the tier and runs everything again.
        let mut s = quick_scenario();
        let mu = s.cpu.mu;
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::Lambda,
            values: vec![0.95 * mu],
        });
        let registry = backend::global();
        let report = compare_scenario_tiered(&s, registry, None).unwrap();
        assert_eq!(report.rows.len(), 2);
        for c in &report.rows[0].cells {
            let analytic = registry.capabilities_of(c.backend).unwrap().analytic;
            if analytic {
                assert!(c.error.is_none(), "{c:?}");
                assert!(c.fractions.is_some(), "{c:?}");
            } else {
                let err = c.error.as_deref().unwrap();
                assert!(err.contains("skipped by tiering"), "{err}");
                assert!(err.contains("< 0.9"), "{err}");
                assert_eq!(c.eval_seconds, 0.0);
                assert!(c.fractions.is_none());
                assert!(c.delta_pp.is_none());
            }
        }
        // Above the threshold every backend evaluates, including the
        // simulators.
        for c in &report.rows[1].cells {
            assert!(c.error.is_none(), "{c:?}");
            assert!(c.fractions.is_some(), "{c:?}");
        }
        // The untiered matrix is untouched by the new path: all cells run.
        let full = compare_scenario_with(&s, registry, None).unwrap();
        for row in &full.rows {
            for c in &row.cells {
                assert!(c.error.is_none(), "{c:?}");
            }
        }
    }

    #[test]
    fn incapable_backends_become_error_cells_not_failures() {
        // Erlang-phase cannot expand a zero Power Up Delay — its cell must
        // carry the error while the rest of the matrix survives.
        let mut s = quick_scenario();
        s.cpu = s.cpu.with_power_up_delay(0.0);
        let report = compare_scenario(&s).unwrap();
        let row = &report.rows[0];
        let phase = row
            .cells
            .iter()
            .find(|c| c.backend == BackendId::ErlangPhase)
            .unwrap();
        assert!(phase.error.is_some(), "{phase:?}");
        assert!(phase.fractions.is_none());
        for c in row
            .cells
            .iter()
            .filter(|c| c.backend != BackendId::ErlangPhase)
        {
            assert!(c.error.is_none(), "{c:?}");
        }
        assert!(report.summary().contains("unavailable"));
    }

    #[test]
    fn non_exponential_service_blanks_analytic_cells() {
        let mut s = quick_scenario();
        s.service = Some(wsnem_core::ServiceDist::Deterministic);
        s.backends = vec![BackendId::PetriNet, BackendId::Des];
        let report = compare_scenario(&s).unwrap();
        let row = &report.rows[0];
        for c in &row.cells {
            let caps = wsnem_core::backend::global()
                .capabilities_of(c.backend)
                .unwrap();
            if caps.supports_service_dist {
                assert!(c.error.is_none(), "{c:?}");
            } else {
                let err = c.error.as_deref().unwrap();
                assert!(err.contains("does not support"), "{err}");
            }
        }
        // The capable pair still agrees on fixed-length jobs.
        assert!(report.max_mean_abs_delta_pp < 2.0, "{report:?}");
    }

    #[test]
    fn csv_carries_per_backend_wall_clock() {
        let report = compare_scenario(&quick_scenario()).unwrap();
        let header: Vec<&str> = CompareReport::CSV_HEADER.split(',').collect();
        let backend_col = header
            .iter()
            .position(|&h| h == "backend_total_seconds")
            .expect("header names the backend wall-clock column");
        let cols = header.len();
        for row in report.csv_rows() {
            let fields: Vec<&str> = row.split(',').collect();
            assert_eq!(fields.len(), cols, "{row}");
            // Round-trip: the CSV cell parses back to the report's
            // per-backend total, exactly as formatted.
            let backend: BackendId = fields[3].parse().unwrap();
            let expected = report
                .backend_seconds
                .iter()
                .find(|b| b.backend == backend)
                .unwrap()
                .seconds;
            let parsed: f64 = fields[backend_col]
                .parse()
                .unwrap_or_else(|e| panic!("unparseable wall clock in {row}: {e}"));
            assert_eq!(parsed.to_string(), expected.to_string(), "{row}");
            assert!(parsed > 0.0, "{row}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut s = quick_scenario();
        s.cpu = s.cpu.with_replications(2).with_horizon(300.0);
        let report = compare_scenario(&s).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: CompareReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
