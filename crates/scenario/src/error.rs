//! Error type of the scenario subsystem.

use std::fmt;

/// Errors from loading, validating or running scenarios.
#[derive(Debug)]
pub enum ScenarioError {
    /// The file's schema version is newer than this binary understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this binary supports.
        supported: u32,
    },
    /// A structurally valid file described an invalid scenario.
    Invalid(String),
    /// The file could not be parsed.
    Parse(String),
    /// Filesystem error.
    Io(String),
    /// No built-in scenario with the given name.
    UnknownBuiltin(String),
    /// A model backend failed to evaluate.
    Eval(wsnem_core::CoreError),
    /// The DES kernel rejected a workload/parameter combination.
    Des(wsnem_des::DesError),
    /// The scenario exceeded the per-scenario wall-clock watchdog
    /// (`--scenario-timeout`, or the distributed lease watchdog).
    Timeout {
        /// Watchdog budget that was exceeded, in seconds.
        seconds: f64,
    },
    /// A distributed worker reported a failure; the typed error cannot be
    /// reconstructed across the wire, so the rendered message is carried.
    Remote(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnsupportedVersion { found, supported } => write!(
                f,
                "scenario schema version {found} is not supported (this build understands {supported})"
            ),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Parse(msg) => write!(f, "parse error: {msg}"),
            ScenarioError::Io(msg) => write!(f, "io error: {msg}"),
            ScenarioError::UnknownBuiltin(name) => {
                write!(f, "no built-in scenario named `{name}` (see `wsnem list`)")
            }
            ScenarioError::Eval(e) => write!(f, "model evaluation failed: {e}"),
            ScenarioError::Des(e) => write!(f, "simulation failed: {e}"),
            ScenarioError::Timeout { seconds } => write!(
                f,
                "scenario exceeded the {seconds} s wall-clock watchdog and was marked failed"
            ),
            ScenarioError::Remote(msg) => write!(f, "remote worker: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<wsnem_core::CoreError> for ScenarioError {
    fn from(e: wsnem_core::CoreError) -> Self {
        ScenarioError::Eval(e)
    }
}

impl From<wsnem_des::DesError> for ScenarioError {
    fn from(e: wsnem_des::DesError) -> Self {
        ScenarioError::Des(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ScenarioError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        assert!(ScenarioError::UnknownBuiltin("x".into())
            .to_string()
            .contains("wsnem list"));
        assert!(ScenarioError::Invalid("bad".into())
            .to_string()
            .contains("bad"));
    }
}
