//! Structured, serializable scenario reports.
//!
//! Everything the runner measures lands in a [`ScenarioReport`]: one
//! [`BackendReport`] per model (state occupancy, per-state energy breakdown,
//! mean power, battery lifetime), pairwise [`AgreementCheck`]s against the
//! reference backend, and optional sweep/network sections. Reports serialize
//! to JSON (`wsnem run --format json`) and flatten to CSV rows.

use serde::{Deserialize, Serialize};
use wsnem_energy::{Battery, EnergyBreakdown, PowerProfile, StateFractions};

use wsnem_core::BackendId;

/// Render an optional number as a CSV cell (empty when absent, never NaN).
pub(crate) fn opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x}")).unwrap_or_default()
}

/// RFC 4180 quoting for user-controlled fields (scenario and node names may
/// contain commas, quotes or newlines). Shared by every CSV emitter in the
/// crate so the escaping rules cannot diverge.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Per-state energy breakdown in serializable form (mirrors
/// [`EnergyBreakdown`] with named fields).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy spent in Standby (mJ).
    pub standby_mj: f64,
    /// Energy spent powering up (mJ).
    pub powerup_mj: f64,
    /// Energy spent in Idle (mJ).
    pub idle_mj: f64,
    /// Energy spent in Active (mJ).
    pub active_mj: f64,
    /// Total energy (mJ).
    pub total_mj: f64,
    /// Horizon the breakdown integrates over (s).
    pub time_s: f64,
}

impl EnergyReport {
    /// Convert from the energy crate's breakdown.
    pub fn from_breakdown(e: &EnergyBreakdown) -> Self {
        Self {
            standby_mj: e.per_state_mj[0],
            powerup_mj: e.per_state_mj[1],
            idle_mj: e.per_state_mj[2],
            active_mj: e.per_state_mj[3],
            total_mj: e.total_mj,
            time_s: e.time_s,
        }
    }

    /// Total in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_mj / 1000.0
    }
}

/// One backend's verdict on the scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendReport {
    /// Which backend produced this.
    pub backend: BackendId,
    /// Steady-state occupancy of the four power states.
    pub fractions: StateFractions,
    /// Mean power draw (mW) under the scenario profile.
    pub mean_power_mw: f64,
    /// Per-state energy over the report horizon.
    pub energy: EnergyReport,
    /// Expected battery lifetime (days) at the mean power draw.
    pub battery_lifetime_days: f64,
    /// Mean jobs in system, when the backend provides it.
    pub mean_jobs: Option<f64>,
    /// Mean job latency (s), when the backend provides it.
    pub mean_latency: Option<f64>,
    /// Wall-clock evaluation cost (s) — the paper's §6 trade-off, measured.
    pub eval_seconds: f64,
    /// True when this backend models Poisson arrivals although the scenario
    /// declares a different workload (its numbers are then the *Poisson
    /// approximation*, and the agreement section quantifies the distortion).
    pub poisson_approximation: bool,
}

impl BackendReport {
    /// Assemble a report from occupancy fractions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        backend: BackendId,
        fractions: StateFractions,
        profile: &PowerProfile,
        battery: &Battery,
        energy_horizon_s: f64,
        mean_jobs: Option<f64>,
        mean_latency: Option<f64>,
        eval_seconds: f64,
        poisson_approximation: bool,
    ) -> Self {
        let energy = wsnem_energy::energy_eq25(&fractions, profile, energy_horizon_s);
        let mean_power_mw = profile.mean_power_mw(&fractions);
        Self {
            backend,
            fractions,
            mean_power_mw,
            energy: EnergyReport::from_breakdown(&energy),
            battery_lifetime_days: battery.lifetime_days(mean_power_mw),
            mean_jobs,
            mean_latency,
            eval_seconds,
            poisson_approximation,
        }
    }
}

/// Pairwise agreement between a backend and the reference backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementCheck {
    /// The backend under comparison.
    pub backend: BackendId,
    /// The reference backend (DES when present, else the first).
    pub reference: BackendId,
    /// Mean absolute state-occupancy delta in percentage points — the
    /// paper's Table 4 metric.
    pub mean_abs_delta_pp: f64,
    /// Relative energy difference (fraction of the reference total).
    pub energy_rel_error: f64,
    /// Verdict against the scenario's tolerance (`None` when the scenario
    /// sets no tolerance).
    pub within_tolerance: Option<bool>,
}

/// One evaluated sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPointReport {
    /// The swept value.
    pub value: f64,
    /// Per-backend results at this value.
    pub backends: Vec<BackendReport>,
}

/// Sweep section of a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Axis label (e.g. `power_down_threshold`).
    pub axis: String,
    /// Evaluated points, in scenario order.
    pub points: Vec<SweepPointReport>,
    /// Swept value minimizing the first backend's mean power.
    pub best_value: f64,
    /// Mean power (mW) at `best_value`.
    pub best_power_mw: f64,
}

/// One node's line in a network report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node name.
    pub name: String,
    /// CPU occupancy.
    pub cpu_fractions: StateFractions,
    /// Mean CPU power (mW).
    pub cpu_power_mw: f64,
    /// Mean radio power (mW).
    pub radio_power_mw: f64,
    /// Total mean power (mW).
    pub total_power_mw: f64,
    /// Expected battery lifetime (days).
    pub lifetime_days: f64,
    /// Hops to the sink (1 = sink-adjacent; always 1 in a star).
    pub hop_depth: u32,
    /// Forwarded traffic this node relays for its subtree (packets/s; 0 in
    /// a star).
    pub forwarded_rx_pkts_s: f64,
    /// Label of the duty-cycle MAC this node runs (schema v4): a preset
    /// name, `lpl` / `b-mac` / `x-mac`, or `custom`.
    pub radio_spec: String,
    /// The radio's scheduled duty cycle (listen window / wake-up period).
    pub radio_duty_cycle: f64,
}

/// Network section of a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Backend that evaluated the per-node CPU models.
    pub backend: BackendId,
    /// Topology shape label (`star`, `chain`, `tree`, `mesh`).
    pub topology: String,
    /// Per-node results.
    pub nodes: Vec<NodeReport>,
    /// Days until the first node dies.
    pub first_death_days: f64,
    /// Mean node lifetime (days).
    pub mean_lifetime_days: f64,
    /// Name of the shortest-lived node.
    pub bottleneck: String,
    /// Deepest hop count in the network (1 for a star).
    pub max_hop_depth: u32,
    /// Name of the shortest-lived forwarding node — the routing hot spot
    /// (empty when nothing forwards, e.g. a star). MAC-sensitive: per-node
    /// radio overrides can move it off the most-loaded relay.
    pub bottleneck_relay: String,
    /// Total packet rate entering the sink (packets/s).
    pub sink_arrival_pkts_s: f64,
    /// Label of the network-level duty-cycle MAC (`cc2420-class` when the
    /// scenario names none); individual nodes may override it.
    pub radio: String,
}

/// One hop-depth percentile of an [`AggregateNetworkReport`]
/// (nearest-rank: the depth of the node at rank ⌈p/100 · n⌉).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopDepthPercentile {
    /// The percentile (e.g. 50, 90, 99, 100).
    pub percentile: f64,
    /// Hop depth at that rank.
    pub hop_depth: u32,
}

/// One equal-width bin of an aggregate report's lifetime histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeHistogramBin {
    /// Inclusive lower edge (days).
    pub lo_days: f64,
    /// Exclusive upper edge (days); the global maximum lands in the last
    /// bin.
    pub hi_days: f64,
    /// Nodes whose lifetime falls in `[lo, hi)`.
    pub count: u64,
}

/// One named node of an aggregate report's worst-lifetime cohort — the K
/// shortest-lived nodes, the only ones a large-net report names
/// individually.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortNodeReport {
    /// Node name.
    pub name: String,
    /// Hops to the sink.
    pub hop_depth: u32,
    /// Forwarded traffic this node relays (packets/s).
    pub forwarded_rx_pkts_s: f64,
    /// Effective CPU utilization ρ = (event rate + forwarded) · E\[S\].
    pub rho: f64,
    /// Total mean power (mW).
    pub total_power_mw: f64,
    /// Expected battery lifetime (days).
    pub lifetime_days: f64,
}

/// Network section of a report in aggregate form — what large (or
/// template-declared) networks emit instead of per-node rows. A 10^6-node
/// report is a few hundred bytes: streaming statistics (histogram,
/// percentiles), network totals and one small named cohort around the
/// bottleneck, computed on the structure-of-arrays fast path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateNetworkReport {
    /// Backend that evaluated the per-node CPU models.
    pub backend: BackendId,
    /// Topology shape label (`star`, `chain`, `tree`).
    pub topology: String,
    /// Number of nodes analyzed.
    pub node_count: u64,
    /// Days until the first node dies.
    pub first_death_days: f64,
    /// Mean node lifetime (days).
    pub mean_lifetime_days: f64,
    /// Summed mean power over all nodes (mW).
    pub total_power_mw: f64,
    /// Total packet rate entering the sink (packets/s).
    pub sink_arrival_pkts_s: f64,
    /// Deepest hop count in the network.
    pub max_hop_depth: u32,
    /// Name of the shortest-lived node.
    pub bottleneck: String,
    /// Name of the shortest-lived forwarding node (empty when nothing
    /// forwards, e.g. a star).
    pub bottleneck_relay: String,
    /// Hop-depth distribution at fixed percentiles.
    pub hop_depth_percentiles: Vec<HopDepthPercentile>,
    /// Equal-width lifetime histogram over `[min, max]` days.
    pub lifetime_histogram: Vec<LifetimeHistogramBin>,
    /// The K shortest-lived nodes, ascending lifetime — the bottleneck
    /// cohort (`worst_lifetime_cohort[0]` names the same node as
    /// `bottleneck`).
    pub worst_lifetime_cohort: Vec<CohortNodeReport>,
    /// Nodes whose effective utilization reaches `near_unstable_rho`.
    pub near_unstable_count: u64,
    /// The utilization threshold `near_unstable_count` counted against.
    pub near_unstable_rho: f64,
    /// Label of the network-level duty-cycle MAC.
    pub radio: String,
}

/// Wall-clock split of one scenario run by phase (`wsnem profile` feeds on
/// this). The phases are disjoint; small bookkeeping between them means the
/// sum can fall slightly below [`ScenarioReport::elapsed_seconds`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseSeconds {
    /// Evaluating the requested backends at the base parameters.
    pub base_seconds: f64,
    /// Walking the sweep (0 when the scenario declares none).
    pub sweep_seconds: f64,
    /// Analyzing the network section (0 when the scenario declares none).
    pub network_seconds: f64,
}

/// The complete result of running one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Schema version the scenario was defined against.
    pub schema_version: u32,
    /// Per-backend results at the scenario's base parameters.
    pub backends: Vec<BackendReport>,
    /// Cross-backend agreement, relative to the reference backend.
    pub agreement: Vec<AgreementCheck>,
    /// Sweep section, when the scenario declares one.
    pub sweep: Option<SweepReport>,
    /// Network section, when the scenario declares one.
    pub network: Option<NetworkReport>,
    /// Aggregate network section — replaces `network` when the network is
    /// template-declared or larger than the runner's aggregate threshold.
    pub network_aggregate: Option<AggregateNetworkReport>,
    /// Wall-clock split of the run by phase.
    pub phase_seconds: PhaseSeconds,
    /// Total wall-clock time to run the scenario (s).
    pub elapsed_seconds: f64,
}

/// Per-node lines a [`ScenarioReport::summary`] prints before truncating
/// with an "… and K more" footer (`--limit` overrides it).
pub const DEFAULT_SUMMARY_NODE_LIMIT: usize = 50;

impl ScenarioReport {
    /// CSV header matching [`ScenarioReport::csv_rows`]. The seven trailing
    /// columns describe network-node rows (one per node when the scenario
    /// declares a network) and stay empty on backend rows.
    pub const CSV_HEADER: &'static str = "scenario,backend,sweep_axis,sweep_value,\
        standby_frac,powerup_frac,idle_frac,active_frac,mean_power_mw,\
        standby_mj,powerup_mj,idle_mj,active_mj,total_mj,energy_horizon_s,\
        battery_lifetime_days,mean_jobs,mean_latency_s,eval_seconds,poisson_approximation,\
        node,hop_depth,forwarded_rx_pkts_s,is_bottleneck_relay,\
        radio_spec,radio_duty_cycle,radio_power_mw,scenario_elapsed_seconds";

    /// Flatten the report into CSV rows: one per backend evaluation
    /// (including sweep points), then one per network node when the
    /// scenario declares a network.
    pub fn csv_rows(&self) -> Vec<String> {
        fn row(scenario: &str, axis: &str, value: &str, b: &BackendReport, elapsed: f64) -> String {
            let f = b.fractions;
            let scenario = csv_field(scenario);
            format!(
                "{scenario},{backend},{axis},{value},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},,,,,,,,{elapsed}",
                f.standby,
                f.powerup,
                f.idle,
                f.active,
                b.mean_power_mw,
                b.energy.standby_mj,
                b.energy.powerup_mj,
                b.energy.idle_mj,
                b.energy.active_mj,
                b.energy.total_mj,
                b.energy.time_s,
                b.battery_lifetime_days,
                opt(b.mean_jobs),
                opt(b.mean_latency),
                b.eval_seconds,
                b.poisson_approximation,
                backend = b.backend,
            )
        }
        fn node_row(scenario: &str, net: &NetworkReport, n: &NodeReport, elapsed: f64) -> String {
            let f = n.cpu_fractions;
            let scenario = csv_field(scenario);
            let name = csv_field(&n.name);
            // Energy/jobs/latency/eval columns do not apply to node rows
            // and stay empty; mean_power_mw is the node's total (CPU+radio).
            let radio_spec = csv_field(&n.radio_spec);
            format!(
                "{scenario},{backend},,,{},{},{},{},{},,,,,,,{},,,,,{name},{},{},{},{radio_spec},{},{},{elapsed}",
                f.standby,
                f.powerup,
                f.idle,
                f.active,
                n.total_power_mw,
                n.lifetime_days,
                n.hop_depth,
                n.forwarded_rx_pkts_s,
                !net.bottleneck_relay.is_empty() && n.name == net.bottleneck_relay,
                n.radio_duty_cycle,
                n.radio_power_mw,
                backend = net.backend,
            )
        }
        let mut rows = Vec::new();
        let elapsed = self.elapsed_seconds;
        for b in &self.backends {
            rows.push(row(&self.scenario, "", "", b, elapsed));
        }
        if let Some(sweep) = &self.sweep {
            for p in &sweep.points {
                for b in &p.backends {
                    rows.push(row(
                        &self.scenario,
                        &sweep.axis,
                        &p.value.to_string(),
                        b,
                        elapsed,
                    ));
                }
            }
        }
        if let Some(net) = &self.network {
            for n in &net.nodes {
                rows.push(node_row(&self.scenario, net, n, elapsed));
            }
        }
        rows
    }

    /// A short human-readable summary block, printing at most
    /// [`DEFAULT_SUMMARY_NODE_LIMIT`] per-node lines.
    pub fn summary(&self) -> String {
        self.summary_with_node_limit(DEFAULT_SUMMARY_NODE_LIMIT)
    }

    /// A short human-readable summary block. At most `node_limit` per-node
    /// lines are printed; the rest collapse into an "… and K more" footer.
    pub fn summary_with_node_limit(&self, node_limit: usize) -> String {
        let mut out = format!("scenario: {}\n", self.scenario);
        for b in &self.backends {
            out.push_str(&format!(
                "  {:<12} {}  power {:>8.3} mW  energy {:>10.2} mJ / {:.0} s  lifetime {:>8.2} d{}\n",
                b.backend.to_string(),
                b.fractions,
                b.mean_power_mw,
                b.energy.total_mj,
                b.energy.time_s,
                b.battery_lifetime_days,
                if b.poisson_approximation {
                    "  [Poisson approximation]"
                } else {
                    ""
                },
            ));
        }
        for a in &self.agreement {
            out.push_str(&format!(
                "  Δ({} vs {}) = {:.3} pp, energy {:+.2}%{}\n",
                a.backend,
                a.reference,
                a.mean_abs_delta_pp,
                100.0 * a.energy_rel_error,
                match a.within_tolerance {
                    Some(true) => "  [ok]",
                    Some(false) => "  [EXCEEDS TOLERANCE]",
                    None => "",
                }
            ));
        }
        if let Some(s) = &self.sweep {
            out.push_str(&format!(
                "  sweep over {}: best {} = {} at {:.3} mW ({} points)\n",
                s.axis,
                s.axis,
                s.best_value,
                s.best_power_mw,
                s.points.len()
            ));
        }
        if let Some(n) = &self.network {
            out.push_str(&format!(
                "  network[{}, {}, radio {}]: {} nodes, depth {}, sink inflow {:.3} pkt/s, \
                 first death {:.1} d (bottleneck `{}`), mean {:.1} d\n",
                n.topology,
                n.backend,
                n.radio,
                n.nodes.len(),
                n.max_hop_depth,
                n.sink_arrival_pkts_s,
                n.first_death_days,
                n.bottleneck,
                n.mean_lifetime_days
            ));
            if !n.bottleneck_relay.is_empty() {
                out.push_str(&format!(
                    "    bottleneck relay `{}` (shortest-lived forwarder)\n",
                    n.bottleneck_relay
                ));
            }
            for node in n.nodes.iter().take(node_limit) {
                out.push_str(&format!(
                    "    {:<12} hop {}  fwd {:>7.3} pkt/s  radio {} (duty {:>5.1}%, \
                     {:>7.3} mW)  power {:>8.3} mW  lifetime {:>8.2} d\n",
                    node.name,
                    node.hop_depth,
                    node.forwarded_rx_pkts_s,
                    node.radio_spec,
                    100.0 * node.radio_duty_cycle,
                    node.radio_power_mw,
                    node.total_power_mw,
                    node.lifetime_days
                ));
            }
            if n.nodes.len() > node_limit {
                out.push_str(&format!(
                    "    … and {} more node(s); use --limit to show more\n",
                    n.nodes.len() - node_limit
                ));
            }
        }
        if let Some(a) = &self.network_aggregate {
            out.push_str(&format!(
                "  network[{}, {}, radio {}]: {} nodes (aggregate), depth {}, \
                 sink inflow {:.3} pkt/s, first death {:.1} d (bottleneck `{}`), \
                 mean {:.1} d, total {:.3} W\n",
                a.topology,
                a.backend,
                a.radio,
                a.node_count,
                a.max_hop_depth,
                a.sink_arrival_pkts_s,
                a.first_death_days,
                a.bottleneck,
                a.mean_lifetime_days,
                a.total_power_mw / 1000.0
            ));
            if !a.bottleneck_relay.is_empty() {
                out.push_str(&format!(
                    "    bottleneck relay `{}` (shortest-lived forwarder)\n",
                    a.bottleneck_relay
                ));
            }
            if !a.hop_depth_percentiles.is_empty() {
                let pct: Vec<String> = a
                    .hop_depth_percentiles
                    .iter()
                    .map(|p| format!("p{:.0} {}", p.percentile, p.hop_depth))
                    .collect();
                out.push_str(&format!("    hop depth: {}\n", pct.join("  ")));
            }
            if !a.lifetime_histogram.is_empty() {
                let peak = a
                    .lifetime_histogram
                    .iter()
                    .map(|b| b.count)
                    .max()
                    .unwrap_or(0)
                    .max(1);
                out.push_str("    lifetime histogram (days):\n");
                for bin in &a.lifetime_histogram {
                    let bar = "#".repeat(((bin.count * 40) / peak) as usize);
                    out.push_str(&format!(
                        "      [{:>9.2}, {:>9.2})  {:>9}  {bar}\n",
                        bin.lo_days, bin.hi_days, bin.count
                    ));
                }
            }
            if !a.worst_lifetime_cohort.is_empty() {
                out.push_str(&format!(
                    "    worst {} node(s) by lifetime:\n",
                    a.worst_lifetime_cohort.len()
                ));
                for c in &a.worst_lifetime_cohort {
                    out.push_str(&format!(
                        "      {:<12} hop {}  fwd {:>9.3} pkt/s  rho {:>5.3}  \
                         power {:>8.3} mW  lifetime {:>8.2} d\n",
                        c.name,
                        c.hop_depth,
                        c.forwarded_rx_pkts_s,
                        c.rho,
                        c.total_power_mw,
                        c.lifetime_days
                    ));
                }
            }
            out.push_str(&format!(
                "    near-unstable nodes (rho >= {:.2}): {}\n",
                a.near_unstable_rho, a.near_unstable_count
            ));
        }
        out.push_str(&format!(
            "  elapsed: {:.3} s (base {:.3}, sweep {:.3}, network {:.3})\n",
            self.elapsed_seconds,
            self.phase_seconds.base_seconds,
            self.phase_seconds.sweep_seconds,
            self.phase_seconds.network_seconds
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_backend_report() -> BackendReport {
        BackendReport::new(
            BackendId::Markov,
            StateFractions::new(0.4, 0.0, 0.5, 0.1),
            &PowerProfile::pxa271(),
            &Battery::two_aa(),
            1000.0,
            Some(0.2),
            None,
            0.001,
            false,
        )
    }

    #[test]
    fn backend_report_derives_power_energy_lifetime() {
        let r = sample_backend_report();
        // 0.4×17 + 0.5×88 + 0.1×193 = 70.1 mW.
        assert!((r.mean_power_mw - 70.1).abs() < 1e-9);
        assert!((r.energy.total_mj - 70.1 * 1000.0).abs() < 1e-6);
        assert!((r.energy.total_joules() - 70.1).abs() < 1e-9);
        assert!(r.battery_lifetime_days > 0.0);
        assert_eq!(r.mean_jobs, Some(0.2));
        assert_eq!(r.mean_latency, None);
    }

    #[test]
    fn csv_rows_cover_backends_and_sweep_points() {
        let b = sample_backend_report();
        let report = ScenarioReport {
            scenario: "s".into(),
            schema_version: 1,
            backends: vec![b.clone()],
            agreement: vec![],
            sweep: Some(SweepReport {
                axis: "lambda".into(),
                points: vec![SweepPointReport {
                    value: 0.5,
                    backends: vec![b.clone(), b.clone()],
                }],
                best_value: 0.5,
                best_power_mw: 70.1,
            }),
            network: None,
            network_aggregate: None,
            phase_seconds: PhaseSeconds::default(),
            elapsed_seconds: 0.0,
        };
        let rows = report.csv_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("s,Markov,,,"));
        assert!(rows[1].contains(",lambda,0.5,"));
        assert_eq!(
            ScenarioReport::CSV_HEADER.split(',').count(),
            rows[0].split(',').count()
        );
        // Empty optional columns stay empty, not NaN.
        assert!(rows[0].contains(",,") || !rows[0].contains("NaN"));
    }

    #[test]
    fn csv_quotes_user_controlled_scenario_names() {
        let b = sample_backend_report();
        let report = ScenarioReport {
            scenario: "thr=0.5, D=10 \"final\"".into(),
            schema_version: 1,
            backends: vec![b],
            agreement: vec![],
            sweep: None,
            network: None,
            network_aggregate: None,
            phase_seconds: PhaseSeconds::default(),
            elapsed_seconds: 0.0,
        };
        let row = &report.csv_rows()[0];
        assert!(
            row.starts_with("\"thr=0.5, D=10 \"\"final\"\"\",Markov,"),
            "{row}"
        );
        // Quoted field keeps the column count aligned with the header: the
        // only unquoted commas are the 19 separators.
        let outside_quotes = {
            let mut inside = false;
            row.chars()
                .filter(|&c| {
                    if c == '"' {
                        inside = !inside;
                    }
                    c == ',' && !inside
                })
                .count()
        };
        assert_eq!(
            outside_quotes + 1,
            ScenarioReport::CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn summary_mentions_everything() {
        let b = sample_backend_report();
        let report = ScenarioReport {
            scenario: "paper".into(),
            schema_version: 1,
            backends: vec![b],
            agreement: vec![AgreementCheck {
                backend: BackendId::Markov,
                reference: BackendId::Des,
                mean_abs_delta_pp: 0.4,
                energy_rel_error: -0.01,
                within_tolerance: Some(true),
            }],
            sweep: None,
            network: Some(NetworkReport {
                backend: BackendId::Markov,
                topology: "chain".into(),
                nodes: vec![NodeReport {
                    name: "hot".into(),
                    cpu_fractions: StateFractions::new(0.4, 0.0, 0.5, 0.1),
                    cpu_power_mw: 70.1,
                    radio_power_mw: 3.0,
                    total_power_mw: 73.1,
                    lifetime_days: 12.0,
                    hop_depth: 1,
                    forwarded_rx_pkts_s: 1.5,
                    radio_spec: "x-mac".into(),
                    radio_duty_cycle: 0.01,
                }],
                first_death_days: 12.0,
                mean_lifetime_days: 14.0,
                bottleneck: "hot".into(),
                max_hop_depth: 3,
                bottleneck_relay: "hot".into(),
                sink_arrival_pkts_s: 2.0,
                radio: "b-mac".into(),
            }),
            network_aggregate: None,
            phase_seconds: PhaseSeconds::default(),
            elapsed_seconds: 0.25,
        };
        let s = report.summary();
        assert!(s.contains("paper"));
        assert!(s.contains("Markov"));
        assert!(s.contains("[ok]"));
        assert!(s.contains("bottleneck `hot`"));
        assert!(s.contains("network[chain, Markov, radio b-mac]"));
        assert!(s.contains("depth 3"));
        assert!(s.contains("bottleneck relay `hot`"));
        assert!(s.contains("hop 1"));
        assert!(s.contains("radio x-mac (duty   1.0%"), "{s}");
    }

    #[test]
    fn csv_network_rows_carry_topology_columns() {
        let b = sample_backend_report();
        let node = |name: &str, depth: u32, fwd: f64| NodeReport {
            name: name.into(),
            cpu_fractions: StateFractions::new(0.4, 0.0, 0.5, 0.1),
            cpu_power_mw: 70.1,
            radio_power_mw: 3.0,
            total_power_mw: 73.1,
            lifetime_days: 9.5,
            hop_depth: depth,
            forwarded_rx_pkts_s: fwd,
            radio_spec: "cc2420-class".into(),
            radio_duty_cycle: 0.05,
        };
        let report = ScenarioReport {
            scenario: "tree".into(),
            schema_version: 2,
            backends: vec![b],
            agreement: vec![],
            sweep: None,
            network: Some(NetworkReport {
                backend: BackendId::Markov,
                topology: "tree".into(),
                nodes: vec![node("root", 1, 1.0), node("leaf, deep", 2, 0.0)],
                first_death_days: 9.5,
                mean_lifetime_days: 9.5,
                bottleneck: "root".into(),
                max_hop_depth: 2,
                bottleneck_relay: "root".into(),
                sink_arrival_pkts_s: 1.5,
                radio: "cc2420-class".into(),
            }),
            network_aggregate: None,
            phase_seconds: PhaseSeconds::default(),
            elapsed_seconds: 0.0,
        };
        let rows = report.csv_rows();
        assert_eq!(rows.len(), 3, "{rows:?}");
        let header_cols = ScenarioReport::CSV_HEADER.split(',').count();
        // Backend rows leave the node columns empty.
        assert_eq!(rows[0].split(',').count(), header_cols, "{}", rows[0]);
        assert!(rows[0].ends_with(",,,,,,,0"), "{}", rows[0]);
        // Node rows fill them: name, hop depth, forwarded load, bottleneck,
        // then the radio spec / duty cycle / radio power.
        assert!(
            rows[1].contains(",root,1,1,true,cc2420-class,0.05,3"),
            "{}",
            rows[1]
        );
        assert_eq!(rows[1].split(',').count(), header_cols, "{}", rows[1]);
        // RFC 4180: a node name with a comma stays one quoted field.
        assert!(rows[2].contains("\"leaf, deep\",2,0,false"), "{}", rows[2]);
    }

    fn node(name: &str) -> NodeReport {
        NodeReport {
            name: name.into(),
            cpu_fractions: StateFractions::new(0.4, 0.0, 0.5, 0.1),
            cpu_power_mw: 70.1,
            radio_power_mw: 3.0,
            total_power_mw: 73.1,
            lifetime_days: 9.5,
            hop_depth: 1,
            forwarded_rx_pkts_s: 0.0,
            radio_spec: "cc2420-class".into(),
            radio_duty_cycle: 0.05,
        }
    }

    fn network_of(n: usize) -> NetworkReport {
        NetworkReport {
            backend: BackendId::Markov,
            topology: "star".into(),
            nodes: (1..=n).map(|i| node(&format!("n{i}"))).collect(),
            first_death_days: 9.5,
            mean_lifetime_days: 9.5,
            bottleneck: "n1".into(),
            max_hop_depth: 1,
            bottleneck_relay: String::new(),
            sink_arrival_pkts_s: 1.0,
            radio: "cc2420-class".into(),
        }
    }

    #[test]
    fn summary_truncates_node_lines_at_limit() {
        let report = ScenarioReport {
            scenario: "big".into(),
            schema_version: 5,
            backends: vec![sample_backend_report()],
            agreement: vec![],
            sweep: None,
            network: Some(network_of(5)),
            network_aggregate: None,
            phase_seconds: PhaseSeconds::default(),
            elapsed_seconds: 0.0,
        };
        let s = report.summary_with_node_limit(2);
        assert!(s.contains("n1 "), "{s}");
        assert!(s.contains("n2 "), "{s}");
        assert!(!s.contains("n3 "), "{s}");
        assert!(s.contains("… and 3 more node(s)"), "{s}");
        // Default limit (50) keeps all five lines and drops the footer.
        let full = report.summary();
        assert!(full.contains("n5 "), "{full}");
        assert!(!full.contains("more node(s)"), "{full}");
    }

    #[test]
    fn summary_renders_aggregate_block() {
        let report = ScenarioReport {
            scenario: "mega".into(),
            schema_version: 5,
            backends: vec![sample_backend_report()],
            agreement: vec![],
            sweep: None,
            network: None,
            network_aggregate: Some(AggregateNetworkReport {
                backend: BackendId::Mg1,
                topology: "tree".into(),
                node_count: 1_000_000,
                first_death_days: 1.9,
                mean_lifetime_days: 250.0,
                total_power_mw: 17_000_000.0,
                sink_arrival_pkts_s: 5.0,
                max_hop_depth: 11,
                bottleneck: "n1".into(),
                bottleneck_relay: "n1".into(),
                hop_depth_percentiles: vec![
                    HopDepthPercentile {
                        percentile: 50.0,
                        hop_depth: 9,
                    },
                    HopDepthPercentile {
                        percentile: 100.0,
                        hop_depth: 11,
                    },
                ],
                lifetime_histogram: vec![
                    LifetimeHistogramBin {
                        lo_days: 1.9,
                        hi_days: 150.0,
                        count: 3,
                    },
                    LifetimeHistogramBin {
                        lo_days: 150.0,
                        hi_days: 300.0,
                        count: 999_997,
                    },
                ],
                worst_lifetime_cohort: vec![CohortNodeReport {
                    name: "n1".into(),
                    hop_depth: 1,
                    forwarded_rx_pkts_s: 5.0,
                    rho: 0.5,
                    total_power_mw: 90.0,
                    lifetime_days: 1.9,
                }],
                near_unstable_count: 0,
                near_unstable_rho: 0.9,
                radio: "cc2420-class".into(),
            }),
            phase_seconds: PhaseSeconds::default(),
            elapsed_seconds: 0.35,
        };
        let s = report.summary();
        assert!(s.contains("network[tree, Mg1, radio cc2420-class]"), "{s}");
        assert!(s.contains("1000000 nodes (aggregate)"), "{s}");
        assert!(s.contains("bottleneck `n1`"), "{s}");
        assert!(s.contains("bottleneck relay `n1`"), "{s}");
        assert!(s.contains("p50 9"), "{s}");
        assert!(s.contains("p100 11"), "{s}");
        assert!(s.contains("lifetime histogram"), "{s}");
        assert!(s.contains("999997"), "{s}");
        assert!(s.contains("worst 1 node(s)"), "{s}");
        assert!(s.contains("near-unstable nodes (rho >= 0.90): 0"), "{s}");
        // An aggregate network never emits per-node CSV rows: one backend
        // row only.
        assert_eq!(report.csv_rows().len(), 1);
    }
}
