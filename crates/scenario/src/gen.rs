//! Scenario fleet generation (`wsnem gen`).
//!
//! The paper's Table 4/5 methodology — and the large power-aware WSN
//! simulation campaigns it sits in — evaluate *families* of parameter
//! points, not single files. This module turns a base [`Scenario`] plus a
//! declarative [`GenSpec`] into N concrete scenario files: pick the fields
//! to vary ([`GenField`] — arrival rate, service mean, radio check
//! interval, topology fan-out, node count), give each a range, choose a
//! sampling [`GenMethod`] (full grid, seeded uniform random, or Latin
//! hypercube), and [`write_fleet`] emits one file per sample into a
//! directory together with a `manifest.json` recording the exact spec and
//! base scenario, so a fleet is reproducible from its manifest alone.
//!
//! Generated scenarios are named `<prefix>-0001`, `<prefix>-0002`, … with
//! the index zero-padded to the fleet size, so lexicographic file order is
//! sample order — the property the directory runner's stable merged output
//! relies on.
//!
//! ```
//! use wsnem_scenario::gen::{FieldSpec, GenField, GenMethod, GenSpec};
//! use wsnem_scenario::{builtin, gen};
//!
//! let spec = GenSpec {
//!     method: GenMethod::Grid,
//!     count: 0, // ignored for grids; the field points define the size
//!     seed: 42,
//!     prefix: "sweep".into(),
//!     fields: vec![FieldSpec {
//!         field: GenField::Lambda,
//!         min: 0.2,
//!         max: 1.0,
//!         points: Some(5),
//!     }],
//! };
//! let fleet = gen::generate(&builtin::paper_defaults(), &spec).unwrap();
//! assert_eq!(fleet.len(), 5);
//! assert_eq!(fleet[0].name, "sweep-1");
//! assert_eq!(fleet[0].cpu.lambda, 0.2);
//! assert_eq!(fleet[4].cpu.lambda, 1.0);
//! ```

use std::path::Path;

use serde::{Deserialize, Serialize};
use wsnem_stats::rng::{Rng64, Xoshiro256PlusPlus};
use wsnem_wsn::RadioSpec;

use crate::error::ScenarioError;
use crate::files::{self, FileFormat};
use crate::schema::{Scenario, TopologySpec, SCHEMA_VERSION};

/// File name of the fleet manifest `write_fleet` drops next to the
/// generated scenarios (and the directory runner skips).
pub const MANIFEST_FILE: &str = "manifest.json";

/// Ceiling on the number of scenarios one `generate` call may produce — a
/// fat-finger guard (`--field a=0:1:1000 --field b=0:1:1000` would other-
/// wise ask for a million-file grid without warning).
pub const MAX_FLEET_SIZE: usize = 100_000;

/// A scenario field the generator can sample over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenField {
    /// CPU arrival rate λ (jobs/s) — `cpu.lambda`.
    Lambda,
    /// Mean service time (s); the CPU's μ is set to its reciprocal.
    ServiceMean,
    /// Duty-cycle MAC check interval / wake-up period (s), applied to the
    /// network-level radio (requires a `network` section; the variant is
    /// preserved when the base already names an LPL/B-MAC/X-MAC radio,
    /// otherwise a B-MAC radio with a minimal full preamble is installed).
    RadioCheckInterval,
    /// Tree fan-out (children per parent); replaces the network topology
    /// with `Tree { fanout }` (requires a non-mesh `network` section).
    TopologyFanout,
    /// Network size; the node list is rebuilt to this many clones of the
    /// first node, named `n001`, `n002`, … (requires a non-mesh `network`
    /// section).
    NodeCount,
}

impl GenField {
    /// All fields, for listings and error messages.
    pub const ALL: [GenField; 5] = [
        GenField::Lambda,
        GenField::ServiceMean,
        GenField::RadioCheckInterval,
        GenField::TopologyFanout,
        GenField::NodeCount,
    ];

    /// The CLI spelling (`--field <name>=min:max`).
    pub fn name(self) -> &'static str {
        match self {
            GenField::Lambda => "lambda",
            GenField::ServiceMean => "service-mean",
            GenField::RadioCheckInterval => "radio-check-interval",
            GenField::TopologyFanout => "fanout",
            GenField::NodeCount => "node-count",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.name() == s)
    }

    /// Integer-valued fields have their samples rounded to the nearest
    /// integer (and floored at 1).
    pub fn is_integer(self) -> bool {
        matches!(self, GenField::TopologyFanout | GenField::NodeCount)
    }

    /// Apply a sampled value to a scenario.
    fn apply(self, s: &mut Scenario, value: f64) -> Result<(), ScenarioError> {
        let needs_network = |s: &Scenario| {
            s.network.clone().ok_or_else(|| {
                ScenarioError::Invalid(format!(
                    "gen: field `{}` requires a base scenario with a network section",
                    self.name()
                ))
            })
        };
        let reject_mesh = |net: &crate::schema::NetworkSpec| {
            if matches!(net.topology, Some(TopologySpec::Mesh { .. })) {
                return Err(ScenarioError::Invalid(format!(
                    "gen: field `{}` cannot rewrite a mesh topology \
                     (its static routes name specific nodes)",
                    self.name()
                )));
            }
            Ok(())
        };
        match self {
            GenField::Lambda => s.cpu = s.cpu.with_lambda(value),
            GenField::ServiceMean => {
                if !(value > 0.0) {
                    return Err(ScenarioError::Invalid(format!(
                        "gen: service-mean must be > 0, got {value}"
                    )));
                }
                s.cpu = s.cpu.with_mu(1.0 / value);
            }
            GenField::RadioCheckInterval => {
                let mut net = needs_network(s)?;
                // Keep the base MAC's variant and secondary timing where it
                // still validates; the check interval / wake-up period is
                // what this field sweeps.
                net.radio = Some(match net.radio.take() {
                    Some(RadioSpec::Lpl { listen_s, .. }) => RadioSpec::Lpl {
                        period_s: value,
                        listen_s: listen_s.min(value),
                    },
                    Some(RadioSpec::BMac { preamble_s, .. }) => RadioSpec::BMac {
                        check_interval_s: value,
                        // B-MAC requires preamble >= check interval.
                        preamble_s: preamble_s.max(value),
                    },
                    Some(RadioSpec::XMac {
                        strobe_s, ack_s, ..
                    }) => RadioSpec::XMac {
                        check_interval_s: value,
                        strobe_s,
                        ack_s,
                    },
                    // Presets/custom radios carry no check interval to
                    // rewrite: install the minimal valid B-MAC instead.
                    _ => RadioSpec::BMac {
                        check_interval_s: value,
                        preamble_s: value,
                    },
                });
                s.network = Some(net);
            }
            GenField::TopologyFanout => {
                let mut net = needs_network(s)?;
                reject_mesh(&net)?;
                net.topology = Some(TopologySpec::Tree {
                    fanout: (value as usize).max(1),
                });
                s.network = Some(net);
            }
            GenField::NodeCount => {
                let mut net = needs_network(s)?;
                reject_mesh(&net)?;
                let n = (value as usize).max(1);
                if let Some(t) = &mut net.template {
                    // Template networks scale by count alone — no per-node
                    // structs to clone.
                    t.count = n as u64;
                } else {
                    let proto = net.nodes[0].clone();
                    net.nodes = (1..=n)
                        .map(|i| {
                            let mut node = proto.clone();
                            node.name = format!("n{i:03}");
                            node
                        })
                        .collect();
                }
                s.network = Some(net);
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for GenField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One sampled axis: a field and its range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// The scenario field to vary.
    pub field: GenField,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
    /// Grid points along this axis (grid sampling only; default 3).
    pub points: Option<usize>,
}

impl FieldSpec {
    fn validate(&self) -> Result<(), ScenarioError> {
        if !self.min.is_finite() || !self.max.is_finite() || self.min > self.max {
            return Err(ScenarioError::Invalid(format!(
                "gen: field `{}` has an invalid range [{}, {}]",
                self.field, self.min, self.max
            )));
        }
        if self.points == Some(0) {
            return Err(ScenarioError::Invalid(format!(
                "gen: field `{}` asks for 0 grid points",
                self.field
            )));
        }
        Ok(())
    }

    /// Grid values along this axis: `points` evenly spaced samples over the
    /// inclusive range (a single point collapses to `min`).
    fn grid_values(&self) -> Vec<f64> {
        let points = self.points.unwrap_or(3);
        (0..points)
            .map(|i| {
                if points == 1 {
                    self.min
                } else {
                    self.min + (self.max - self.min) * i as f64 / (points - 1) as f64
                }
            })
            .collect()
    }
}

/// How samples are drawn over the declared fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenMethod {
    /// Full factorial grid: the Cartesian product of every field's
    /// `points` evenly spaced values (the fleet size is the product; the
    /// spec's `count` is ignored).
    Grid,
    /// `count` independent uniform samples per field, from the spec's seed.
    Random,
    /// Latin-hypercube sampling: `count` samples where each field's range
    /// is split into `count` equal strata and every stratum is hit exactly
    /// once (better marginal coverage than random at the same budget).
    LatinHypercube,
}

impl GenMethod {
    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            GenMethod::Grid => "grid",
            GenMethod::Random => "random",
            GenMethod::LatinHypercube => "lhs",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse_name(s: &str) -> Option<Self> {
        [Self::Grid, Self::Random, Self::LatinHypercube]
            .into_iter()
            .find(|m| m.name() == s)
    }
}

/// A complete generator specification — everything `generate` needs beyond
/// the base scenario, and exactly what the manifest records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenSpec {
    /// Sampling method.
    pub method: GenMethod,
    /// Sample count (random / Latin hypercube; a grid's size is the
    /// product of its per-field points).
    pub count: usize,
    /// RNG seed for the stochastic methods (a grid ignores it).
    pub seed: u64,
    /// Scenario/file name prefix (`<prefix>-0001`, …).
    pub prefix: String,
    /// The sampled fields (must be non-empty).
    pub fields: Vec<FieldSpec>,
}

impl GenSpec {
    fn validate(&self) -> Result<usize, ScenarioError> {
        if self.fields.is_empty() {
            return Err(ScenarioError::Invalid(
                "gen: at least one --field is required".into(),
            ));
        }
        for f in &self.fields {
            f.validate()?;
        }
        for (i, f) in self.fields.iter().enumerate() {
            if self.fields[..i].iter().any(|g| g.field == f.field) {
                return Err(ScenarioError::Invalid(format!(
                    "gen: field `{}` is declared twice",
                    f.field
                )));
            }
        }
        if self.prefix.is_empty() {
            return Err(ScenarioError::Invalid(
                "gen: prefix must be non-empty".into(),
            ));
        }
        let total = match self.method {
            GenMethod::Grid => self
                .fields
                .iter()
                .map(|f| f.points.unwrap_or(3))
                .try_fold(1usize, |acc, p| acc.checked_mul(p))
                .unwrap_or(usize::MAX),
            GenMethod::Random | GenMethod::LatinHypercube => self.count,
        };
        if total == 0 {
            return Err(ScenarioError::Invalid(
                "gen: the spec generates 0 scenarios (count must be >= 1)".into(),
            ));
        }
        if total > MAX_FLEET_SIZE {
            return Err(ScenarioError::Invalid(format!(
                "gen: the spec generates {total} scenarios, above the {MAX_FLEET_SIZE} cap"
            )));
        }
        Ok(total)
    }

    /// The sample matrix: one row per scenario, one column per field, in
    /// field declaration order. Deterministic in (spec, seed).
    fn samples(&self, total: usize) -> Vec<Vec<f64>> {
        match self.method {
            GenMethod::Grid => {
                let axes: Vec<Vec<f64>> = self.fields.iter().map(|f| f.grid_values()).collect();
                let mut rows = Vec::with_capacity(total);
                let mut idx = vec![0usize; axes.len()];
                loop {
                    rows.push(idx.iter().zip(&axes).map(|(&i, ax)| ax[i]).collect());
                    // Odometer increment, last field fastest.
                    let mut k = axes.len();
                    loop {
                        if k == 0 {
                            return rows;
                        }
                        k -= 1;
                        idx[k] += 1;
                        if idx[k] < axes[k].len() {
                            break;
                        }
                        idx[k] = 0;
                    }
                }
            }
            GenMethod::Random => {
                let mut rng = Xoshiro256PlusPlus::new(self.seed);
                (0..total)
                    .map(|_| {
                        self.fields
                            .iter()
                            .map(|f| f.min + (f.max - f.min) * rng.next_f64())
                            .collect()
                    })
                    .collect()
            }
            GenMethod::LatinHypercube => {
                let mut rng = Xoshiro256PlusPlus::new(self.seed);
                // Per field: a random permutation of the strata, plus a
                // uniform jitter inside each stratum.
                let columns: Vec<Vec<f64>> = self
                    .fields
                    .iter()
                    .map(|f| {
                        let mut strata: Vec<usize> = (0..total).collect();
                        // Fisher–Yates with the workspace RNG.
                        for i in (1..total).rev() {
                            let j = rng.next_bounded(i as u64 + 1) as usize;
                            strata.swap(i, j);
                        }
                        strata
                            .into_iter()
                            .map(|stratum| {
                                let u = (stratum as f64 + rng.next_f64()) / total as f64;
                                f.min + (f.max - f.min) * u
                            })
                            .collect()
                    })
                    .collect();
                (0..total)
                    .map(|row| columns.iter().map(|c| c[row]).collect())
                    .collect()
            }
        }
    }
}

/// The record `write_fleet` drops next to the generated files: the exact
/// spec and base scenario, so the fleet can be regenerated bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Tool that produced the fleet (`wsnem gen`).
    pub generator: String,
    /// Schema version the generated files were written against.
    pub schema_version: u32,
    /// The generator spec.
    pub spec: GenSpec,
    /// The base scenario every sample was applied to.
    pub base: Scenario,
    /// Generated file names, in sample order.
    pub files: Vec<String>,
}

/// Generate the fleet in memory: one validated scenario per sample.
///
/// Scenario `i` (1-based) is the base scenario with sample row `i` applied
/// field by field, renamed `<prefix>-<i>` (zero-padded to the fleet size)
/// and stamped with the current [`SCHEMA_VERSION`]. Every generated
/// scenario is validated; an out-of-range sample (say, a λ past the stable-
/// queue bound) fails loudly with the sample's field values in the error.
pub fn generate(base: &Scenario, spec: &GenSpec) -> Result<Vec<Scenario>, ScenarioError> {
    let total = spec.validate()?;
    base.validate()?;
    let width = total.to_string().len();
    let samples = spec.samples(total);
    let mut out = Vec::with_capacity(total);
    for (row, sample) in samples.iter().enumerate() {
        let mut s = base.clone();
        s.schema_version = SCHEMA_VERSION;
        let mut described = Vec::with_capacity(sample.len());
        for (f, &raw) in spec.fields.iter().zip(sample) {
            let value = if f.field.is_integer() {
                raw.round().max(1.0)
            } else {
                raw
            };
            f.field.apply(&mut s, value)?;
            described.push(format!("{}={value}", f.field));
        }
        s.name = format!("{}-{:0width$}", spec.prefix, row + 1);
        s.description = format!(
            "generated from `{}` by wsnem gen ({}, seed {}): {}",
            base.name,
            spec.method.name(),
            spec.seed,
            described.join(", ")
        );
        s.validate().map_err(|e| {
            ScenarioError::Invalid(format!(
                "gen: sample {} ({}) is invalid: {e}",
                row + 1,
                described.join(", ")
            ))
        })?;
        out.push(s);
    }
    Ok(out)
}

/// Generate a fleet and write it into `dir` (created if missing): one
/// scenario file per sample plus [`MANIFEST_FILE`]. Returns the manifest.
pub fn write_fleet(
    dir: impl AsRef<Path>,
    base: &Scenario,
    spec: &GenSpec,
    format: FileFormat,
) -> Result<Manifest, ScenarioError> {
    let dir = dir.as_ref();
    let fleet = generate(base, spec)?;
    std::fs::create_dir_all(dir)
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", dir.display())))?;
    let mut names = Vec::with_capacity(fleet.len());
    for s in &fleet {
        let name = format!("{}.{}", s.name, format.extension());
        let path = dir.join(&name);
        let text = files::to_string(s, format)?;
        std::fs::write(&path, text)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        names.push(name);
    }
    let manifest = Manifest {
        generator: "wsnem gen".into(),
        schema_version: SCHEMA_VERSION,
        spec: spec.clone(),
        base: base.clone(),
        files: names,
    };
    let path = dir.join(MANIFEST_FILE);
    let text =
        serde_json::to_string_pretty(&manifest).map_err(|e| ScenarioError::Parse(e.to_string()))?;
    std::fs::write(&path, text + "\n")
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    fn spec(method: GenMethod, count: usize, fields: Vec<FieldSpec>) -> GenSpec {
        GenSpec {
            method,
            count,
            seed: 42,
            prefix: "fleet".into(),
            fields,
        }
    }

    fn field(field: GenField, min: f64, max: f64, points: Option<usize>) -> FieldSpec {
        FieldSpec {
            field,
            min,
            max,
            points,
        }
    }

    #[test]
    fn grid_is_the_cartesian_product_in_odometer_order() {
        // Binary-exact range endpoints so the evenly spaced grid values
        // compare with `==`.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![
                field(GenField::Lambda, 0.25, 0.75, Some(3)),
                field(GenField::ServiceMean, 0.125, 0.25, Some(2)),
            ],
        );
        let fleet = generate(&builtin::paper_defaults(), &s).unwrap();
        assert_eq!(fleet.len(), 6);
        let lambdas: Vec<f64> = fleet.iter().map(|x| x.cpu.lambda).collect();
        assert_eq!(lambdas, vec![0.25, 0.25, 0.5, 0.5, 0.75, 0.75]);
        // service-mean 0.125 → mu 8, 0.25 → mu 4; last field varies fastest.
        let mus: Vec<f64> = fleet.iter().map(|x| x.cpu.mu).collect();
        assert_eq!(mus, vec![8.0, 4.0, 8.0, 4.0, 8.0, 4.0]);
        // Names are zero-padded to the fleet size and carry the values.
        assert_eq!(fleet[0].name, "fleet-1");
        assert!(fleet[3].description.contains("lambda=0.5"));
        assert!(fleet[3].description.contains("service-mean"));
        assert_eq!(fleet.last().unwrap().schema_version, SCHEMA_VERSION);
    }

    #[test]
    fn single_point_axis_collapses_to_min() {
        let s = spec(
            GenMethod::Grid,
            0,
            vec![field(GenField::Lambda, 0.3, 0.9, Some(1))],
        );
        let fleet = generate(&builtin::paper_defaults(), &s).unwrap();
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet[0].cpu.lambda, 0.3);
    }

    #[test]
    fn random_sampling_is_seed_deterministic_and_in_range() {
        let mk = |seed: u64| {
            let mut sp = spec(
                GenMethod::Random,
                40,
                vec![field(GenField::Lambda, 0.1, 0.9, None)],
            );
            sp.seed = seed;
            generate(&builtin::paper_defaults(), &sp).unwrap()
        };
        let a = mk(7);
        let b = mk(7);
        let c = mk(8);
        assert_eq!(a, b, "same seed, same fleet");
        assert_ne!(
            a.iter().map(|s| s.cpu.lambda).collect::<Vec<_>>(),
            c.iter().map(|s| s.cpu.lambda).collect::<Vec<_>>(),
            "different seed, different samples"
        );
        assert!(a.iter().all(|s| (0.1..=0.9).contains(&s.cpu.lambda)));
    }

    #[test]
    fn latin_hypercube_hits_every_stratum_once_per_field() {
        let n = 25;
        let s = spec(
            GenMethod::LatinHypercube,
            n,
            vec![
                field(GenField::Lambda, 0.0, 1.0, None),
                field(GenField::ServiceMean, 0.05, 0.15, None),
            ],
        );
        // Raw sample matrix (before scenario validation rejects λ=0 etc.).
        let rows = s.samples(n);
        for (col, f) in s.fields.iter().enumerate() {
            let mut strata: Vec<usize> = rows
                .iter()
                .map(|r| {
                    let u = (r[col] - f.min) / (f.max - f.min);
                    ((u * n as f64) as usize).min(n - 1)
                })
                .collect();
            strata.sort_unstable();
            assert_eq!(
                strata,
                (0..n).collect::<Vec<_>>(),
                "field {} misses a stratum",
                f.field
            );
        }
    }

    #[test]
    fn integer_fields_round_and_rebuild_topology() {
        let s = spec(
            GenMethod::Grid,
            0,
            vec![
                field(GenField::TopologyFanout, 1.0, 3.0, Some(3)),
                field(GenField::NodeCount, 4.0, 4.4, Some(1)),
            ],
        );
        let fleet = generate(&builtin::tree_collection(), &s).unwrap();
        assert_eq!(fleet.len(), 3);
        for (i, sc) in fleet.iter().enumerate() {
            let net = sc.network.as_ref().unwrap();
            assert_eq!(net.nodes.len(), 4, "node-count rounds 4.4 → 4");
            assert_eq!(net.nodes[0].name, "n001");
            match net.topology {
                Some(TopologySpec::Tree { fanout }) => assert_eq!(fanout, i + 1),
                ref other => panic!("expected a tree, got {other:?}"),
            }
        }
    }

    #[test]
    fn node_count_scales_template_networks_by_count() {
        let mut base = builtin::tree_collection();
        let net = base.network.as_mut().unwrap();
        net.nodes.clear();
        net.template = Some(crate::schema::TemplateSpec {
            count: 2,
            prefix: "n".into(),
            // Small enough that the tree root stays stable while the
            // sampler scales the count into the thousands.
            event_rate: 1e-5,
            tx_per_event: 1.0,
            rx_rate: 0.05,
        });
        let s = spec(
            GenMethod::Grid,
            0,
            vec![field(GenField::NodeCount, 5000.0, 5000.0, Some(1))],
        );
        let fleet = generate(&base, &s).unwrap();
        assert_eq!(fleet.len(), 1);
        let net = fleet[0].network.as_ref().unwrap();
        assert!(net.nodes.is_empty(), "template nets stay node-free");
        assert_eq!(net.template.as_ref().unwrap().count, 5000);
        fleet[0].validate().unwrap();
    }

    #[test]
    fn radio_check_interval_preserves_the_mac_variant() {
        // X-MAC base keeps X-MAC with the swept check interval.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![field(GenField::RadioCheckInterval, 0.2, 0.4, Some(2))],
        );
        let fleet = generate(&builtin::mac_heterogeneous_tree(), &s).unwrap();
        match fleet[0].network.as_ref().unwrap().radio {
            Some(RadioSpec::XMac {
                check_interval_s, ..
            }) => assert!((check_interval_s - 0.2).abs() < 1e-12),
            ref other => panic!("expected X-MAC, got {other:?}"),
        }
        // A preset base gets a valid B-MAC installed.
        let fleet = generate(&builtin::tree_collection(), &s).unwrap();
        match fleet[1].network.as_ref().unwrap().radio {
            Some(RadioSpec::BMac {
                check_interval_s,
                preamble_s,
            }) => {
                assert!((check_interval_s - 0.4).abs() < 1e-12);
                assert!(preamble_s >= check_interval_s, "B-MAC validity");
            }
            ref other => panic!("expected B-MAC, got {other:?}"),
        }
    }

    #[test]
    fn invalid_specs_and_samples_are_rejected_with_context() {
        // No fields.
        let s = spec(GenMethod::Grid, 0, vec![]);
        assert!(generate(&builtin::paper_defaults(), &s)
            .unwrap_err()
            .to_string()
            .contains("--field"));
        // Inverted range.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![field(GenField::Lambda, 2.0, 1.0, None)],
        );
        assert!(generate(&builtin::paper_defaults(), &s)
            .unwrap_err()
            .to_string()
            .contains("invalid range"));
        // Duplicate field.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![
                field(GenField::Lambda, 0.1, 0.5, None),
                field(GenField::Lambda, 0.1, 0.5, None),
            ],
        );
        assert!(generate(&builtin::paper_defaults(), &s)
            .unwrap_err()
            .to_string()
            .contains("twice"));
        // Zero samples.
        let s = spec(
            GenMethod::Random,
            0,
            vec![field(GenField::Lambda, 0.1, 0.5, None)],
        );
        assert!(generate(&builtin::paper_defaults(), &s)
            .unwrap_err()
            .to_string()
            .contains("0 scenarios"));
        // Grid blow-up guard.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![
                field(GenField::Lambda, 0.1, 0.5, Some(1000)),
                field(GenField::ServiceMean, 0.1, 0.2, Some(1000)),
            ],
        );
        assert!(generate(&builtin::paper_defaults(), &s)
            .unwrap_err()
            .to_string()
            .contains("cap"));
        // A sample past the stable-queue bound names the offending values.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![field(GenField::Lambda, 5.0, 100.0, Some(2))],
        );
        let err = generate(&builtin::paper_defaults(), &s)
            .unwrap_err()
            .to_string();
        assert!(err.contains("sample"), "{err}");
        assert!(err.contains("lambda=100"), "{err}");
        // Network-only fields demand a network.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![field(GenField::TopologyFanout, 1.0, 2.0, Some(2))],
        );
        let err = generate(&builtin::paper_defaults(), &s)
            .unwrap_err()
            .to_string();
        assert!(err.contains("network section"), "{err}");
        // Mesh topologies cannot be rewritten.
        let s = spec(
            GenMethod::Grid,
            0,
            vec![field(GenField::NodeCount, 2.0, 3.0, Some(2))],
        );
        let err = generate(&builtin::mesh_field(), &s)
            .unwrap_err()
            .to_string();
        assert!(err.contains("mesh"), "{err}");
    }

    #[test]
    fn write_fleet_emits_files_and_manifest_that_round_trip() {
        let dir = std::env::temp_dir().join("wsnem-gen-write-fleet-test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec(
            GenMethod::LatinHypercube,
            5,
            vec![field(GenField::Lambda, 0.2, 0.8, None)],
        );
        let base = builtin::paper_defaults();
        let manifest = write_fleet(&dir, &base, &s, FileFormat::Toml).unwrap();
        assert_eq!(manifest.files.len(), 5);
        assert_eq!(manifest.files[0], "fleet-1.toml");
        assert_eq!(manifest.base, base);
        // Every emitted file loads back as a valid scenario.
        for name in &manifest.files {
            let loaded = files::load(dir.join(name)).unwrap();
            assert!(loaded.name.starts_with("fleet-"));
        }
        // The manifest itself round-trips and regenerates the same fleet.
        let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let back: Manifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(
            generate(&back.base, &back.spec).unwrap(),
            generate(&base, &s).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_are_zero_padded_to_the_fleet_size() {
        let s = spec(
            GenMethod::Random,
            12,
            vec![field(GenField::Lambda, 0.2, 0.8, None)],
        );
        let fleet = generate(&builtin::paper_defaults(), &s).unwrap();
        assert_eq!(fleet[0].name, "fleet-01");
        assert_eq!(fleet[9].name, "fleet-10");
        let mut names: Vec<&str> = fleet.iter().map(|x| x.name.as_str()).collect();
        let sorted = {
            let mut v = names.clone();
            v.sort_unstable();
            v
        };
        assert_eq!(names, sorted, "lexicographic order == sample order");
        names.dedup();
        assert_eq!(names.len(), 12, "names are unique");
    }

    #[test]
    fn field_and_method_names_round_trip() {
        for f in GenField::ALL {
            assert_eq!(GenField::parse_name(f.name()), Some(f));
        }
        assert_eq!(GenField::parse_name("bogus"), None);
        for m in [
            GenMethod::Grid,
            GenMethod::Random,
            GenMethod::LatinHypercube,
        ] {
            assert_eq!(GenMethod::parse_name(m.name()), Some(m));
        }
        assert_eq!(GenMethod::parse_name("bogus"), None);
    }
}
