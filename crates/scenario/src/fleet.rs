//! Directory fleets: discover, load and (cache-aware) run a directory of
//! scenario files as one batch.
//!
//! `wsnem run <dir>` walks the directory's `.toml`/`.json` files in sorted
//! name order (skipping dotfiles, subdirectories and the generator's
//! `manifest.json`), loads each as a [`Scenario`], rejects two files that
//! declare the same scenario name, and runs the lot through the batch
//! runner — answering from the [`ResultCache`] where the content hash
//! matches, so a warm re-run after editing 3 of 1000 files simulates
//! exactly 3.
//!
//! Cached reports are returned **verbatim** (timing fields included),
//! which is what makes a warm run's merged CSV/JSON byte-identical to the
//! cold run that populated the cache.

use std::path::{Path, PathBuf};

use crate::cache::{CacheMode, CacheStats, ResultCache};
use crate::error::ScenarioError;
use crate::files;
use crate::gen::MANIFEST_FILE;
use crate::report::ScenarioReport;
use crate::runner::{run_batch_with_options, BatchMetrics, BatchProgress};
use crate::schema::Scenario;

/// Knobs for [`run_cached_with`] beyond the scenario/cache lists.
#[derive(Debug, Clone, Copy)]
pub struct FleetRunOptions {
    /// Worker threads for the simulation batch (`None` = all cores).
    pub threads: Option<usize>,
    /// Cache policy for lookups and stores.
    pub mode: CacheMode,
    /// Per-scenario wall-clock watchdog in seconds (`None` = unbounded):
    /// a point that exceeds it is marked failed with
    /// [`ScenarioError::Timeout`] instead of hanging the fleet.
    pub timeout_seconds: Option<f64>,
}

impl Default for FleetRunOptions {
    fn default() -> Self {
        FleetRunOptions {
            threads: None,
            mode: CacheMode::ReadWrite,
            timeout_seconds: None,
        }
    }
}

/// Store a freshly simulated report, degrading store failures (disk full,
/// read-only directory, permissions) to a one-line stderr warning: the
/// report is in hand either way, so a broken cache must cost a future miss,
/// never the batch.
pub fn store_or_warn(cache: &ResultCache, scenario: &Scenario, report: &ScenarioReport) {
    if let Err(e) = cache.store(scenario, report) {
        eprintln!(
            "warning: result cache store failed for scenario `{}`: {e} (continuing uncached)",
            scenario.name
        );
    }
}

/// Scenario files in `dir`, sorted by file name: every `.toml`/`.json`
/// regular file except dotfiles and the generator's `manifest.json`.
/// Subdirectories (including `.wsnem-cache/`) are not descended into.
pub fn discover(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, ScenarioError> {
    let dir = dir.as_ref();
    let entries =
        std::fs::read_dir(dir).map_err(|e| ScenarioError::Io(format!("{}: {e}", dir.display())))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| ScenarioError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.') || name == MANIFEST_FILE {
            continue;
        }
        if matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("toml") | Some("json")
        ) {
            paths.push(path);
        }
    }
    if paths.is_empty() {
        return Err(ScenarioError::Io(format!(
            "{}: no scenario files (*.toml / *.json) found",
            dir.display()
        )));
    }
    paths.sort();
    Ok(paths)
}

/// [`discover`] + load: every scenario in the directory, paired with its
/// file path, in sorted file-name order. Two files declaring the same
/// scenario name are an error naming both files — duplicate keys would
/// collide in the merged CSV/JSON and in the result cache.
pub fn load_dir(dir: impl AsRef<Path>) -> Result<Vec<(PathBuf, Scenario)>, ScenarioError> {
    let paths = discover(dir)?;
    let mut out: Vec<(PathBuf, Scenario)> = Vec::with_capacity(paths.len());
    for path in paths {
        let scenario = files::load(&path)?;
        if let Some((prev, _)) = out.iter().find(|(_, s)| s.name == scenario.name) {
            return Err(ScenarioError::Invalid(format!(
                "duplicate scenario name `{}`: declared by both {} and {}",
                scenario.name,
                prev.display(),
                path.display()
            )));
        }
        out.push((path, scenario));
    }
    Ok(out)
}

/// Run a batch with per-scenario result caching.
///
/// `caches[i]` is the cache to consult/populate for `scenarios[i]` (`None`
/// opts that scenario out, whatever the mode — the CLI uses this for
/// builtins running alongside a fleet). Under [`CacheMode::ReadWrite`],
/// hits are answered from the cache without simulating; under
/// [`CacheMode::Refresh`] everything is simulated and re-stored; under
/// [`CacheMode::Disabled`] the caches are never touched.
///
/// Results come back in input order, cache hits returned verbatim. The
/// returned [`BatchMetrics`] covers the whole call (hits resolve in the
/// wall-clock but add no busy time), and [`CacheStats`] counts hits vs
/// simulated scenarios. The progress callback fires once per scenario —
/// hits first, then misses as workers finish them.
pub fn run_cached(
    scenarios: &[Scenario],
    caches: &[Option<&ResultCache>],
    threads: Option<usize>,
    mode: CacheMode,
    on_done: Option<BatchProgress<'_>>,
) -> (
    Vec<Result<ScenarioReport, ScenarioError>>,
    BatchMetrics,
    CacheStats,
) {
    run_cached_with(
        scenarios,
        caches,
        FleetRunOptions {
            threads,
            mode,
            timeout_seconds: None,
        },
        on_done,
    )
}

/// [`run_cached`] with the full option set — notably the per-scenario
/// wall-clock watchdog shared with `--scenario-timeout` and the
/// distributed lease watchdog.
pub fn run_cached_with(
    scenarios: &[Scenario],
    caches: &[Option<&ResultCache>],
    opts: FleetRunOptions,
    on_done: Option<BatchProgress<'_>>,
) -> (
    Vec<Result<ScenarioReport, ScenarioError>>,
    BatchMetrics,
    CacheStats,
) {
    let FleetRunOptions {
        threads,
        mode,
        timeout_seconds,
    } = opts;
    assert_eq!(scenarios.len(), caches.len(), "one cache slot per scenario");
    let started = std::time::Instant::now();
    let n = scenarios.len();

    // Resolve hits up front; everything else joins the simulation batch.
    let mut slots: Vec<Option<Result<ScenarioReport, ScenarioError>>> =
        (0..n).map(|_| None).collect();
    let mut to_run: Vec<usize> = Vec::with_capacity(n);
    let mut hits = 0usize;
    for (i, s) in scenarios.iter().enumerate() {
        let cached = match (mode, caches[i]) {
            (CacheMode::ReadWrite, Some(cache)) => cache.lookup(s).unwrap_or(None),
            _ => None,
        };
        match cached {
            Some(report) => {
                hits += 1;
                if let Some(cb) = on_done {
                    cb(hits, n, &s.name);
                }
                slots[i] = Some(Ok(report));
            }
            None => to_run.push(i),
        }
    }

    // Simulate the misses as one batch; offset the progress count past the
    // hits so the user sees one monotone [done/total] sequence.
    let misses = to_run.len();
    let mut inner_workers = 0;
    let mut busy_seconds = 0.0;
    if misses > 0 {
        let subset: Vec<Scenario> = to_run.iter().map(|&i| scenarios[i].clone()).collect();
        let offset_cb = on_done
            .map(|cb| move |done: usize, _total: usize, name: &str| cb(hits + done, n, name));
        let (results, inner) = run_batch_with_options(
            &subset,
            threads,
            offset_cb
                .as_ref()
                .map(|cb| cb as &(dyn Fn(usize, usize, &str) + Sync)),
            timeout_seconds,
        );
        inner_workers = inner.workers;
        busy_seconds = inner.busy_seconds;
        for (&i, result) in to_run.iter().zip(results) {
            if let (Ok(report), Some(cache)) = (&result, caches[i]) {
                if mode != CacheMode::Disabled {
                    store_or_warn(cache, &scenarios[i], report);
                }
            }
            slots[i] = Some(result);
        }
    }

    // Every index is written exactly once: cache hits above, misses by the
    // runner's ordered results.
    let results: Vec<_> = slots
        .into_iter()
        .map(|slot| match slot {
            Some(result) => result,
            None => unreachable!("scenario left unresolved"),
        })
        .collect();
    let metrics = BatchMetrics::new(
        n,
        inner_workers.max(1),
        started.elapsed().as_secs_f64(),
        busy_seconds,
    );
    (results, metrics, CacheStats { hits, misses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::files::FileFormat;
    use crate::gen::{self, FieldSpec, GenField, GenMethod, GenSpec};
    use wsnem_core::BackendId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wsnem-fleet-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick(mut s: Scenario) -> Scenario {
        s.cpu = s.cpu.with_replications(2).with_horizon(200.0);
        s.backends = vec![BackendId::Markov];
        s
    }

    fn write(dir: &Path, name: &str, s: &Scenario, format: FileFormat) {
        std::fs::write(dir.join(name), files::to_string(s, format).unwrap()).unwrap();
    }

    #[test]
    fn discover_filters_and_sorts() {
        let dir = temp_dir("discover");
        let a = quick(builtin::paper_defaults());
        write(&dir, "b.toml", &a, FileFormat::Toml);
        write(&dir, "a.json", &a, FileFormat::Json);
        std::fs::write(dir.join("manifest.json"), "{}").unwrap();
        std::fs::write(dir.join(".hidden.toml"), "").unwrap();
        std::fs::write(dir.join("notes.txt"), "").unwrap();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        write(&dir, "sub/c.toml", &a, FileFormat::Toml);

        let names: Vec<String> = discover(&dir)
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["a.json", "b.toml"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_an_error() {
        let dir = temp_dir("empty");
        let err = discover(&dir).unwrap_err().to_string();
        assert!(err.contains("no scenario files"), "{err}");
        let err = discover(dir.join("missing")).unwrap_err().to_string();
        assert!(err.contains("missing"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_rejects_duplicate_scenario_names() {
        let dir = temp_dir("dups");
        let s = quick(builtin::paper_defaults());
        write(&dir, "first.toml", &s, FileFormat::Toml);
        write(&dir, "second.json", &s, FileFormat::Json);
        let err = load_dir(&dir).unwrap_err().to_string();
        assert!(err.contains("duplicate scenario name"), "{err}");
        assert!(err.contains("paper-defaults"), "{err}");
        assert!(
            err.contains("first.toml") && err.contains("second.json"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_returns_sorted_valid_fleet() {
        let dir = temp_dir("load");
        let spec = GenSpec {
            method: GenMethod::Grid,
            count: 0,
            seed: 1,
            prefix: "pt".into(),
            fields: vec![FieldSpec {
                field: GenField::Lambda,
                min: 0.25,
                max: 0.75,
                points: Some(4),
            }],
        };
        gen::write_fleet(
            &dir,
            &quick(builtin::paper_defaults()),
            &spec,
            FileFormat::Toml,
        )
        .unwrap();
        let fleet = load_dir(&dir).unwrap();
        assert_eq!(fleet.len(), 4);
        let names: Vec<&str> = fleet.iter().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, vec!["pt-1", "pt-2", "pt-3", "pt-4"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_cached_hits_on_identical_rerun_and_respects_modes() {
        let dir = temp_dir("modes");
        let cache = ResultCache::open_under(&dir).unwrap();
        let mut a = quick(builtin::paper_defaults());
        a.name = "a".into();
        let mut b = quick(builtin::paper_defaults());
        b.name = "b".into();
        let scenarios = vec![a.clone(), b.clone()];
        let caches = vec![Some(&cache), Some(&cache)];

        // Cold: all misses, cache populated.
        let (cold, metrics, stats) =
            run_cached(&scenarios, &caches, Some(1), CacheMode::ReadWrite, None);
        assert_eq!(stats, CacheStats { hits: 0, misses: 2 });
        assert_eq!(metrics.scenarios, 2);
        assert_eq!(cache.len(), 2);

        // Warm: all hits, reports bit-identical, no busy time.
        let (warm, metrics, stats) =
            run_cached(&scenarios, &caches, Some(1), CacheMode::ReadWrite, None);
        assert_eq!(stats, CacheStats { hits: 2, misses: 0 });
        assert_eq!(metrics.busy_seconds, 0.0);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.as_ref().unwrap(), w.as_ref().unwrap());
        }

        // Editing one scenario re-simulates exactly that one.
        let mut edited = scenarios.clone();
        edited[1].cpu = edited[1].cpu.with_power_down_threshold(0.25);
        let (_, _, stats) = run_cached(&edited, &caches, Some(1), CacheMode::ReadWrite, None);
        assert_eq!(stats, CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 3, "the edited variant was stored too");

        // Refresh recomputes everything but restores entries.
        let (_, _, stats) = run_cached(&scenarios, &caches, Some(1), CacheMode::Refresh, None);
        assert_eq!(stats, CacheStats { hits: 0, misses: 2 });

        // Disabled neither reads nor writes.
        let before = cache.len();
        let (_, _, stats) = run_cached(&scenarios, &caches, Some(1), CacheMode::Disabled, None);
        assert_eq!(stats, CacheStats { hits: 0, misses: 2 });
        assert_eq!(cache.len(), before);

        // A None slot opts a scenario out even in ReadWrite mode.
        let (_, _, stats) = run_cached(
            &scenarios,
            &[Some(&cache), None],
            Some(1),
            CacheMode::ReadWrite,
            None,
        );
        assert_eq!(stats, CacheStats { hits: 1, misses: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_cached_progress_counts_are_monotone_across_hits_and_misses() {
        let dir = temp_dir("progress");
        let cache = ResultCache::open_under(&dir).unwrap();
        let mut scenarios = Vec::new();
        for i in 0..4 {
            let mut s = quick(builtin::paper_defaults());
            s.name = format!("p{i}");
            scenarios.push(s);
        }
        let caches: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| Some(&cache)).collect();
        // Prime two of the four.
        let (_, _, _) = run_cached(
            &scenarios[..2],
            &caches[..2],
            Some(1),
            CacheMode::ReadWrite,
            None,
        );
        let seen = std::sync::Mutex::new(Vec::new());
        let cb = |done: usize, total: usize, name: &str| {
            seen.lock().unwrap().push((done, total, name.to_owned()));
        };
        let (results, _, stats) = run_cached(
            &scenarios,
            &caches,
            Some(2),
            CacheMode::ReadWrite,
            Some(&cb),
        );
        assert_eq!(stats, CacheStats { hits: 2, misses: 2 });
        assert!(results.iter().all(|r| r.is_ok()));
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 4);
        let counts: Vec<usize> = seen.iter().map(|(d, _, _)| *d).collect();
        assert_eq!(counts, vec![1, 2, 3, 4], "hits first, then misses");
        assert!(seen.iter().all(|(_, t, _)| *t == 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fifty_scenario_generated_fleet_is_bit_identical_warm() {
        // The cache battery at fleet scale: generate a 50-scenario Latin
        // hypercube, run it cold, then warm — every warm report (and its
        // serialized form) must be bit-identical to the cold run's, with
        // all 50 answered from the cache and zero busy time.
        let dir = temp_dir("fifty");
        let spec = GenSpec {
            method: GenMethod::LatinHypercube,
            count: 50,
            seed: 7,
            prefix: "lhs".into(),
            fields: vec![
                FieldSpec {
                    field: GenField::Lambda,
                    min: 0.25,
                    max: 0.75,
                    points: None,
                },
                FieldSpec {
                    field: GenField::ServiceMean,
                    min: 0.0625,
                    max: 0.125,
                    points: None,
                },
            ],
        };
        gen::write_fleet(
            &dir,
            &quick(builtin::paper_defaults()),
            &spec,
            FileFormat::Toml,
        )
        .unwrap();
        let fleet = load_dir(&dir).unwrap();
        assert_eq!(fleet.len(), 50);
        let scenarios: Vec<Scenario> = fleet.into_iter().map(|(_, s)| s).collect();
        let cache = ResultCache::open_under(&dir).unwrap();
        let caches: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| Some(&cache)).collect();

        let (cold, _, stats) = run_cached(&scenarios, &caches, None, CacheMode::ReadWrite, None);
        assert_eq!(
            stats,
            CacheStats {
                hits: 0,
                misses: 50
            }
        );
        let (warm, metrics, stats) =
            run_cached(&scenarios, &caches, None, CacheMode::ReadWrite, None);
        assert_eq!(
            stats,
            CacheStats {
                hits: 50,
                misses: 0
            }
        );
        assert_eq!(metrics.busy_seconds, 0.0);
        for (c, w) in cold.iter().zip(&warm) {
            let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(c, w);
            assert_eq!(
                serde_json::to_string(c).unwrap(),
                serde_json::to_string(w).unwrap(),
                "serialized report must round-trip bit-identically"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_run_cached_writers_never_tear_entries() {
        // Two `run_cached` invocations racing on the same `.wsnem-cache/`
        // (two threads, same fleet): every store must publish whole, so a
        // third pass answers all scenarios from the cache with reports
        // identical to the racers'.
        let dir = temp_dir("race");
        let spec = GenSpec {
            method: GenMethod::Grid,
            count: 0,
            seed: 3,
            prefix: "race".into(),
            fields: vec![FieldSpec {
                field: GenField::Lambda,
                min: 0.2,
                max: 0.8,
                points: Some(8),
            }],
        };
        gen::write_fleet(
            &dir,
            &quick(builtin::paper_defaults()),
            &spec,
            FileFormat::Toml,
        )
        .unwrap();
        let scenarios: Vec<Scenario> = load_dir(&dir)
            .unwrap()
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert_eq!(scenarios.len(), 8);

        let runs = std::thread::scope(|scope| {
            let racers: Vec<_> = (0..2)
                .map(|_| {
                    let scenarios = &scenarios;
                    let dir = &dir;
                    scope.spawn(move || {
                        // Each racer opens its own handle on the shared dir,
                        // exactly as two concurrent processes would.
                        let cache = ResultCache::open_under(dir).unwrap();
                        let caches: Vec<Option<&ResultCache>> =
                            scenarios.iter().map(|_| Some(&cache)).collect();
                        let (results, _, _) =
                            run_cached(scenarios, &caches, Some(2), CacheMode::ReadWrite, None);
                        results.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>()
                    })
                })
                .collect();
            racers
                .into_iter()
                .map(|r| r.join().unwrap())
                .collect::<Vec<_>>()
        });
        // Deterministic seeds: both racers computed identical numbers.
        for (a, b) in runs[0].iter().zip(&runs[1]) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.backends[0].fractions, b.backends[0].fractions);
        }

        // No torn entries, no stray temp files left behind.
        let cache = ResultCache::open_under(&dir).unwrap();
        assert_eq!(cache.len(), 8);
        let leftovers: Vec<String> = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

        // Third pass: all hits, each report verbatim from ONE of the
        // racers. Last-write-wins means either racer's store may be the
        // surviving entry — the two differ only in timing fields, but a
        // torn or mixed entry would match neither bit-for-bit.
        let caches: Vec<Option<&ResultCache>> = scenarios.iter().map(|_| Some(&cache)).collect();
        let (third, metrics, stats) =
            run_cached(&scenarios, &caches, Some(2), CacheMode::ReadWrite, None);
        assert_eq!(stats, CacheStats { hits: 8, misses: 0 });
        assert_eq!(metrics.busy_seconds, 0.0);
        for ((t, a), b) in third.iter().zip(&runs[0]).zip(&runs[1]) {
            let t = t.as_ref().unwrap();
            assert!(
                t == a || t == b,
                "cached report matches neither racer: {t:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_cache_store_degrades_to_a_recorded_miss() {
        // Satellite: a cache whose directory has been ripped out from
        // under it (the portable stand-in for a read-only or full disk —
        // chmod tricks are bypassed by root) must not abort the batch:
        // stores fail, the run completes, and the next pass records
        // misses instead of hits.
        let dir = temp_dir("brokenstore");
        let cache_dir = dir.join("gone").join(crate::cache::DIR_NAME);
        let cache = ResultCache::open(&cache_dir).unwrap();
        std::fs::remove_dir_all(dir.join("gone")).unwrap();
        // Park a plain file where the cache dir was so nothing can recreate it.
        std::fs::write(dir.join("gone"), "not a directory").unwrap();

        let mut s = quick(builtin::paper_defaults());
        s.name = "degraded".into();
        let scenarios = vec![s.clone()];
        let caches = vec![Some(&cache)];
        let (results, _, stats) =
            run_cached(&scenarios, &caches, Some(1), CacheMode::ReadWrite, None);
        assert!(results[0].is_ok(), "{:?}", results[0]);
        assert_eq!(stats, CacheStats { hits: 0, misses: 1 });
        // The store failed silently-but-warned: nothing cached.
        assert_eq!(cache.len(), 0);
        let (results, _, stats) =
            run_cached(&scenarios, &caches, Some(1), CacheMode::ReadWrite, None);
        assert!(results[0].is_ok());
        assert_eq!(stats, CacheStats { hits: 0, misses: 1 }, "recorded miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_cached_preserves_input_order_and_isolates_failures() {
        let dir = temp_dir("order");
        let cache = ResultCache::open_under(&dir).unwrap();
        let mut good = quick(builtin::paper_defaults());
        good.name = "good".into();
        let mut bad = quick(builtin::paper_defaults());
        bad.name = "bad".into();
        bad.backends.clear(); // fails validation at run time
        let scenarios = vec![bad, good];
        let caches = vec![Some(&cache), Some(&cache)];
        let (results, _, stats) =
            run_cached(&scenarios, &caches, Some(2), CacheMode::ReadWrite, None);
        assert!(results[0].is_err());
        assert_eq!(results[1].as_ref().unwrap().scenario, "good");
        assert_eq!(stats, CacheStats { hits: 0, misses: 2 });
        // The failure was not cached; the success was.
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
