//! # wsnem-scenario
//!
//! Declarative, versioned scenario definitions for the wsnem energy models —
//! the layer that turns the paper's hard-coded experiment functions into
//! data: a [`Scenario`] file (JSON or TOML) names the CPU parameters, power
//! profile, battery, arrival workload, the model backends to compare
//! (Markov / Erlang-phase / Petri net / DES), optional sweep axes and an
//! optional star network; the [`runner`] evaluates it — in parallel across
//! scenarios for batches — into a structured [`ScenarioReport`] with
//! per-state energy breakdowns, battery lifetimes and cross-backend
//! agreement checks.
//!
//! Schema v2 adds multi-hop topologies: a scenario network can declare a
//! [`schema::TopologySpec`] (star, chain, tree with configurable fan-out, or
//! an explicit static-route mesh) and the runner propagates each subtree's
//! packet rate sink-ward, so relay nodes carry their forwarding load in both
//! CPU arrival rate and radio traffic — the load imbalance that determines
//! network lifetime. v1 files keep loading unchanged.
//!
//! Schema v3 unifies backend selection on [`wsnem_core::BackendId`] (the
//! schema's `Backend` is now a deprecated alias) and adds an optional
//! `service` section — a serializable service-time distribution for the
//! backends whose [`wsnem_core::Capabilities`] allow it. The [`compare`]
//! module runs *every registered backend* over a scenario's sweep and emits
//! the paper's Table 4/5 as a cross-backend comparison matrix
//! (`wsnem compare`).
//!
//! Schema v4 makes the radio a first-class model input: a network can name
//! a duty-cycle MAC ([`RadioSpec`] — presets, LPL, B-MAC-style full
//! preambles, X-MAC-style strobed preambles, custom numbers) and individual
//! nodes can override it, so relay duty cycles are co-tuned with routing
//! and CPU power management. Reports gain per-node radio spec / duty-cycle
//! columns; files that name no radio keep the historical `cc2420-class`
//! preset and analyze identically.
//!
//! The fleet layer scales all of this from one file to thousands: [`gen`]
//! samples a declared parameter space (grid / seeded random / Latin
//! hypercube) into a directory of scenario files with a reproducibility
//! manifest, [`fleet`] discovers and runs such a directory as one batch,
//! and [`cache`] keys finished reports on a stable content hash of each
//! scenario's canonical serialization (`.wsnem-cache/`), so re-running a
//! 1000-file fleet after editing 3 files simulates exactly 3.
//!
//! A [`builtin`] library of twelve scenarios (paper baseline,
//! threshold-tuning sweep, bursty surveillance traffic, habitat monitoring,
//! a heterogeneous star, three multi-hop topologies, the large-D stress
//! case, a deterministic-service study, an LPL period sweep and a
//! mixed-MAC tree) ships in the binary, so the `wsnem` CLI works with no
//! files at all.
//!
//! ```
//! use wsnem_scenario::{builtin, runner};
//!
//! let mut scenario = builtin::find("paper-defaults").unwrap();
//! scenario.cpu = scenario.cpu.with_replications(2).with_horizon(200.0);
//! let report = runner::run_scenario(&scenario).unwrap();
//! assert_eq!(report.backends.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod builtin;
pub mod cache;
pub mod compare;
pub mod error;
pub mod files;
pub mod fleet;
pub mod gen;
pub mod report;
pub mod runner;
pub mod schema;

pub use cache::{CacheMode, CacheStats, ResultCache};
pub use compare::{
    compare_scenario, compare_scenario_tiered, compare_scenario_with, CompareReport,
    TIERED_RHO_THRESHOLD,
};
pub use error::ScenarioError;
pub use files::{load, FileFormat};
pub use fleet::{run_cached, run_cached_with, store_or_warn, FleetRunOptions};
pub use gen::{FieldSpec, GenField, GenMethod, GenSpec};
// Re-exported so consumers of `TopologySpec::build_next_hops` /
// `NetworkSpec::build_network` (e.g. the CLI) need no direct wsn dependency.
pub use report::{
    AggregateNetworkReport, AgreementCheck, BackendReport, CohortNodeReport, EnergyReport,
    HopDepthPercentile, LifetimeHistogramBin, NetworkReport, NodeReport, PhaseSeconds,
    ScenarioReport, DEFAULT_SUMMARY_NODE_LIMIT,
};
pub use runner::{
    call_with_timeout, run_batch, run_batch_with_metrics, run_batch_with_options, run_scenario,
    run_scenario_bounded, BatchMetrics, BatchProgress, AGGREGATE_NODE_THRESHOLD,
};
pub use schema::{
    Backend, BatterySpec, NetworkSpec, NodeSpec, ProfileSpec, ReportSpec, RouteSpec, Scenario,
    SweepAxis, SweepSpec, TemplateSpec, TopologySpec, WorkloadSpec, MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
};
pub use wsnem_core::backend::global as global_registry;
pub use wsnem_core::{BackendId, BackendRegistry, Capabilities, ServiceDist};
pub use wsnem_energy::{Battery, PowerProfile};
pub use wsnem_wsn::{
    Network, NextHop, RadioModel, RadioSpec, SoaNetwork, SoaRouting, DEFAULT_RADIO_PRESET, SINK,
};
