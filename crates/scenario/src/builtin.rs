//! The built-in scenario library.
//!
//! Six ready-to-run scenarios ship with the binary so `wsnem list` /
//! `wsnem run --all` work out of the box. They cover the paper's baseline,
//! both evaluation axes (Fig. 4/5's threshold sweep, Table 4/5's power-up
//! delay stress), the bursty-arrivals study from the surveillance domain,
//! and two application-layer studies (habitat monitoring, a heterogeneous
//! star network).

use wsnem_stats::dist::Dist;

use crate::error::ScenarioError;
use crate::schema::{
    Backend, BatterySpec, NetworkSpec, NodeSpec, ProfileSpec, ReportSpec, Scenario, SweepAxis,
    SweepSpec, WorkloadSpec,
};

/// The paper's Table 2 baseline: λ = 1/s, μ = 10/s, T = 0.5 s, D = 1 ms,
/// PXA271, all three backends with a 2 pp agreement gate.
pub fn paper_defaults() -> Scenario {
    let mut s = Scenario::paper_template("paper-defaults");
    s.description = "The paper's Table 2 operating point on the PXA271: Poisson arrivals \
                     at 1 job/s, mean service 0.1 s, T = 0.5 s, D = 1 ms. All three \
                     backends must agree within 2 percentage points."
        .into();
    s.cpu = s.cpu.with_replications(8).with_horizon(1000.0);
    s
}

/// Fig. 4/5: sweep the Power Down Threshold and find the energy optimum.
pub fn threshold_tuning() -> Scenario {
    let mut s = Scenario::paper_template("threshold-tuning");
    s.description = "The design question behind Fig. 5: which Power Down Threshold \
                     minimizes energy? Sweeps T from 0.1 s to 1.0 s with the analytic \
                     Markov backend (exact in this small-D regime) and reports the \
                     best point."
        .into();
    s.backends = vec![Backend::Markov];
    s.sweep = Some(SweepSpec {
        axis: SweepAxis::PowerDownThreshold,
        values: (1..=10).map(|i| i as f64 / 10.0).collect(),
    });
    s
}

/// Bursty surveillance traffic vs the Poisson assumption (the VigilNet
/// setting the paper's introduction cites).
pub fn surveillance_bursty() -> Scenario {
    let mut s = Scenario::paper_template("surveillance-bursty");
    s.description = "A surveillance node sees nothing for ~20 s, then a target transit \
                     produces a 4 s burst of detections at 6/s (same ~1/s mean as the \
                     paper's Poisson workload). The DES simulates the real burst \
                     process; the analytic backends keep their Poisson assumption — \
                     the agreement section quantifies how much the assumption \
                     misbudgets the battery."
        .into();
    s.cpu = s
        .cpu
        .with_replications(8)
        .with_horizon(5000.0)
        .with_warmup(200.0);
    s.workload = Some(WorkloadSpec::BurstyOnOff {
        on: Dist::Deterministic(4.0),
        off: Dist::Deterministic(20.0),
        rate_on: 6.0,
    });
    s.backends = vec![Backend::Markov, Backend::Des];
    // The distortion is the point — report deltas without a pass/fail gate.
    s.report = ReportSpec {
        energy_horizon_s: 1000.0,
        agreement_tolerance_pp: None,
    };
    s
}

/// Habitat monitoring: one reading per minute on an MSP430-class CPU with a
/// CR2032 — the months-long-lifetime regime.
pub fn habitat_monitoring() -> Scenario {
    let mut s = Scenario::paper_template("habitat-monitoring");
    s.description = "A habitat-monitoring node taking one reading per minute on an \
                     MSP430-class processor powered by a CR2032 coin cell. Aggressive \
                     power-down (T = 50 ms) keeps the CPU asleep between readings; \
                     lifetime is reported in days."
        .into();
    s.cpu = s
        .cpu
        .with_lambda(1.0 / 60.0)
        .with_power_down_threshold(0.05)
        .with_replications(8)
        .with_horizon(20_000.0)
        .with_warmup(500.0);
    s.profile = ProfileSpec::Msp430Class;
    s.battery = BatterySpec::Cr2032;
    s.backends = vec![Backend::Markov, Backend::Des];
    s
}

/// A heterogeneous star: sampler nodes, a camera node and a relay with
/// forwarded traffic — first-death vs mean lifetime.
pub fn heterogeneous_star() -> Scenario {
    let mut s = Scenario::paper_template("heterogeneous-star");
    s.description = "A star network of five PXA271 nodes: three slow environmental \
                     samplers, one busy camera node and one relay receiving forwarded \
                     packets. Reports per-node power budgets, the network's \
                     first-node-death lifetime and its bottleneck."
        .into();
    s.backends = vec![Backend::Markov];
    s.network = Some(NetworkSpec {
        nodes: vec![
            NodeSpec {
                name: "sampler-0".into(),
                event_rate: 0.05,
                tx_per_event: 1.0,
                rx_rate: 0.0,
            },
            NodeSpec {
                name: "sampler-1".into(),
                event_rate: 0.05,
                tx_per_event: 1.0,
                rx_rate: 0.0,
            },
            NodeSpec {
                name: "sampler-2".into(),
                event_rate: 0.1,
                tx_per_event: 1.0,
                rx_rate: 0.0,
            },
            NodeSpec {
                name: "camera".into(),
                event_rate: 2.0,
                tx_per_event: 4.0,
                rx_rate: 0.0,
            },
            NodeSpec {
                name: "relay".into(),
                event_rate: 0.2,
                tx_per_event: 1.0,
                rx_rate: 2.5,
            },
        ],
    });
    s
}

/// Table 4/5's stress axis: a large Power Up Delay breaks the
/// supplementary-variable approximation; the Erlang-phase chain and the
/// simulators stay accurate.
pub fn powerup_delay_stress() -> Scenario {
    let mut s = Scenario::paper_template("powerup-delay-stress");
    s.description = "The failure mode the paper's Tables 4/5 quantify: at D = 10 s the \
                     supplementary-variable Markov model overestimates utilization \
                     several-fold while the Erlang-phase chain, the Petri net and the \
                     DES agree. No tolerance gate — the disagreement is the result."
        .into();
    s.cpu = s
        .cpu
        .with_power_up_delay(10.0)
        .with_replications(8)
        .with_horizon(5000.0)
        .with_warmup(500.0);
    s.backends = vec![
        Backend::Markov,
        Backend::ErlangPhase,
        Backend::PetriNet,
        Backend::Des,
    ];
    s.report = ReportSpec {
        energy_horizon_s: 1000.0,
        agreement_tolerance_pp: None,
    };
    s
}

/// All built-in scenarios, in presentation order.
pub fn all() -> Vec<Scenario> {
    vec![
        paper_defaults(),
        threshold_tuning(),
        surveillance_bursty(),
        habitat_monitoring(),
        heterogeneous_star(),
        powerup_delay_stress(),
    ]
}

/// Look a built-in up by name.
pub fn find(name: &str) -> Result<Scenario, ScenarioError> {
    all()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| ScenarioError::UnknownBuiltin(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_at_least_five_scenarios() {
        assert!(all().len() >= 5);
    }

    #[test]
    fn every_builtin_validates() {
        for s in all() {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.description.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn find_by_name() {
        assert_eq!(find("paper-defaults").unwrap().name, "paper-defaults");
        assert!(matches!(
            find("nope"),
            Err(ScenarioError::UnknownBuiltin(_))
        ));
    }

    #[test]
    fn library_covers_the_feature_space() {
        let scenarios = all();
        assert!(
            scenarios.iter().any(|s| s.sweep.is_some()),
            "a sweep scenario"
        );
        assert!(
            scenarios.iter().any(|s| s.network.is_some()),
            "a network scenario"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.workload.as_ref().is_some_and(|w| !w.is_poisson())),
            "a non-Poisson workload scenario"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.backends.contains(&Backend::ErlangPhase)),
            "an Erlang-phase scenario"
        );
    }
}
