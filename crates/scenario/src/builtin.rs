//! The built-in scenario library.
//!
//! Twelve ready-to-run scenarios ship with the binary so `wsnem list` /
//! `wsnem run --all` work out of the box. They cover the paper's baseline,
//! both evaluation axes (Fig. 4/5's threshold sweep, Table 4/5's power-up
//! delay stress), the bursty-arrivals study from the surveillance domain,
//! two application-layer studies (habitat monitoring, a heterogeneous star
//! network), three multi-hop topologies (schema v2): a data-collection
//! tree, a 3-hop chain and a static-route mesh, where forwarding load
//! concentrates on sink-adjacent relays and shortens their lifetime — and
//! two radio/MAC studies (schema v4): an LPL check-interval sweep exposing
//! the listen-vs-preamble energy tradeoff and a mixed-MAC collection tree
//! whose always-on root relay pays for everyone else's duty cycling.

use wsnem_core::{BackendId, ServiceDist};
use wsnem_stats::dist::Dist;
use wsnem_wsn::RadioSpec;

use crate::error::ScenarioError;
use crate::schema::{
    BatterySpec, NetworkSpec, NodeSpec, ProfileSpec, ReportSpec, RouteSpec, Scenario, SweepAxis,
    SweepSpec, TopologySpec, WorkloadSpec,
};

fn plain_node(name: impl Into<String>, event_rate: f64) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        event_rate,
        tx_per_event: 1.0,
        rx_rate: 0.0,
        radio: None,
    }
}

/// The paper's Table 2 baseline: λ = 1/s, μ = 10/s, T = 0.5 s, D = 1 ms,
/// PXA271, all three backends with a 2 pp agreement gate.
pub fn paper_defaults() -> Scenario {
    let mut s = Scenario::paper_template("paper-defaults");
    s.description = "The paper's Table 2 operating point on the PXA271: Poisson arrivals \
                     at 1 job/s, mean service 0.1 s, T = 0.5 s, D = 1 ms. All three \
                     backends must agree within 2 percentage points."
        .into();
    s.cpu = s.cpu.with_replications(8).with_horizon(1000.0);
    s
}

/// Fig. 4/5: sweep the Power Down Threshold and find the energy optimum.
pub fn threshold_tuning() -> Scenario {
    let mut s = Scenario::paper_template("threshold-tuning");
    s.description = "The design question behind Fig. 5: which Power Down Threshold \
                     minimizes energy? Sweeps T from 0.1 s to 1.0 s with the analytic \
                     Markov backend (exact in this small-D regime) and reports the \
                     best point."
        .into();
    s.backends = vec![BackendId::Markov];
    s.sweep = Some(SweepSpec {
        axis: SweepAxis::PowerDownThreshold,
        values: (1..=10).map(|i| i as f64 / 10.0).collect(),
    });
    s
}

/// Bursty surveillance traffic vs the Poisson assumption (the VigilNet
/// setting the paper's introduction cites).
pub fn surveillance_bursty() -> Scenario {
    let mut s = Scenario::paper_template("surveillance-bursty");
    s.description = "A surveillance node sees nothing for ~20 s, then a target transit \
                     produces a 4 s burst of detections at 6/s (same ~1/s mean as the \
                     paper's Poisson workload). The DES simulates the real burst \
                     process; the analytic backends keep their Poisson assumption — \
                     the agreement section quantifies how much the assumption \
                     misbudgets the battery."
        .into();
    s.cpu = s
        .cpu
        .with_replications(8)
        .with_horizon(5000.0)
        .with_warmup(200.0);
    s.workload = Some(WorkloadSpec::BurstyOnOff {
        on: Dist::Deterministic(4.0),
        off: Dist::Deterministic(20.0),
        rate_on: 6.0,
    });
    s.backends = vec![BackendId::Markov, BackendId::Des];
    // The distortion is the point — report deltas without a pass/fail gate.
    s.report = ReportSpec {
        energy_horizon_s: 1000.0,
        agreement_tolerance_pp: None,
    };
    s
}

/// Habitat monitoring: one reading per minute on an MSP430-class CPU with a
/// CR2032 — the months-long-lifetime regime.
pub fn habitat_monitoring() -> Scenario {
    let mut s = Scenario::paper_template("habitat-monitoring");
    s.description = "A habitat-monitoring node taking one reading per minute on an \
                     MSP430-class processor powered by a CR2032 coin cell. Aggressive \
                     power-down (T = 50 ms) keeps the CPU asleep between readings; \
                     lifetime is reported in days."
        .into();
    s.cpu = s
        .cpu
        .with_lambda(1.0 / 60.0)
        .with_power_down_threshold(0.05)
        .with_replications(8)
        .with_horizon(20_000.0)
        .with_warmup(500.0);
    s.profile = ProfileSpec::Msp430Class;
    s.battery = BatterySpec::Cr2032;
    s.backends = vec![BackendId::Markov, BackendId::Des];
    s
}

/// A heterogeneous star: sampler nodes, a camera node and a relay with
/// forwarded traffic — first-death vs mean lifetime.
pub fn heterogeneous_star() -> Scenario {
    let mut s = Scenario::paper_template("heterogeneous-star");
    s.description = "A star network of five PXA271 nodes: three slow environmental \
                     samplers, one busy camera node and one relay receiving forwarded \
                     packets. Reports per-node power budgets, the network's \
                     first-node-death lifetime and its bottleneck."
        .into();
    s.backends = vec![BackendId::Markov];
    s.network = Some(NetworkSpec {
        nodes: vec![
            NodeSpec {
                name: "sampler-0".into(),
                event_rate: 0.05,
                tx_per_event: 1.0,
                rx_rate: 0.0,
                radio: None,
            },
            NodeSpec {
                name: "sampler-1".into(),
                event_rate: 0.05,
                tx_per_event: 1.0,
                rx_rate: 0.0,
                radio: None,
            },
            NodeSpec {
                name: "sampler-2".into(),
                event_rate: 0.1,
                tx_per_event: 1.0,
                rx_rate: 0.0,
                radio: None,
            },
            NodeSpec {
                name: "camera".into(),
                event_rate: 2.0,
                tx_per_event: 4.0,
                rx_rate: 0.0,
                radio: None,
            },
            NodeSpec {
                name: "relay".into(),
                event_rate: 0.2,
                tx_per_event: 1.0,
                rx_rate: 2.5,
                radio: None,
            },
        ],
        topology: None,
        radio: None,
        template: None,
    });
    s
}

/// A binary data-collection tree: forwarding load concentrates on the
/// sink-adjacent root relay, which therefore dies first — the
/// routing-induced load imbalance that determines multi-hop network
/// lifetime.
pub fn tree_collection() -> Scenario {
    let mut s = Scenario::paper_template("tree-collection");
    s.description = "Seven identical sampling nodes in a complete binary collection tree \
                     (depth 3). Every node senses at the same rate, but the root relay \
                     carries its whole subtree's traffic sink-ward, so its CPU arrival \
                     rate is 7x a leaf's and its battery dies first — the relay \
                     bottleneck that sizes multi-hop WSN lifetimes."
        .into();
    s.backends = vec![BackendId::Markov];
    s.network = Some(NetworkSpec {
        nodes: (0..7)
            .map(|i| {
                let role = match i {
                    0 => "root".to_owned(),
                    1 | 2 => format!("relay-{i}"),
                    _ => format!("leaf-{i}"),
                };
                plain_node(role, 0.5)
            })
            .collect(),
        topology: Some(TopologySpec::Tree { fanout: 2 }),
        radio: None,
        template: None,
    });
    s
}

/// A 3-hop chain evaluated by every backend — the cross-backend agreement
/// study on a topology where each node sees a different effective load.
pub fn chain_3hop() -> Scenario {
    let mut s = Scenario::paper_template("chain-3hop");
    s.description = "Three nodes in a line: the sink-adjacent relay forwards for the two \
                     behind it, so effective arrival rates are 2.4/1.6/0.8 jobs per \
                     second at hop depths 1/2/3. All four backends evaluate the base \
                     parameters; the network section uses the analytic Markov model \
                     per node. Agreement must hold within the paper's 2 pp tolerance."
        .into();
    s.cpu = s.cpu.with_lambda(0.8).with_replications(8);
    s.backends = vec![
        BackendId::Markov,
        BackendId::ErlangPhase,
        BackendId::PetriNet,
        BackendId::Des,
    ];
    s.network = Some(NetworkSpec {
        nodes: vec![
            plain_node("relay", 0.8),
            plain_node("mid", 0.8),
            plain_node("leaf", 0.8),
        ],
        topology: Some(TopologySpec::Chain),
        radio: None,
        template: None,
    });
    s
}

/// A mesh with explicit static routes: two branches of unequal depth merge
/// at different relays, so the forwarding load is asymmetric.
pub fn mesh_field() -> Scenario {
    let mut s = Scenario::paper_template("mesh-field");
    s.description = "A five-node field deployment with hand-written static routes: a \
                     gateway and a second sink-adjacent node, a camera feeding the \
                     gateway directly and two samplers routed through an intermediate \
                     hop. The explicit edge list is the mesh case of the topology \
                     schema; the report shows where the forwarding load lands."
        .into();
    s.backends = vec![BackendId::Markov];
    s.network = Some(NetworkSpec {
        nodes: vec![
            plain_node("gateway", 0.2),
            NodeSpec {
                name: "camera".into(),
                event_rate: 1.5,
                tx_per_event: 2.0,
                rx_rate: 0.0,
                radio: None,
            },
            plain_node("west-relay", 0.3),
            plain_node("sampler-a", 0.4),
            plain_node("sampler-b", 0.6),
        ],
        topology: Some(TopologySpec::Mesh {
            routes: vec![
                RouteSpec {
                    from: "gateway".into(),
                    to: "sink".into(),
                },
                RouteSpec {
                    from: "camera".into(),
                    to: "gateway".into(),
                },
                RouteSpec {
                    from: "west-relay".into(),
                    to: "sink".into(),
                },
                RouteSpec {
                    from: "sampler-a".into(),
                    to: "west-relay".into(),
                },
                RouteSpec {
                    from: "sampler-b".into(),
                    to: "west-relay".into(),
                },
            ],
        }),
        radio: None,
        template: None,
    });
    s
}

/// Table 4/5's stress axis: a large Power Up Delay breaks the
/// supplementary-variable approximation; the Erlang-phase chain and the
/// simulators stay accurate.
pub fn powerup_delay_stress() -> Scenario {
    let mut s = Scenario::paper_template("powerup-delay-stress");
    s.description = "The failure mode the paper's Tables 4/5 quantify: at D = 10 s the \
                     supplementary-variable Markov model overestimates utilization \
                     several-fold while the Erlang-phase chain, the Petri net and the \
                     DES agree. No tolerance gate — the disagreement is the result."
        .into();
    s.cpu = s
        .cpu
        .with_power_up_delay(10.0)
        .with_replications(8)
        .with_horizon(5000.0)
        .with_warmup(500.0);
    s.backends = vec![
        BackendId::Markov,
        BackendId::ErlangPhase,
        BackendId::PetriNet,
        BackendId::Des,
    ];
    s.report = ReportSpec {
        energy_horizon_s: 1000.0,
        agreement_tolerance_pp: None,
    };
    s
}

/// Schema v3's service-time axis: deterministic (fixed-length) jobs instead
/// of exponential service — only the backends whose capabilities advertise
/// `supports_service_dist` can model it.
pub fn deterministic_service() -> Scenario {
    let mut s = Scenario::paper_template("deterministic-service");
    s.description = "Sensor firmware often runs a fixed-length processing routine per \
                     reading, not an exponentially distributed one. This scenario keeps \
                     the paper's operating point but makes service deterministic at \
                     0.1 s (schema v3 `service` section). Only the Petri net and the \
                     DES can model it — the analytic backends would reject the request \
                     as Unsupported rather than report exponential numbers."
        .into();
    s.cpu = s
        .cpu
        .with_replications(8)
        .with_horizon(2000.0)
        .with_warmup(100.0);
    s.service = Some(ServiceDist::Deterministic);
    s.backends = vec![BackendId::PetriNet, BackendId::Des];
    s
}

/// Schema v4's radio axis, part 1: sweep the LPL check interval (wake-up
/// period) across otherwise identical nodes and watch the documented
/// listen-vs-preamble tradeoff — short periods burn idle listening, long
/// periods burn transmit preambles, and the energy optimum sits in between.
pub fn lpl_period_sweep() -> Scenario {
    let mut s = Scenario::paper_template("lpl-period-sweep");
    s.description = "Six identical sampling nodes (0.5 readings/s), each on a B-MAC-style \
                     full-preamble LPL radio with a different check interval: 20 ms to \
                     1 s, preamble = period. Short periods listen too often (idle cost \
                     ~ sample/period), long periods pay a full preamble per packet \
                     (tx cost ~ rate x period), so mean radio power is U-shaped in the \
                     period and the per-node CSV duty-cycle/radio columns show both \
                     slopes. The 1 s node dies first; the optimum sits near 100 ms."
        .into();
    s.backends = vec![BackendId::Markov];
    let point = |name: &str, period_s: f64| NodeSpec {
        name: name.into(),
        event_rate: 0.5,
        tx_per_event: 1.0,
        rx_rate: 0.0,
        radio: Some(RadioSpec::BMac {
            check_interval_s: period_s,
            preamble_s: period_s,
        }),
    };
    s.network = Some(NetworkSpec {
        nodes: vec![
            point("p-20ms", 0.02),
            point("p-50ms", 0.05),
            point("p-100ms", 0.1),
            point("p-250ms", 0.25),
            point("p-500ms", 0.5),
            point("p-1s", 1.0),
        ],
        topology: None,
        radio: None,
        template: None,
    });
    s
}

/// Schema v4's radio axis, part 2: heterogeneous MACs in one collection
/// tree — leaves strobe (X-MAC), the root relay overrides to an always-on
/// radio and pays for the whole network's rendezvous.
pub fn mac_heterogeneous_tree() -> Scenario {
    let mut s = Scenario::paper_template("mac-heterogeneous-tree");
    s.description = "The tree-collection deployment with a schema v4 radio section: the \
                     network default is a strobed-preamble X-MAC (0.5 s check interval, \
                     ~1% duty cycle), but the sink-adjacent root overrides to an \
                     always-on cc2420 so it never misses a strobe from its busy \
                     subtree. The override makes the bottleneck-relay metric \
                     MAC-sensitive: the root's radio, not its forwarded packet count, \
                     is what kills it first."
        .into();
    s.backends = vec![BackendId::Markov];
    let mut nodes: Vec<NodeSpec> = (0..7)
        .map(|i| {
            let role = match i {
                0 => "root".to_owned(),
                1 | 2 => format!("relay-{i}"),
                _ => format!("leaf-{i}"),
            };
            plain_node(role, 0.5)
        })
        .collect();
    nodes[0].radio = Some(RadioSpec::Preset("cc2420-always-on".into()));
    s.network = Some(NetworkSpec {
        nodes,
        topology: Some(TopologySpec::Tree { fanout: 2 }),
        radio: Some(RadioSpec::XMac {
            check_interval_s: 0.5,
            strobe_s: 0.004,
            ack_s: 0.001,
        }),
        template: None,
    });
    s
}

/// All built-in scenarios, in presentation order.
pub fn all() -> Vec<Scenario> {
    vec![
        paper_defaults(),
        threshold_tuning(),
        surveillance_bursty(),
        habitat_monitoring(),
        heterogeneous_star(),
        tree_collection(),
        chain_3hop(),
        mesh_field(),
        powerup_delay_stress(),
        deterministic_service(),
        lpl_period_sweep(),
        mac_heterogeneous_tree(),
    ]
}

/// Look a built-in up by name.
pub fn find(name: &str) -> Result<Scenario, ScenarioError> {
    all()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| ScenarioError::UnknownBuiltin(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_at_least_five_scenarios() {
        assert!(all().len() >= 5);
    }

    #[test]
    fn every_builtin_validates() {
        for s in all() {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.description.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn find_by_name() {
        assert_eq!(find("paper-defaults").unwrap().name, "paper-defaults");
        assert!(matches!(
            find("nope"),
            Err(ScenarioError::UnknownBuiltin(_))
        ));
    }

    #[test]
    fn library_covers_the_feature_space() {
        let scenarios = all();
        assert!(
            scenarios.iter().any(|s| s.sweep.is_some()),
            "a sweep scenario"
        );
        assert!(
            scenarios.iter().any(|s| s.network.is_some()),
            "a network scenario"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.workload.as_ref().is_some_and(|w| !w.is_poisson())),
            "a non-Poisson workload scenario"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.backends.contains(&BackendId::ErlangPhase)),
            "an Erlang-phase scenario"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.service.as_ref().is_some_and(|d| !d.is_exponential())),
            "a non-exponential service scenario"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.network.as_ref().is_some_and(
                    |n| n.radio.is_some() && n.nodes.iter().any(|x| x.radio.is_some())
                )),
            "a scenario with both a network radio and a per-node override"
        );
        let topologies: Vec<&str> = scenarios
            .iter()
            .filter_map(|s| s.network.as_ref())
            .filter_map(|n| n.topology.as_ref())
            .map(|t| t.label())
            .collect();
        for shape in ["tree", "chain", "mesh"] {
            assert!(topologies.contains(&shape), "a {shape} topology scenario");
        }
    }

    #[test]
    fn tree_collection_shows_relay_bottleneck() {
        // Acceptance criterion: in the built-in tree, the sink-adjacent
        // relay's lifetime is strictly shorter than every leaf's.
        let mut s = tree_collection();
        s.cpu = s.cpu.with_replications(2).with_horizon(300.0);
        let report = crate::runner::run_scenario(&s).unwrap();
        let net = report.network.unwrap();
        assert_eq!(net.bottleneck, "root");
        assert_eq!(net.bottleneck_relay, "root");
        assert_eq!(net.max_hop_depth, 3);
        let root = net.nodes.iter().find(|n| n.name == "root").unwrap();
        assert!((root.forwarded_rx_pkts_s - 3.0).abs() < 1e-12);
        for leaf in net.nodes.iter().filter(|n| n.name.starts_with("leaf")) {
            assert!(
                root.lifetime_days < leaf.lifetime_days,
                "root {} vs {} {}",
                root.lifetime_days,
                leaf.name,
                leaf.lifetime_days
            );
        }
        // Conservation at the sink: 7 nodes x 0.5 pkt/s.
        assert!((net.sink_arrival_pkts_s - 3.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_service_runs_on_capable_backends() {
        let mut s = deterministic_service();
        s.cpu = s.cpu.with_replications(3).with_horizon(800.0);
        let report = crate::runner::run_scenario(&s).unwrap();
        assert_eq!(report.backends.len(), 2);
        // Fixed-length jobs: utilization stays ρ, and the two capable
        // backends agree with each other.
        for b in &report.backends {
            assert!((b.fractions.active - 0.1).abs() < 0.02, "{:?}", b);
        }
        assert_eq!(report.agreement.len(), 1);
        assert!(
            report.agreement[0].mean_abs_delta_pp < 2.0,
            "{:?}",
            report.agreement[0]
        );
    }

    #[test]
    fn lpl_period_sweep_shows_listen_vs_preamble_tradeoff() {
        // Acceptance criterion: the period sweep is U-shaped — the shortest
        // period loses to idle listening, the longest to transmit
        // preambles, and an interior point wins.
        let mut s = lpl_period_sweep();
        s.cpu = s.cpu.with_replications(2).with_horizon(300.0);
        let report = crate::runner::run_scenario(&s).unwrap();
        let net = report.network.unwrap();
        let power = |n: &str| {
            net.nodes
                .iter()
                .find(|x| x.name == n)
                .unwrap()
                .total_power_mw
        };
        // Left slope: idle listening falls as the period grows.
        assert!(power("p-20ms") > power("p-50ms"), "listen cost slope");
        // Right slope: preamble cost rises with the period.
        assert!(power("p-250ms") < power("p-500ms"), "preamble cost slope");
        assert!(power("p-500ms") < power("p-1s"), "preamble cost slope");
        // Interior optimum: both extremes lose to the middle.
        let best = net
            .nodes
            .iter()
            .min_by(|a, b| a.total_power_mw.total_cmp(&b.total_power_mw))
            .unwrap();
        assert!(
            best.name == "p-50ms" || best.name == "p-100ms",
            "optimum should be interior, got {}",
            best.name
        );
        // The long-period node dies first.
        assert_eq!(net.bottleneck, "p-1s");
        // Duty cycles fall monotonically with the period in the CSV-visible
        // columns: 2.5 ms sample over the period.
        let duty = |n: &str| {
            net.nodes
                .iter()
                .find(|x| x.name == n)
                .unwrap()
                .radio_duty_cycle
        };
        assert!((duty("p-20ms") - 0.125).abs() < 1e-12);
        assert!((duty("p-1s") - 0.0025).abs() < 1e-12);
        for n in &net.nodes {
            assert_eq!(n.radio_spec, "b-mac");
        }
    }

    #[test]
    fn mac_heterogeneous_tree_root_pays_for_the_override() {
        let mut s = mac_heterogeneous_tree();
        s.cpu = s.cpu.with_replications(2).with_horizon(300.0);
        let report = crate::runner::run_scenario(&s).unwrap();
        let net = report.network.unwrap();
        assert_eq!(net.radio, "x-mac");
        let root = net.nodes.iter().find(|n| n.name == "root").unwrap();
        assert_eq!(root.radio_spec, "cc2420-always-on");
        assert_eq!(root.radio_duty_cycle, 1.0);
        // The always-on override dominates the root's budget: its radio
        // out-draws every strobing node — including the mid relays, whose
        // strobed preambles carry three times the root's *own* traffic.
        for other in net.nodes.iter().filter(|n| n.name != "root") {
            assert_eq!(other.radio_spec, "x-mac");
            assert!((other.radio_duty_cycle - 0.01).abs() < 1e-12);
            assert!(root.radio_power_mw > 2.0 * other.radio_power_mw);
        }
        assert_eq!(net.bottleneck, "root");
        assert_eq!(net.bottleneck_relay, "root");
    }

    #[test]
    fn mesh_field_routes_resolve() {
        let mut s = mesh_field();
        s.cpu = s.cpu.with_replications(2).with_horizon(300.0);
        let report = crate::runner::run_scenario(&s).unwrap();
        let net = report.network.unwrap();
        assert_eq!(net.topology, "mesh");
        assert_eq!(net.max_hop_depth, 2);
        let gateway = net.nodes.iter().find(|n| n.name == "gateway").unwrap();
        let west = net.nodes.iter().find(|n| n.name == "west-relay").unwrap();
        // camera: 1.5 ev/s x 2 pkts; samplers: 0.4 + 0.6 pkt/s.
        assert!((gateway.forwarded_rx_pkts_s - 3.0).abs() < 1e-12);
        assert!((west.forwarded_rx_pkts_s - 1.0).abs() < 1e-12);
        assert_eq!(net.bottleneck_relay, "gateway");
    }
}
