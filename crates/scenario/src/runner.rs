//! Scenario execution: evaluate every requested backend, check cross-backend
//! agreement, walk sweeps and analyze networks — in parallel across
//! scenarios for batch runs.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use wsnem_core::{backend, BackendId, CpuModelParams, EvalOptions};
use wsnem_energy::{Battery, PowerProfile};

use crate::error::ScenarioError;
use crate::report::{
    AggregateNetworkReport, AgreementCheck, BackendReport, CohortNodeReport, HopDepthPercentile,
    LifetimeHistogramBin, NetworkReport, NodeReport, PhaseSeconds, ScenarioReport,
    SweepPointReport, SweepReport,
};
use crate::schema::Scenario;

/// Networks larger than this (and all template-declared networks, whatever
/// their size) take the structure-of-arrays fast path and report in
/// aggregate form instead of per-node rows.
pub const AGGREGATE_NODE_THRESHOLD: usize = 1000;

/// Nodes named individually in an aggregate report's worst-lifetime cohort.
const AGGREGATE_COHORT_SIZE: usize = 10;

/// Bins in an aggregate report's lifetime histogram.
const AGGREGATE_HISTOGRAM_BINS: usize = 10;

/// Hop-depth percentiles an aggregate report pins.
const AGGREGATE_HOP_PERCENTILES: [f64; 4] = [50.0, 90.0, 99.0, 100.0];

/// Utilization above which a node counts as near-unstable.
const AGGREGATE_NEAR_UNSTABLE_RHO: f64 = 0.9;

/// Aggregate wall-clock metrics for a batch run, as produced by
/// [`run_batch_with_metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchMetrics {
    /// Number of scenarios in the batch.
    pub scenarios: usize,
    /// Worker threads used (1 for the sequential path).
    pub workers: usize,
    /// Wall-clock time for the whole batch (s).
    pub wall_seconds: f64,
    /// Summed per-scenario busy time across all workers (s).
    pub busy_seconds: f64,
    /// `busy / (wall × workers)`, capped at 1 — how well the work queue
    /// kept the workers fed.
    pub utilization: f64,
    /// Completed scenarios per wall-clock second.
    pub scenarios_per_second: f64,
}

impl BatchMetrics {
    /// Build metrics from raw counts and clocks; `utilization` and
    /// `scenarios_per_second` are derived. Public so out-of-crate runners
    /// (the distributed coordinator) can rebuild whole-fleet metrics around
    /// their own cached/remote/local split.
    pub fn new(scenarios: usize, workers: usize, wall_seconds: f64, busy_seconds: f64) -> Self {
        let capacity = wall_seconds * workers as f64;
        BatchMetrics {
            scenarios,
            workers,
            wall_seconds,
            busy_seconds,
            utilization: if capacity > 0.0 {
                (busy_seconds / capacity).min(1.0)
            } else {
                0.0
            },
            scenarios_per_second: if wall_seconds > 0.0 {
                scenarios as f64 / wall_seconds
            } else {
                0.0
            },
        }
    }
}

/// Progress callback for [`run_batch_with_metrics`]: called once per finished
/// scenario with `(completed_so_far, total, scenario_name)`.
pub type BatchProgress<'a> = &'a (dyn Fn(usize, usize, &str) + Sync);

/// Run one scenario with default parallelism (DES/PN replications spread
/// over all cores).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, ScenarioError> {
    run_scenario_with_threads(scenario, None)
}

/// Run a closure on a dedicated watchdog thread, waiting at most `seconds`
/// of wall-clock time for its result.
///
/// On timeout the worker thread is *abandoned*: it stays detached, its
/// eventual result is dropped, and the caller gets
/// [`ScenarioError::Timeout`]. The leaked thread keeps burning its core
/// until the closure returns on its own — acceptable for a watchdog whose
/// job is to keep one runaway point from wedging a whole fleet, and the
/// reason batch runners cap concurrent timeouts at the worker count.
pub fn call_with_timeout<T, F>(seconds: f64, f: F) -> Result<T, ScenarioError>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name("wsnem-watchdog".into())
        .spawn(move || {
            // A send error means the watchdog already fired and the
            // receiver is gone; the result is dropped on the floor.
            let _ = tx.send(f());
        })
        .map_err(|e| ScenarioError::Io(format!("failed to spawn watchdog thread: {e}")))?;
    // Sanitize before Duration::from_secs_f64, which panics on negative,
    // NaN or overflowing inputs.
    let budget = if seconds.is_finite() {
        seconds.clamp(0.0, 1.0e9)
    } else {
        1.0e9
    };
    match rx.recv_timeout(std::time::Duration::from_secs_f64(budget)) {
        Ok(v) => Ok(v),
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(ScenarioError::Timeout { seconds }),
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(ScenarioError::Io(
            "scenario worker thread terminated without a result".into(),
        )),
    }
}

/// [`run_scenario_with_threads`] under an optional per-scenario wall-clock
/// watchdog (`--scenario-timeout`): with `timeout_seconds` set, the point is
/// marked failed with [`ScenarioError::Timeout`] instead of hanging the
/// batch.
pub fn run_scenario_bounded(
    scenario: &Scenario,
    inner_threads: Option<usize>,
    timeout_seconds: Option<f64>,
) -> Result<ScenarioReport, ScenarioError> {
    match timeout_seconds {
        None => run_scenario_with_threads(scenario, inner_threads),
        Some(seconds) => {
            let scenario = scenario.clone();
            call_with_timeout(seconds, move || {
                run_scenario_with_threads(&scenario, inner_threads)
            })?
        }
    }
}

/// Run one scenario, pinning the *inner* (per-backend replication) thread
/// count — the batch runner pins this to 1 because it already parallelizes
/// across scenarios.
pub fn run_scenario_with_threads(
    scenario: &Scenario,
    inner_threads: Option<usize>,
) -> Result<ScenarioReport, ScenarioError> {
    scenario.validate()?;
    let started = Instant::now();
    let mut phase_seconds = PhaseSeconds::default();
    let profile = scenario.profile.build()?;
    let battery = scenario.battery.build()?;

    let base_started = Instant::now();
    let backends = eval_backends(scenario, scenario.cpu, &profile, &battery, inner_threads)?;
    let agreement = agreement_checks(scenario, &backends);
    phase_seconds.base_seconds = base_started.elapsed().as_secs_f64();

    let sweep_started = Instant::now();
    let sweep = match &scenario.sweep {
        None => None,
        Some(spec) => {
            let mut points = Vec::with_capacity(spec.values.len());
            for &v in &spec.values {
                let params = spec.axis.apply(scenario.cpu, v);
                let reports = eval_backends(scenario, params, &profile, &battery, inner_threads)?;
                points.push(SweepPointReport {
                    value: v,
                    backends: reports,
                });
            }
            // Schema validation rejects empty sweeps.
            let Some((best_value, best_power_mw)) = points
                .iter()
                .map(|p| (p.value, p.backends[0].mean_power_mw))
                .min_by(|a, b| a.1.total_cmp(&b.1))
            else {
                unreachable!("validated sweep has no points")
            };
            Some(SweepReport {
                axis: spec.axis.label().to_owned(),
                points,
                best_value,
                best_power_mw,
            })
        }
    };
    phase_seconds.sweep_seconds = sweep_started.elapsed().as_secs_f64();

    let network_started = Instant::now();
    let (network, network_aggregate) = match &scenario.network {
        None => (None, None),
        Some(spec) if spec.template.is_some() || spec.node_count() > AGGREGATE_NODE_THRESHOLD => (
            None,
            Some(analyze_network_aggregate(
                scenario,
                spec,
                &profile,
                &battery,
                inner_threads,
            )?),
        ),
        Some(spec) => (
            Some(analyze_network(
                scenario,
                spec,
                &profile,
                &battery,
                inner_threads,
            )?),
            None,
        ),
    };
    phase_seconds.network_seconds = network_started.elapsed().as_secs_f64();

    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        schema_version: scenario.schema_version,
        backends,
        agreement,
        sweep,
        network,
        network_aggregate,
        phase_seconds,
        elapsed_seconds: started.elapsed().as_secs_f64(),
    })
}

/// Run many scenarios, parallelized across OS threads (`None` = available
/// parallelism). Results come back in input order; per-scenario failures do
/// not abort the batch.
pub fn run_batch(
    scenarios: &[Scenario],
    threads: Option<usize>,
) -> Vec<Result<ScenarioReport, ScenarioError>> {
    run_batch_with_metrics(scenarios, threads, None).0
}

/// [`run_batch`] plus aggregate wall-clock metrics and an optional progress
/// callback (invoked once per finished scenario, from whichever worker
/// finished it).
pub fn run_batch_with_metrics(
    scenarios: &[Scenario],
    threads: Option<usize>,
    on_done: Option<BatchProgress<'_>>,
) -> (Vec<Result<ScenarioReport, ScenarioError>>, BatchMetrics) {
    run_batch_with_options(scenarios, threads, on_done, None)
}

/// [`run_batch_with_metrics`] plus an optional per-scenario wall-clock
/// watchdog: a point that exceeds `timeout_seconds` is marked failed with
/// [`ScenarioError::Timeout`] while the rest of the batch keeps running.
pub fn run_batch_with_options(
    scenarios: &[Scenario],
    threads: Option<usize>,
    on_done: Option<BatchProgress<'_>>,
    timeout_seconds: Option<f64>,
) -> (Vec<Result<ScenarioReport, ScenarioError>>, BatchMetrics) {
    let n = scenarios.len();
    if n == 0 {
        return (Vec::new(), BatchMetrics::new(0, 0, 0.0, 0.0));
    }
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);
    let batch_started = Instant::now();
    if threads == 1 || n == 1 {
        let mut busy = 0.0;
        let mut results = Vec::with_capacity(n);
        for (i, s) in scenarios.iter().enumerate() {
            let started = Instant::now();
            results.push(run_scenario_bounded(s, None, timeout_seconds));
            busy += started.elapsed().as_secs_f64();
            if let Some(cb) = on_done {
                cb(i + 1, n, &s.name);
            }
        }
        let wall = batch_started.elapsed().as_secs_f64();
        return (results, BatchMetrics::new(n, 1, wall, busy));
    }
    // Across-scenario parallelism: pin each scenario's inner replication
    // fan-out to one thread so the batch does not oversubscribe cores.
    //
    // Scenarios are claimed from an atomic work queue rather than split
    // into static contiguous chunks: costs vary wildly (a DES-heavy
    // scenario runs orders of magnitude longer than an analytic one), and
    // static partitioning left every other worker idle at the tail while
    // one thread drained the expensive chunk.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let completed = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<ScenarioReport, ScenarioError>>> =
        (0..n).map(|_| None).collect();
    let mut busy_seconds = 0.0;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    let mut busy = 0.0;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let started = Instant::now();
                        done.push((
                            i,
                            run_scenario_bounded(&scenarios[i], Some(1), timeout_seconds),
                        ));
                        busy += started.elapsed().as_secs_f64();
                        if let Some(cb) = on_done {
                            let c = completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            cb(c + 1, n, &scenarios[i].name);
                        }
                    }
                    (done, busy)
                })
            })
            .collect();
        for w in workers {
            // A worker Err means it panicked; re-raise the original payload.
            let (done, busy) = match w.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            busy_seconds += busy;
            for (i, result) in done {
                slots[i] = Some(result);
            }
        }
    });
    let wall = batch_started.elapsed().as_secs_f64();
    // The workers partition the index range, so every slot was written.
    let results = slots
        .into_iter()
        .map(|slot| match slot {
            Some(result) => result,
            None => unreachable!("scenario left unran"),
        })
        .collect();
    (results, BatchMetrics::new(n, threads, wall, busy_seconds))
}

fn eval_backends(
    scenario: &Scenario,
    params: CpuModelParams,
    profile: &PowerProfile,
    battery: &Battery,
    inner_threads: Option<usize>,
) -> Result<Vec<BackendReport>, ScenarioError> {
    scenario
        .backends
        .iter()
        .map(|&b| eval_backend(b, scenario, params, profile, battery, inner_threads))
        .collect()
}

/// Assemble the per-evaluation options a scenario implies: inner-thread
/// pinning, the (schema v3) service distribution and — for backends that
/// honor it — the non-Poisson arrival workload.
pub(crate) fn scenario_eval_options(
    scenario: &Scenario,
    params: CpuModelParams,
    inner_threads: Option<usize>,
) -> EvalOptions {
    let custom_workload = scenario.workload.as_ref().filter(|w| !w.is_poisson());
    EvalOptions::default()
        .with_threads(inner_threads)
        .with_service(scenario.service.unwrap_or_default())
        .with_workload(custom_workload.map(|w| w.build(params.lambda)))
}

fn eval_backend(
    id: BackendId,
    scenario: &Scenario,
    params: CpuModelParams,
    profile: &PowerProfile,
    battery: &Battery,
    inner_threads: Option<usize>,
) -> Result<BackendReport, ScenarioError> {
    let registry = backend::global();
    let solver = registry.get(id).ok_or_else(|| {
        ScenarioError::Invalid(format!(
            "scenario `{}`: backend `{id}` is not registered",
            scenario.name
        ))
    })?;
    // A backend that assumes Poisson arrivals ignores the workload override;
    // its numbers are then the Poisson *approximation* and the agreement
    // section quantifies the distortion (the paper's §5 methodology).
    let custom_workload = scenario.workload.as_ref().filter(|w| !w.is_poisson());
    let poisson_approximation = custom_workload.is_some() && solver.capabilities().assumes_poisson;

    let opts = scenario_eval_options(scenario, params, inner_threads);
    let e = solver.solve(&params, &opts)?;

    Ok(BackendReport::new(
        id,
        e.fractions,
        profile,
        battery,
        scenario.report.energy_horizon_s,
        e.mean_jobs,
        e.mean_latency,
        e.eval_seconds,
        poisson_approximation,
    ))
}

/// The agreement reference: the registered ground-truth backend when the
/// scenario ran it, else the first backend (capability-driven — no enum
/// match).
pub(crate) fn reference_backend(backends: &[BackendReport]) -> &BackendReport {
    let registry = backend::global();
    backends
        .iter()
        .find(|b| {
            registry
                .capabilities_of(b.backend)
                .is_some_and(|c| c.ground_truth)
        })
        .unwrap_or(&backends[0])
}

fn agreement_checks(scenario: &Scenario, backends: &[BackendReport]) -> Vec<AgreementCheck> {
    if backends.len() < 2 {
        return Vec::new();
    }
    let reference = reference_backend(backends);
    backends
        .iter()
        .filter(|b| b.backend != reference.backend)
        .map(|b| {
            let delta = b.fractions.mean_abs_delta_pct(&reference.fractions);
            let energy_rel_error = if reference.energy.total_mj != 0.0 {
                (b.energy.total_mj - reference.energy.total_mj) / reference.energy.total_mj
            } else {
                0.0
            };
            AgreementCheck {
                backend: b.backend,
                reference: reference.backend,
                mean_abs_delta_pp: delta,
                energy_rel_error,
                within_tolerance: scenario
                    .report
                    .agreement_tolerance_pp
                    .map(|tol| delta <= tol),
            }
        })
        .collect()
}

/// The cheapest backend the scenario requested, by capability cost rank
/// (analytic over simulated) — no enum match, so custom backends slot in.
fn cheapest_backend(scenario: &Scenario, registry: &wsnem_core::BackendRegistry) -> BackendId {
    // Schema validation rejects empty backend lists.
    let Some(backend) = scenario.backends.iter().copied().min_by_key(|&b| {
        registry
            .capabilities_of(b)
            .map(|c| c.cost_rank)
            .unwrap_or(u8::MAX)
    }) else {
        unreachable!("validated scenario has no backends")
    };
    backend
}

fn analyze_network(
    scenario: &Scenario,
    spec: &crate::schema::NetworkSpec,
    profile: &PowerProfile,
    battery: &Battery,
    inner_threads: Option<usize>,
) -> Result<NetworkReport, ScenarioError> {
    // The network layer evaluates one node at a time.
    let registry = backend::global();
    let backend = cheapest_backend(scenario, registry);
    // Stars and routed topologies share one code path: a star is a routed
    // network whose forwarding loads are all zero, so the per-node numbers
    // are bit-identical to the v1 star analysis.
    let net = spec.build_network(scenario.cpu, profile, battery)?;
    let analysis = net
        .analyze_with_threads(backend, inner_threads)
        .map_err(|e| ScenarioError::Invalid(format!("scenario `{}`: {e}", scenario.name)))?;
    let bottleneck = analysis
        .bottleneck()
        .map(|n| n.analysis.name.clone())
        .unwrap_or_default();
    let bottleneck_relay = analysis
        .bottleneck_relay()
        .map(|n| n.analysis.name.clone())
        .unwrap_or_default();
    Ok(NetworkReport {
        backend,
        topology: spec
            .topology
            .as_ref()
            .map(|t| t.label())
            .unwrap_or("star")
            .to_owned(),
        nodes: analysis
            .per_node
            .iter()
            .enumerate()
            .map(|(i, n)| NodeReport {
                name: n.analysis.name.clone(),
                cpu_fractions: n.analysis.cpu_fractions,
                cpu_power_mw: n.analysis.cpu_power_mw,
                radio_power_mw: n.analysis.radio_power_mw,
                total_power_mw: n.analysis.total_power_mw,
                lifetime_days: n.analysis.lifetime_days,
                hop_depth: n.hop_depth,
                forwarded_rx_pkts_s: n.forwarded_rx_pkts_s,
                radio_spec: spec.radio_spec_for(i).label().to_owned(),
                radio_duty_cycle: n.analysis.radio_duty_cycle,
            })
            .collect(),
        first_death_days: analysis.first_death_days(),
        mean_lifetime_days: analysis.mean_lifetime_days(),
        bottleneck,
        max_hop_depth: analysis.max_hop_depth(),
        bottleneck_relay,
        sink_arrival_pkts_s: analysis.sink_arrival_pkts_s,
        radio: spec
            .radio
            .as_ref()
            .map(|r| r.label().to_owned())
            .unwrap_or_else(|| wsnem_wsn::DEFAULT_RADIO_PRESET.to_owned()),
    })
}

/// Analyze a large or template-declared network on the structure-of-arrays
/// fast path and reduce it to streaming aggregates — never materializing
/// per-node report rows, so a 10^6-node report stays a few hundred bytes.
fn analyze_network_aggregate(
    scenario: &Scenario,
    spec: &crate::schema::NetworkSpec,
    profile: &PowerProfile,
    battery: &Battery,
    inner_threads: Option<usize>,
) -> Result<AggregateNetworkReport, ScenarioError> {
    let registry = backend::global();
    let backend = cheapest_backend(scenario, registry);
    let soa = spec.build_soa(scenario.cpu, profile, battery)?;
    let analysis = soa
        .analyze_with(registry, backend, &EvalOptions::default(), inner_threads)
        .map_err(|e| ScenarioError::Invalid(format!("scenario `{}`: {e}", scenario.name)))?;
    let bottleneck = analysis
        .bottleneck()
        .map(|i| soa.name(i))
        .unwrap_or_default();
    let bottleneck_relay = analysis
        .bottleneck_relay()
        .map(|i| soa.name(i))
        .unwrap_or_default();
    let worst_lifetime_cohort = analysis
        .worst_lifetime_cohort(AGGREGATE_COHORT_SIZE)
        .into_iter()
        .map(|i| CohortNodeReport {
            name: soa.name(i),
            hop_depth: analysis.depths[i],
            forwarded_rx_pkts_s: analysis.forwarded[i],
            rho: analysis.rho[i],
            total_power_mw: analysis.total_power_mw[i],
            lifetime_days: analysis.lifetime_days[i],
        })
        .collect();
    Ok(AggregateNetworkReport {
        backend,
        topology: spec
            .topology
            .as_ref()
            .map(|t| t.label())
            .unwrap_or("star")
            .to_owned(),
        node_count: soa.len() as u64,
        first_death_days: analysis.first_death_days(),
        mean_lifetime_days: analysis.mean_lifetime_days(),
        total_power_mw: analysis.total_power_mw(),
        sink_arrival_pkts_s: analysis.sink_arrival_pkts_s,
        max_hop_depth: analysis.max_hop_depth(),
        bottleneck,
        bottleneck_relay,
        hop_depth_percentiles: analysis
            .hop_depth_percentiles(&AGGREGATE_HOP_PERCENTILES)
            .into_iter()
            .map(|(percentile, hop_depth)| HopDepthPercentile {
                percentile,
                hop_depth,
            })
            .collect(),
        lifetime_histogram: analysis
            .lifetime_histogram(AGGREGATE_HISTOGRAM_BINS)
            .into_iter()
            .map(|b| LifetimeHistogramBin {
                lo_days: b.lo,
                hi_days: b.hi,
                count: b.count,
            })
            .collect(),
        worst_lifetime_cohort,
        near_unstable_count: analysis.near_unstable_count(AGGREGATE_NEAR_UNSTABLE_RHO) as u64,
        near_unstable_rho: AGGREGATE_NEAR_UNSTABLE_RHO,
        radio: spec
            .radio
            .as_ref()
            .map(|r| r.label().to_owned())
            .unwrap_or_else(|| wsnem_wsn::DEFAULT_RADIO_PRESET.to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{
        NetworkSpec, NodeSpec, ReportSpec, SweepAxis, SweepSpec, TemplateSpec, TopologySpec,
        WorkloadSpec,
    };
    use wsnem_stats::dist::Dist;

    fn quick_scenario() -> Scenario {
        let mut s = Scenario::paper_template("quick");
        s.cpu = s
            .cpu
            .with_replications(2)
            .with_horizon(300.0)
            .with_warmup(20.0);
        s
    }

    #[test]
    fn runs_all_three_backends_and_agrees() {
        let report = run_scenario(&quick_scenario()).unwrap();
        assert_eq!(report.backends.len(), 3);
        for b in &report.backends {
            assert!(b.fractions.is_normalized(1e-6), "{:?}", b.fractions);
            assert!(b.mean_power_mw > 0.0);
            assert!(b.energy.total_mj > 0.0);
            assert!(b.battery_lifetime_days > 0.0);
            assert!(!b.poisson_approximation);
        }
        // Reference is DES; two checks (Markov, PetriNet).
        assert_eq!(report.agreement.len(), 2);
        for a in &report.agreement {
            assert_eq!(a.reference, BackendId::Des);
            assert!(a.mean_abs_delta_pp < 3.0, "{a:?}");
        }
    }

    #[test]
    fn sweep_reports_best_point() {
        let mut s = quick_scenario();
        s.backends = vec![BackendId::Markov];
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::PowerDownThreshold,
            values: vec![0.1, 0.5, 1.0],
        });
        let report = run_scenario(&s).unwrap();
        let sweep = report.sweep.unwrap();
        assert_eq!(sweep.points.len(), 3);
        // PXA271, light load: energy rises with T → smallest T wins (Fig. 5).
        assert_eq!(sweep.best_value, 0.1);
        assert_eq!(sweep.axis, "power_down_threshold");
    }

    #[test]
    fn bursty_workload_marks_poisson_approximation() {
        let mut s = quick_scenario();
        s.workload = Some(WorkloadSpec::BurstyOnOff {
            on: Dist::Deterministic(4.0),
            off: Dist::Deterministic(20.0),
            rate_on: 6.0,
        });
        s.report = ReportSpec {
            energy_horizon_s: 1000.0,
            agreement_tolerance_pp: Some(50.0),
        };
        let report = run_scenario(&s).unwrap();
        let markov = report
            .backends
            .iter()
            .find(|b| b.backend == BackendId::Markov)
            .unwrap();
        let des = report
            .backends
            .iter()
            .find(|b| b.backend == BackendId::Des)
            .unwrap();
        assert!(markov.poisson_approximation);
        assert!(!des.poisson_approximation);
        // Long quiet gaps → more standby than the Poisson approximation.
        assert!(des.fractions.standby > markov.fractions.standby);
    }

    #[test]
    fn network_section_finds_bottleneck() {
        let mut s = quick_scenario();
        s.backends = vec![BackendId::Markov];
        s.network = Some(NetworkSpec {
            nodes: vec![
                NodeSpec {
                    name: "lazy".into(),
                    event_rate: 0.02,
                    tx_per_event: 1.0,
                    rx_rate: 0.0,
                    radio: None,
                },
                NodeSpec {
                    name: "hot".into(),
                    event_rate: 2.0,
                    tx_per_event: 1.0,
                    rx_rate: 0.5,
                    radio: None,
                },
            ],
            topology: None,
            radio: None,
            template: None,
        });
        let report = run_scenario(&s).unwrap();
        let net = report.network.unwrap();
        assert_eq!(net.nodes.len(), 2);
        assert_eq!(net.bottleneck, "hot");
        assert!(net.first_death_days <= net.mean_lifetime_days);
        // v1 star semantics: one hop, nothing forwarded, no relay hot spot.
        assert_eq!(net.topology, "star");
        assert_eq!(net.max_hop_depth, 1);
        assert_eq!(net.bottleneck_relay, "");
        assert!(net.nodes.iter().all(|n| n.forwarded_rx_pkts_s == 0.0));
    }

    #[test]
    fn chain_topology_propagates_forwarding_load() {
        let mut s = quick_scenario();
        s.backends = vec![BackendId::Markov];
        let node = |name: &str| NodeSpec {
            name: name.into(),
            event_rate: 0.8,
            tx_per_event: 1.0,
            rx_rate: 0.0,
            radio: None,
        };
        s.network = Some(NetworkSpec {
            nodes: vec![node("relay"), node("mid"), node("leaf")],
            topology: Some(crate::schema::TopologySpec::Chain),
            radio: None,
            template: None,
        });
        let report = run_scenario(&s).unwrap();
        let net = report.network.unwrap();
        assert_eq!(net.topology, "chain");
        assert_eq!(net.max_hop_depth, 3);
        assert_eq!(net.bottleneck, "relay");
        assert_eq!(net.bottleneck_relay, "relay");
        assert!((net.sink_arrival_pkts_s - 2.4).abs() < 1e-12);
        let by_name = |n: &str| net.nodes.iter().find(|x| x.name == n).unwrap().clone();
        let (relay, mid, leaf) = (by_name("relay"), by_name("mid"), by_name("leaf"));
        assert_eq!((relay.hop_depth, mid.hop_depth, leaf.hop_depth), (1, 2, 3));
        assert!((relay.forwarded_rx_pkts_s - 1.6).abs() < 1e-12);
        assert!((mid.forwarded_rx_pkts_s - 0.8).abs() < 1e-12);
        assert_eq!(leaf.forwarded_rx_pkts_s, 0.0);
        // The load imbalance shows up as strictly ordered lifetimes.
        assert!(relay.lifetime_days < mid.lifetime_days);
        assert!(mid.lifetime_days < leaf.lifetime_days);
    }

    fn template_scenario(count: u64) -> Scenario {
        let mut s = quick_scenario();
        s.backends = vec![BackendId::Mg1];
        s.network = Some(NetworkSpec {
            nodes: vec![],
            topology: Some(TopologySpec::Tree { fanout: 2 }),
            radio: None,
            template: Some(TemplateSpec {
                count,
                prefix: "n".into(),
                event_rate: 0.01,
                tx_per_event: 1.0,
                rx_rate: 0.05,
            }),
        });
        s
    }

    #[test]
    fn template_network_reports_in_aggregate_form() {
        let report = run_scenario(&template_scenario(50)).unwrap();
        assert!(report.network.is_none());
        let agg = report.network_aggregate.clone().unwrap();
        assert_eq!(agg.backend, BackendId::Mg1);
        assert_eq!(agg.topology, "tree");
        assert_eq!(agg.node_count, 50);
        assert!(agg.first_death_days > 0.0);
        assert!(agg.first_death_days <= agg.mean_lifetime_days);
        // Root of a complete binary tree forwards everyone else's traffic.
        assert_eq!(agg.bottleneck, "n1");
        assert_eq!(agg.bottleneck_relay, "n1");
        assert!((agg.sink_arrival_pkts_s - 50.0 * 0.01).abs() < 1e-12);
        // fanout 2 over 50 nodes: depths 1..=5 (2^5 < 50+1 <= 2^6 - 1... 5 full levels plus a partial sixth).
        assert_eq!(agg.max_hop_depth, 6);
        // Percentiles are monotone and end at the max depth.
        let p = &agg.hop_depth_percentiles;
        assert_eq!(p.len(), 4);
        assert!(p.windows(2).all(|w| w[0].hop_depth <= w[1].hop_depth));
        assert_eq!(p.last().unwrap().hop_depth, agg.max_hop_depth);
        // Histogram covers every node exactly once.
        let total: u64 = agg.lifetime_histogram.iter().map(|b| b.count).sum();
        assert_eq!(total, 50);
        // Cohort is capped, sorted ascending, and leads with the bottleneck.
        assert_eq!(agg.worst_lifetime_cohort.len(), 10);
        assert_eq!(agg.worst_lifetime_cohort[0].name, agg.bottleneck);
        assert!(agg
            .worst_lifetime_cohort
            .windows(2)
            .all(|w| w[0].lifetime_days <= w[1].lifetime_days));
        assert_eq!(agg.near_unstable_rho, 0.9);
        // No per-node CSV rows for aggregate networks.
        assert_eq!(report.csv_rows().len(), 1);
        // The summary renders the aggregate block.
        let s = report.summary();
        assert!(s.contains("50 nodes (aggregate)"), "{s}");
        assert!(s.contains("lifetime histogram"), "{s}");
    }

    #[test]
    fn aggregate_path_matches_per_node_path_on_equivalent_network() {
        // The same homogeneous chain, declared twice: once as an explicit
        // node list (per-node path) and once as a template (SoA aggregate
        // path). Every shared aggregate must agree to f64 round-off.
        let mut explicit = quick_scenario();
        explicit.backends = vec![BackendId::Mg1];
        explicit.network = Some(NetworkSpec {
            nodes: (1..=5)
                .map(|i| NodeSpec {
                    name: format!("n{i}"),
                    event_rate: 0.3,
                    tx_per_event: 1.0,
                    rx_rate: 0.05,
                    radio: None,
                })
                .collect(),
            topology: Some(TopologySpec::Chain),
            radio: None,
            template: None,
        });
        let mut templated = explicit.clone();
        templated.network = Some(NetworkSpec {
            nodes: vec![],
            topology: Some(TopologySpec::Chain),
            radio: None,
            template: Some(TemplateSpec {
                count: 5,
                prefix: "n".into(),
                event_rate: 0.3,
                tx_per_event: 1.0,
                rx_rate: 0.05,
            }),
        });
        let per_node = run_scenario(&explicit).unwrap().network.unwrap();
        let agg = run_scenario(&templated).unwrap().network_aggregate.unwrap();
        assert_eq!(agg.node_count as usize, per_node.nodes.len());
        assert_eq!(agg.bottleneck, per_node.bottleneck);
        assert_eq!(agg.bottleneck_relay, per_node.bottleneck_relay);
        assert_eq!(agg.max_hop_depth, per_node.max_hop_depth);
        assert_eq!(agg.sink_arrival_pkts_s, per_node.sink_arrival_pkts_s);
        assert!((agg.first_death_days - per_node.first_death_days).abs() < 1e-9);
        assert!((agg.mean_lifetime_days - per_node.mean_lifetime_days).abs() < 1e-9);
        let per_node_total: f64 = per_node.nodes.iter().map(|n| n.total_power_mw).sum();
        assert!((agg.total_power_mw - per_node_total).abs() < 1e-9);
        // The cohort covers all five nodes and mirrors the per-node rows.
        assert_eq!(agg.worst_lifetime_cohort.len(), 5);
        for c in &agg.worst_lifetime_cohort {
            let row = per_node.nodes.iter().find(|n| n.name == c.name).unwrap();
            assert_eq!(c.hop_depth, row.hop_depth);
            assert_eq!(c.forwarded_rx_pkts_s, row.forwarded_rx_pkts_s);
            assert!((c.lifetime_days - row.lifetime_days).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_matches_sequential_and_keeps_order() {
        let mut a = quick_scenario();
        a.name = "a".into();
        a.backends = vec![BackendId::Markov, BackendId::Des];
        let mut b = quick_scenario();
        b.name = "b".into();
        b.backends = vec![BackendId::Markov];
        b.cpu = b.cpu.with_power_down_threshold(0.1);
        let scenarios = vec![a, b];

        let parallel = run_batch(&scenarios, Some(2));
        let sequential = run_batch(&scenarios, Some(1));
        assert_eq!(parallel.len(), 2);
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.scenario, s.scenario);
            // Replication streams are keyed by (seed, index), so thread
            // count must not change the numbers.
            for (pb, sb) in p.backends.iter().zip(&s.backends) {
                assert_eq!(pb.fractions, sb.fractions, "{}", p.scenario);
            }
        }
        assert_eq!(parallel[0].as_ref().unwrap().scenario, "a");
        assert_eq!(parallel[1].as_ref().unwrap().scenario, "b");
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(run_batch(&[], None).is_empty());
    }

    #[test]
    fn work_queue_drains_uneven_batches_in_order() {
        // More scenarios than workers, with wildly uneven costs (the
        // DES-backed ones dominate): the dynamic queue must return every
        // result, in input order, identical to the sequential run.
        let mut scenarios = Vec::new();
        for i in 0..7 {
            let mut s = quick_scenario();
            s.name = format!("s{i}");
            s.backends = if i % 3 == 0 {
                vec![BackendId::Des]
            } else {
                vec![BackendId::Markov]
            };
            scenarios.push(s);
        }
        let parallel = run_batch(&scenarios, Some(3));
        let sequential = run_batch(&scenarios, Some(1));
        assert_eq!(parallel.len(), 7);
        for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.scenario, format!("s{i}"));
            for (pb, sb) in p.backends.iter().zip(&s.backends) {
                assert_eq!(pb.fractions, sb.fractions, "{}", p.scenario);
            }
        }
    }

    #[test]
    fn batch_metrics_account_for_busy_time_and_progress() {
        let mut scenarios = Vec::new();
        for i in 0..4 {
            let mut s = quick_scenario();
            s.name = format!("m{i}");
            s.backends = vec![BackendId::Markov];
            scenarios.push(s);
        }
        let seen = std::sync::Mutex::new(Vec::new());
        let cb = |done: usize, total: usize, name: &str| {
            seen.lock().unwrap().push((done, total, name.to_owned()));
        };
        let (results, metrics) = run_batch_with_metrics(&scenarios, Some(2), Some(&cb));
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(metrics.scenarios, 4);
        assert_eq!(metrics.workers, 2);
        assert!(metrics.wall_seconds > 0.0);
        assert!(metrics.busy_seconds > 0.0);
        assert!(metrics.utilization > 0.0 && metrics.utilization <= 1.0);
        assert!(metrics.scenarios_per_second > 0.0);
        // Per-scenario phase timings sum to at most the total elapsed time.
        for r in &results {
            let r = r.as_ref().unwrap();
            let p = r.phase_seconds;
            assert!(
                p.base_seconds + p.sweep_seconds + p.network_seconds <= r.elapsed_seconds + 1e-9,
                "{p:?} vs {}",
                r.elapsed_seconds
            );
            assert!(p.base_seconds > 0.0);
        }
        // The progress callback fired once per scenario with a monotonically
        // increasing completed count; order across workers is arbitrary.
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 4);
        let mut counts: Vec<usize> = seen.iter().map(|(d, _, _)| *d).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3, 4]);
        assert!(seen.iter().all(|(_, t, _)| *t == 4));
        let mut names: Vec<&str> = seen.iter().map(|(_, _, n)| n.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["m0", "m1", "m2", "m3"]);
        // Sequential path produces metrics too.
        let (_, seq) = run_batch_with_metrics(&scenarios[..1], Some(1), None);
        assert_eq!(seq.workers, 1);
        assert!(seq.utilization > 0.0);
    }

    #[test]
    fn watchdog_bounds_runaway_scenarios() {
        // A quick closure beats the watchdog and returns its value.
        assert_eq!(call_with_timeout(5.0, || 42).unwrap(), 42);
        // A stalled closure is abandoned with a typed Timeout error.
        let err = call_with_timeout(0.05, || {
            std::thread::sleep(std::time::Duration::from_millis(400));
            0
        })
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Timeout { .. }), "{err}");
        assert!(err.to_string().contains("watchdog"), "{err}");

        // Batch path: a DES point with an absurd horizon is marked failed
        // by the watchdog while the analytic point completes normally.
        let mut slow = quick_scenario();
        slow.name = "slow".into();
        slow.backends = vec![BackendId::Des];
        slow.cpu = slow.cpu.with_replications(1).with_horizon(5.0e7);
        let mut fast = quick_scenario();
        fast.name = "fast".into();
        fast.backends = vec![BackendId::Markov];
        let (results, metrics) = run_batch_with_options(&[slow, fast], Some(2), None, Some(0.2));
        assert!(
            matches!(results[0], Err(ScenarioError::Timeout { seconds }) if seconds == 0.2),
            "{:?}",
            results[0]
        );
        assert!(results[1].is_ok(), "{:?}", results[1]);
        assert_eq!(metrics.scenarios, 2);
    }

    #[test]
    fn invalid_scenario_fails_cleanly_in_batch() {
        let mut bad = quick_scenario();
        bad.backends.clear();
        let good = quick_scenario();
        let results = run_batch(&[bad, good], Some(2));
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }
}
