//! Content-hash result caching for scenario runs.
//!
//! A fleet re-run after editing 3 of 1000 files should simulate exactly 3
//! scenarios. This module makes that true by keying finished
//! [`ScenarioReport`]s on a [128-bit FNV-1a](wsnem_stats::hash) digest of
//! the scenario's **canonical serialization** — compact JSON of the full
//! [`Scenario`] struct, which covers everything a run depends on: every
//! schema field (the `schema_version` included), the backend set, the
//! master seed and replication/horizon options inside `cpu`, workload,
//! service law, sweep, network and radio sections. Two scenarios hash
//! equal exactly when they would produce the same report; editing *any*
//! field (or bumping the schema) changes the digest and misses the cache.
//!
//! Layout: one file per entry under `.wsnem-cache/` (next to the scenario
//! files by default), named `<32-hex-digest>.entry`: the canonical key
//! string on the first line, the report JSON on the second. Lookups
//! re-serialize the probe scenario and compare the stored key line
//! byte-for-byte **before** parsing the report, so even an adversarial FNV
//! collision cannot return the wrong report and a mismatch costs no parse;
//! this keeps a 1000-hit warm run's lookup cost to one small serialize +
//! one memcmp + one report parse per scenario. A mismatch is treated as a
//! miss. Stores write through a temp file + rename so concurrent runs
//! never observe a torn entry.
//!
//! The cache format itself is versioned ([`CACHE_FORMAT`], folded into the
//! digest): when the report schema changes shape, bumping the constant
//! orphans all old entries instead of failing to deserialize them —
//! stale files are simply never looked up again and can be deleted
//! wholesale (`rm -rf .wsnem-cache`).

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use wsnem_stats::StableHasher;

use crate::error::ScenarioError;
use crate::report::ScenarioReport;
use crate::schema::Scenario;

/// Directory name the cache lives under.
pub const DIR_NAME: &str = ".wsnem-cache";

/// Cache on-disk format version, folded into every key digest. Bump when
/// the entry layout or [`ScenarioReport`] changes shape so old entries are
/// orphaned instead of misread.
pub const CACHE_FORMAT: u32 = 1;

/// How a run should use the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Look up before running, store after (the default).
    #[default]
    ReadWrite,
    /// Never look up, but store fresh results (`--refresh`: forces
    /// recompute and repopulates the cache).
    Refresh,
    /// Never look up, never store (`--no-cache`).
    Disabled,
}

/// Hit/miss counters for one batch, surfaced in the CLI batch line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Scenarios answered from the cache.
    pub hits: usize,
    /// Scenarios that had to be simulated.
    pub misses: usize,
}

/// A handle on one `.wsnem-cache/` directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

/// The canonical key string: compact JSON of the whole scenario. Compact
/// (not pretty) so unrelated formatting changes cannot perturb the digest,
/// and struct-field order is fixed by the schema definition.
pub fn canonical_key(scenario: &Scenario) -> Result<String, ScenarioError> {
    serde_json::to_string(scenario).map_err(|e| {
        ScenarioError::Parse(format!(
            "cache: cannot serialize scenario `{}`: {e}",
            scenario.name
        ))
    })
}

impl ResultCache {
    /// Open (creating if missing) the cache under `root/.wsnem-cache`.
    pub fn open_under(root: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        Self::open(root.as_ref().join(DIR_NAME))
    }

    /// Open (creating if missing) a cache at exactly `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ScenarioError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ScenarioError::Io(format!("cache: {}: {e}", dir.display())))?;
        Ok(Self { dir })
    }

    /// The directory this cache stores entries in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The 32-hex-character digest a scenario files under: FNV-1a 128 over
    /// the format-version preamble and the canonical key string.
    pub fn key_of(scenario: &Scenario) -> Result<String, ScenarioError> {
        Ok(Self::digest_of(&canonical_key(scenario)?))
    }

    /// Digest of an already-serialized canonical key (avoids serializing
    /// the scenario twice on the lookup/store paths). Public so the
    /// distributed layer, which ships canonical key strings over the wire,
    /// can verify a shard digest without re-deriving the scenario.
    pub fn digest_of_key(key: &str) -> String {
        Self::digest_of(key)
    }

    fn digest_of(key: &str) -> String {
        let mut h = StableHasher::new();
        h.write_delimited(format!("wsnem-cache-v{CACHE_FORMAT}").as_bytes());
        h.write_delimited(key.as_bytes());
        h.finish_hex()
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.entry"))
    }

    /// Look a scenario up. `Ok(Some(report))` only when an entry exists,
    /// its stored canonical key matches this scenario byte-for-byte, and
    /// the report parses. A missing, torn, or colliding entry is a miss —
    /// never an error (the run can always fall back to simulating).
    pub fn lookup(&self, scenario: &Scenario) -> Result<Option<ScenarioReport>, ScenarioError> {
        let key = canonical_key(scenario)?;
        let digest = Self::digest_of(&key);
        let Ok(text) = std::fs::read_to_string(self.entry_path(&digest)) else {
            return Ok(None);
        };
        // Key line first, report JSON second: verify the cheap memcmp
        // before paying for the report parse.
        let Some((stored_key, report_json)) = text.split_once('\n') else {
            return Ok(None);
        };
        if stored_key != key {
            return Ok(None);
        }
        let Ok(report) = serde_json::from_str::<ScenarioReport>(report_json) else {
            return Ok(None);
        };
        Ok(Some(report))
    }

    /// Store a finished report under its scenario's digest, atomically
    /// (temp file + rename), overwriting any previous entry.
    pub fn store(&self, scenario: &Scenario, report: &ScenarioReport) -> Result<(), ScenarioError> {
        let key = canonical_key(scenario)?;
        let digest = Self::digest_of(&key);
        let report_json = serde_json::to_string(report)
            .map_err(|e| ScenarioError::Parse(format!("cache: {e}")))?;
        let text = format!("{key}\n{report_json}\n");
        let path = self.entry_path(&digest);
        // Unique temp name per process *and* per store: two threads of one
        // process storing the same digest concurrently (two `run_cached`
        // calls racing on one directory) must not share a temp file, or
        // one writer's rename could publish the other's half-written
        // bytes. The process-wide counter makes every temp path distinct;
        // the rename then publishes atomically, last writer wins.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{digest}-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, text)
            .map_err(|e| ScenarioError::Io(format!("cache: {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            ScenarioError::Io(format!("cache: {}: {e}", path.display()))
        })?;
        Ok(())
    }

    /// Number of entries currently on disk (for tests and diagnostics).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.ends_with(".entry") && !n.starts_with('.'))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;
    use crate::runner::run_scenario;
    use wsnem_core::BackendId;

    fn quick(mut s: Scenario) -> Scenario {
        s.cpu = s.cpu.with_replications(2).with_horizon(200.0);
        s
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("wsnem-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let s = builtin::paper_defaults();
        let a = ResultCache::key_of(&s).unwrap();
        assert_eq!(a, ResultCache::key_of(&s).unwrap(), "deterministic");
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));

        // Every kind of edit the issue names must change the digest.
        let mut edited = s.clone();
        edited.cpu = edited.cpu.with_lambda(1.25);
        assert_ne!(a, ResultCache::key_of(&edited).unwrap(), "schema field");

        let mut edited = s.clone();
        edited.cpu = edited.cpu.with_seed(s.cpu.master_seed + 1);
        assert_ne!(a, ResultCache::key_of(&edited).unwrap(), "seed");

        let mut edited = s.clone();
        edited.backends = vec![BackendId::Markov];
        assert_ne!(a, ResultCache::key_of(&edited).unwrap(), "backend set");

        let mut edited = s.clone();
        edited.schema_version = 3;
        assert_ne!(a, ResultCache::key_of(&edited).unwrap(), "schema version");

        // Even a pure description edit misses: the canonical form is the
        // whole file, so "identical" means identical.
        let mut edited = s;
        edited.description += " (edited)";
        assert_ne!(a, ResultCache::key_of(&edited).unwrap(), "description");
    }

    #[test]
    fn store_then_lookup_round_trips_bit_identically() {
        let cache = temp_cache("roundtrip");
        let s = quick(builtin::paper_defaults());
        assert_eq!(cache.lookup(&s).unwrap(), None, "cold cache misses");
        let report = run_scenario(&s).unwrap();
        cache.store(&s, &report).unwrap();
        assert_eq!(cache.len(), 1);
        let cached = cache.lookup(&s).unwrap().expect("warm cache hits");
        assert_eq!(cached, report, "stored report returned verbatim");
        // Bit-identical through the serialized form too (what the merged
        // CSV/JSON actually renders from).
        assert_eq!(
            serde_json::to_string(&cached).unwrap(),
            serde_json::to_string(&report).unwrap()
        );
    }

    #[test]
    fn edited_scenarios_miss() {
        let cache = temp_cache("miss");
        let s = quick(builtin::paper_defaults());
        let report = run_scenario(&s).unwrap();
        cache.store(&s, &report).unwrap();
        let mut edited = s.clone();
        edited.cpu = edited.cpu.with_power_down_threshold(0.7);
        assert_eq!(cache.lookup(&edited).unwrap(), None);
        // The original still hits.
        assert!(cache.lookup(&s).unwrap().is_some());
    }

    #[test]
    fn colliding_or_torn_entries_read_as_misses() {
        let cache = temp_cache("torn");
        let s = quick(builtin::paper_defaults());
        let report = run_scenario(&s).unwrap();
        cache.store(&s, &report).unwrap();
        let digest = ResultCache::key_of(&s).unwrap();
        let path = cache.dir().join(format!("{digest}.entry"));

        // Torn entry with no key/report separator: miss, not error.
        std::fs::write(&path, "{ not an entry").unwrap();
        assert_eq!(cache.lookup(&s).unwrap(), None);

        // Right key line, torn report JSON: miss, not error.
        let key = canonical_key(&s).unwrap();
        std::fs::write(&path, format!("{key}\n{{ not json")).unwrap();
        assert_eq!(cache.lookup(&s).unwrap(), None);

        // A well-formed entry whose stored key belongs to a *different*
        // scenario (what an FNV collision would look like): miss.
        let mut other = s.clone();
        other.name = "someone-else".into();
        let other_key = canonical_key(&other).unwrap();
        let report_json = serde_json::to_string(&report).unwrap();
        std::fs::write(&path, format!("{other_key}\n{report_json}\n")).unwrap();
        assert_eq!(cache.lookup(&s).unwrap(), None, "key verification");

        // Re-storing repairs the entry.
        cache.store(&s, &report).unwrap();
        assert_eq!(cache.lookup(&s).unwrap(), Some(report));
    }

    #[test]
    fn len_counts_only_entries() {
        let cache = temp_cache("len");
        assert!(cache.is_empty());
        let s = quick(builtin::paper_defaults());
        let report = run_scenario(&s).unwrap();
        cache.store(&s, &report).unwrap();
        // A stray temp file and a dotfile are not entries.
        std::fs::write(cache.dir().join(".tmp-leftover"), "x").unwrap();
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }
}
