//! Loading and saving scenario files (JSON and TOML).

use std::path::Path;

use crate::error::ScenarioError;
use crate::schema::Scenario;

/// On-disk scenario file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFormat {
    /// JSON (`.json`).
    Json,
    /// TOML (`.toml`) — the default for hand-authored files.
    Toml,
}

impl FileFormat {
    /// Infer the format from a path's extension.
    ///
    /// `.json` and `.toml` map to their formats; an extension**less** path
    /// reads as TOML (the historical stdin-ish default). Any *other*
    /// extension is an error naming the supported list — a `fleet.yaml`
    /// used to fall through to the TOML parser and die with a baffling
    /// TOML syntax error instead.
    pub fn from_path(path: &Path) -> Result<Self, ScenarioError> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Ok(FileFormat::Json),
            Some("toml") | None => Ok(FileFormat::Toml),
            Some(other) => Err(ScenarioError::Io(format!(
                "{}: unrecognized scenario file extension `.{other}` \
                 (supported: .toml, .json; extensionless files read as TOML)",
                path.display()
            ))),
        }
    }

    /// The canonical file extension for this format.
    pub fn extension(self) -> &'static str {
        match self {
            FileFormat::Json => "json",
            FileFormat::Toml => "toml",
        }
    }
}

/// Parse a scenario from a string *without* validating it — the static
/// analyzer's entry point: a syntactically valid but semantically broken
/// scenario must still parse so every validation failure can be reported as
/// a coded diagnostic instead of one hard error.
pub fn parse_str(content: &str, format: FileFormat) -> Result<Scenario, ScenarioError> {
    match format {
        FileFormat::Json => {
            serde_json::from_str(content).map_err(|e| ScenarioError::Parse(e.to_string()))
        }
        FileFormat::Toml => {
            toml::from_str(content).map_err(|e| ScenarioError::Parse(e.to_string()))
        }
    }
}

/// Parse a scenario from a string in the given format and validate it.
pub fn from_str(content: &str, format: FileFormat) -> Result<Scenario, ScenarioError> {
    let scenario = parse_str(content, format)?;
    scenario.validate()?;
    Ok(scenario)
}

/// Read and parse a scenario file *without* validating it (format inferred
/// from the extension). See [`parse_str`].
pub fn parse(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
    let path = path.as_ref();
    let format = FileFormat::from_path(path)?;
    let content = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
    parse_str(&content, format).map_err(|e| match e {
        ScenarioError::Parse(msg) => ScenarioError::Parse(format!("{}: {msg}", path.display())),
        other => other,
    })
}

/// Load and validate a scenario file, inferring the format from the
/// extension.
pub fn load(path: impl AsRef<Path>) -> Result<Scenario, ScenarioError> {
    let path = path.as_ref();
    let scenario = parse(path)?;
    scenario.validate()?;
    Ok(scenario)
}

/// Render a scenario in the given format.
pub fn to_string(scenario: &Scenario, format: FileFormat) -> Result<String, ScenarioError> {
    match format {
        FileFormat::Json => {
            serde_json::to_string_pretty(scenario).map_err(|e| ScenarioError::Parse(e.to_string()))
        }
        FileFormat::Toml => {
            toml::to_string(scenario).map_err(|e| ScenarioError::Parse(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn format_inference() {
        let infer = |p: &str| FileFormat::from_path(Path::new(p));
        assert_eq!(infer("a.json").unwrap(), FileFormat::Json);
        assert_eq!(infer("a.toml").unwrap(), FileFormat::Toml);
        // Extensionless stays TOML (stdin-ish uses), but any *other*
        // extension is rejected up front with the supported list instead of
        // falling through to a baffling TOML parse error.
        assert_eq!(infer("a").unwrap(), FileFormat::Toml);
        for bad in ["fleet.yaml", "s.yml", "s.csv", "s.TOML"] {
            let err = infer(bad).unwrap_err().to_string();
            assert!(
                err.contains("unrecognized scenario file extension"),
                "{err}"
            );
            assert!(err.contains(".toml") && err.contains(".json"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
        assert_eq!(FileFormat::Json.extension(), "json");
        assert_eq!(FileFormat::Toml.extension(), "toml");
    }

    #[test]
    fn load_rejects_unrecognized_extension_before_reading() {
        // The path need not even exist: the extension gate fires first.
        let err = load("/nonexistent/fleet.yaml").unwrap_err().to_string();
        assert!(
            err.contains("unrecognized scenario file extension"),
            "{err}"
        );
    }

    #[test]
    fn every_builtin_round_trips_through_both_formats() {
        for s in builtin::all() {
            for format in [FileFormat::Json, FileFormat::Toml] {
                let text = to_string(&s, format).unwrap();
                let back = from_str(&text, format)
                    .unwrap_or_else(|e| panic!("{} ({format:?}): {e}\n{text}", s.name));
                assert_eq!(back, s, "{} via {format:?}", s.name);
            }
        }
    }

    #[test]
    fn load_reads_files_and_reports_path_in_errors() {
        let dir = std::env::temp_dir().join("wsnem-scenario-files-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.toml");
        let s = builtin::paper_defaults();
        std::fs::write(&path, to_string(&s, FileFormat::Toml).unwrap()).unwrap();
        assert_eq!(load(&path).unwrap(), s);

        let bad = dir.join("bad.toml");
        std::fs::write(&bad, "this is not toml = = =").unwrap();
        let err = load(&bad).unwrap_err().to_string();
        assert!(err.contains("bad.toml"), "{err}");

        assert!(matches!(
            load(dir.join("missing.toml")),
            Err(ScenarioError::Io(_))
        ));
    }

    #[test]
    fn invalid_scenarios_rejected_at_load() {
        // Parses fine but fails validation (no backends).
        let mut s = builtin::paper_defaults();
        s.backends.clear();
        let text = to_string(&s, FileFormat::Json).unwrap();
        assert!(matches!(
            from_str(&text, FileFormat::Json),
            Err(ScenarioError::Invalid(_))
        ));
    }
}
