//! The versioned, serde-backed scenario schema.
//!
//! A [`Scenario`] is a declarative description of one energy-modeling
//! experiment: CPU parameters, a power profile, a battery, an arrival
//! workload, the set of model backends to evaluate, optional sweep axes and
//! an optional star network — everything the paper's hard-coded experiment
//! functions took as Rust arguments, now loadable from JSON or TOML files.
//!
//! The schema is versioned ([`SCHEMA_VERSION`]); loaders reject files from a
//! newer schema instead of misinterpreting them, while files back to
//! [`MIN_SCHEMA_VERSION`] keep loading (v2 added the optional
//! `network.topology` section; a v1 file is a valid v2 file without it).

use serde::{Deserialize, Serialize};
use wsnem_core::{backend, BackendId, CpuModelParams, ServiceDist};
use wsnem_energy::{Battery, PowerProfile};
use wsnem_stats::dist::Dist;
use wsnem_wsn::RadioSpec;

use crate::error::ScenarioError;

/// Current scenario schema version. Bump on breaking format changes and
/// keep the golden-file test (`tests/golden_schema.rs`) in sync.
///
/// Version history:
/// * **1** — the original schema: cpu/profile/battery/workload/backends/
///   report/sweep plus an optional star `network`.
/// * **2** — `network` gains an optional `topology` section (star / chain /
///   tree / mesh with static routes) with forwarding-load propagation.
/// * **3** — optional `service` section: a [`ServiceDist`] unpinning the
///   historical "exponential service at `cpu.mu`" assumption for the
///   backends whose capabilities allow it (PetriNet, Des); backend names
///   are now validated against the solver registry with did-you-mean
///   errors.
/// * **4** — optional `network.radio` section plus per-node `radio`
///   overrides: a serializable duty-cycle MAC description
///   ([`wsnem_wsn::RadioSpec`] — presets / LPL / B-MAC / X-MAC / custom)
///   replacing the fixed CC2420-class radio every node used before.
///   Omitting both keeps the historical `cc2420-class` preset, so v1–v3
///   files load and analyze identically.
/// * **5** — optional `network.template` section ([`TemplateSpec`]): a
///   compact homogeneous node description (count + shared rates) replacing
///   the explicit node list for large networks. Template networks run on
///   the structure-of-arrays fast path ([`wsnem_wsn::SoaNetwork`]) and
///   report aggregates instead of per-node rows; a million-node collection
///   tree is a five-line file instead of a million node entries.
pub const SCHEMA_VERSION: u32 = 5;

/// Oldest schema version this build still loads. v1 files parse unchanged
/// (the v2 additions are optional) and produce identical results.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// A declarative scenario definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Schema version this file was written against (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Unique scenario name (kebab-case by convention).
    pub name: String,
    /// One-paragraph human description.
    pub description: String,
    /// Shared CPU model parameters (λ, μ, T, D, horizon, replications, seed).
    pub cpu: CpuModelParams,
    /// CPU power profile.
    pub profile: ProfileSpec,
    /// Battery powering the node.
    pub battery: BatterySpec,
    /// Arrival workload. `None` means the paper's default: open Poisson
    /// arrivals at rate `cpu.lambda` (the only workload the analytic
    /// backends model; richer workloads drive the DES backend and the
    /// cross-backend agreement report quantifies the distortion).
    pub workload: Option<WorkloadSpec>,
    /// Service-time distribution (schema v3). `None` keeps the paper's
    /// exponential service at rate `cpu.mu`. A non-exponential choice
    /// restricts `backends` to those whose capabilities advertise
    /// `supports_service_dist` — requesting it from an analytic backend is
    /// a validation error, never a silent exponential fallback.
    pub service: Option<ServiceDist>,
    /// Model backends to evaluate, in order.
    pub backends: Vec<BackendId>,
    /// Report settings (energy horizon, agreement tolerance).
    pub report: ReportSpec,
    /// Optional one-axis parameter sweep.
    pub sweep: Option<SweepSpec>,
    /// Optional star network of nodes sharing this scenario's CPU/profile/
    /// battery but with per-node sensing rates and radio traffic.
    pub network: Option<NetworkSpec>,
}

/// Deprecated alias of [`BackendId`], kept so pre-registry code compiles
/// unchanged and schema v1/v2 files keep loading byte-identically (the
/// serialized names are the same). The old `Backend::assumes_poisson`
/// metadata now lives in each solver's [`wsnem_core::Capabilities`].
pub type Backend = BackendId;

/// Power profile selection: a named preset or custom per-state rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProfileSpec {
    /// Intel PXA271 — the paper's Table 3.
    Pxa271,
    /// TI MSP430-class synthetic composite.
    Msp430Class,
    /// ATmega128L-class synthetic composite.
    Atmega128lClass,
    /// Custom per-state power rates (mW).
    Custom {
        /// Profile name.
        name: String,
        /// Standby power (mW).
        standby_mw: f64,
        /// Power-up power (mW).
        powerup_mw: f64,
        /// Idle power (mW).
        idle_mw: f64,
        /// Active power (mW).
        active_mw: f64,
    },
}

impl ProfileSpec {
    /// Materialize the [`PowerProfile`].
    pub fn build(&self) -> Result<PowerProfile, ScenarioError> {
        match self {
            ProfileSpec::Pxa271 => Ok(PowerProfile::pxa271()),
            ProfileSpec::Msp430Class => Ok(PowerProfile::msp430_class()),
            ProfileSpec::Atmega128lClass => Ok(PowerProfile::atmega128l_class()),
            ProfileSpec::Custom {
                name,
                standby_mw,
                powerup_mw,
                idle_mw,
                active_mw,
            } => PowerProfile::new(name.clone(), *standby_mw, *powerup_mw, *idle_mw, *active_mw)
                .map_err(|e| ScenarioError::Invalid(format!("profile: {e}"))),
        }
    }
}

/// Battery selection: a named preset or custom capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BatterySpec {
    /// Two AA alkaline cells in series.
    TwoAa,
    /// CR2032 coin cell.
    Cr2032,
    /// Custom battery.
    Custom {
        /// Rated capacity (mAh).
        capacity_mah: f64,
        /// Nominal voltage (V).
        voltage_v: f64,
        /// Usable fraction of rated capacity in `(0, 1]`.
        usable_fraction: f64,
    },
}

impl BatterySpec {
    /// Materialize the [`Battery`].
    pub fn build(&self) -> Result<Battery, ScenarioError> {
        match *self {
            BatterySpec::TwoAa => Ok(Battery::two_aa()),
            BatterySpec::Cr2032 => Ok(Battery::cr2032()),
            BatterySpec::Custom {
                capacity_mah,
                voltage_v,
                usable_fraction,
            } => {
                if !(capacity_mah > 0.0) || !(voltage_v > 0.0) {
                    return Err(ScenarioError::Invalid(
                        "battery: capacity and voltage must be > 0".into(),
                    ));
                }
                if !(usable_fraction > 0.0 && usable_fraction <= 1.0) {
                    return Err(ScenarioError::Invalid(
                        "battery: usable_fraction must be in (0, 1]".into(),
                    ));
                }
                Ok(Battery {
                    capacity_mah,
                    voltage_v,
                    usable_fraction,
                })
            }
        }
    }
}

/// Arrival workload specification (mirrors `wsnem_des::OpenWorkload` /
/// `ClosedWorkload`, in serializable form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Open Poisson arrivals at `cpu.lambda` — the paper's generator.
    Poisson,
    /// Renewal process with i.i.d. interarrival gaps.
    Renewal {
        /// Interarrival-gap distribution.
        interarrival: Dist,
    },
    /// On-off bursts: silent `off` periods, Poisson arrivals at `rate_on`
    /// during `on` periods (surveillance target transits).
    BurstyOnOff {
        /// On-period duration distribution.
        on: Dist,
        /// Off-period duration distribution.
        off: Dist,
        /// Poisson arrival rate while on.
        rate_on: f64,
    },
    /// 2-state Markov-modulated Poisson process (day/night modulation).
    Mmpp2 {
        /// Arrival rate in modulating state 0.
        rate0: f64,
        /// Arrival rate in modulating state 1.
        rate1: f64,
        /// Switching rate 0 → 1.
        switch01: f64,
        /// Switching rate 1 → 0.
        switch10: f64,
    },
    /// Replay a fixed cycle of interarrival gaps.
    Trace {
        /// Interarrival gaps (s), replayed cyclically.
        gaps: Vec<f64>,
    },
    /// Closed finite-population workload.
    Closed {
        /// Circulating customers.
        population: u32,
        /// Think-time distribution.
        think: Dist,
    },
}

impl WorkloadSpec {
    /// Build the DES workload for a scenario with arrival rate `lambda`.
    pub fn build(&self, lambda: f64) -> wsnem_des::Workload {
        use wsnem_des::{ClosedWorkload, OpenWorkload, Workload};
        match self {
            WorkloadSpec::Poisson => Workload::open_poisson(lambda),
            WorkloadSpec::Renewal { interarrival } => {
                Workload::Open(OpenWorkload::Renewal(*interarrival))
            }
            WorkloadSpec::BurstyOnOff { on, off, rate_on } => {
                Workload::Open(OpenWorkload::BurstyOnOff {
                    on: *on,
                    off: *off,
                    rate_on: *rate_on,
                })
            }
            WorkloadSpec::Mmpp2 {
                rate0,
                rate1,
                switch01,
                switch10,
            } => Workload::Open(OpenWorkload::Mmpp2 {
                rate0: *rate0,
                rate1: *rate1,
                switch01: *switch01,
                switch10: *switch10,
            }),
            WorkloadSpec::Trace { gaps } => Workload::Open(OpenWorkload::Trace(gaps.clone())),
            WorkloadSpec::Closed { population, think } => Workload::Closed(ClosedWorkload {
                population: *population,
                think: *think,
            }),
        }
    }

    /// True when this workload is (equivalent to) the analytic backends'
    /// Poisson assumption.
    pub fn is_poisson(&self) -> bool {
        matches!(self, WorkloadSpec::Poisson)
    }
}

/// Report settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSpec {
    /// Horizon (s) the energy breakdown integrates over (paper: 1000 s).
    pub energy_horizon_s: f64,
    /// Cross-backend agreement tolerance in percentage points of mean
    /// absolute state-occupancy delta (`None` = report deltas without a
    /// pass/fail verdict).
    pub agreement_tolerance_pp: Option<f64>,
}

impl Default for ReportSpec {
    fn default() -> Self {
        Self {
            energy_horizon_s: 1000.0,
            agreement_tolerance_pp: Some(2.0),
        }
    }
}

/// The swept parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Power Down Threshold `T` (s) — the paper's Fig. 4/5 axis.
    PowerDownThreshold,
    /// Power Up Delay `D` (s) — the Table 4/5 axis.
    PowerUpDelay,
    /// Arrival rate λ (jobs/s).
    Lambda,
}

impl SweepAxis {
    /// Axis label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SweepAxis::PowerDownThreshold => "power_down_threshold",
            SweepAxis::PowerUpDelay => "power_up_delay",
            SweepAxis::Lambda => "lambda",
        }
    }

    /// Apply a swept value to the base parameters.
    pub fn apply(self, params: CpuModelParams, value: f64) -> CpuModelParams {
        match self {
            SweepAxis::PowerDownThreshold => params.with_power_down_threshold(value),
            SweepAxis::PowerUpDelay => params.with_power_up_delay(value),
            SweepAxis::Lambda => params.with_lambda(value),
        }
    }
}

/// A one-axis sweep: evaluate the scenario's backends at each value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The swept parameter.
    pub axis: SweepAxis,
    /// Values to evaluate (must be non-empty).
    pub values: Vec<f64>,
}

/// A network whose nodes share the scenario CPU/profile/battery but differ
/// in sensing rate and radio traffic. Without a [`TopologySpec`] this is the
/// v1 star (every node transmits straight to the sink and `rx_rate` is
/// exogenous); with one, forwarding load propagates sink-ward and feeds each
/// relay's CPU arrival rate and radio traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// The sensor nodes. Must be empty when [`NetworkSpec::template`]
    /// describes the nodes instead.
    pub nodes: Vec<NodeSpec>,
    /// Multi-hop routing (schema v2). `None` keeps the v1 star semantics.
    pub topology: Option<TopologySpec>,
    /// Network-wide duty-cycle MAC (schema v4). `None` keeps the
    /// historical `cc2420-class` preset; individual nodes may override it
    /// via [`NodeSpec::radio`].
    pub radio: Option<RadioSpec>,
    /// Compact homogeneous node template (schema v5), mutually exclusive
    /// with `nodes`. `None` keeps the explicit node-list representation.
    pub template: Option<TemplateSpec>,
}

/// A homogeneous node population in one stanza (schema v5): `count` nodes
/// named `{prefix}1` … `{prefix}{count}`, all sharing the same sensing and
/// traffic rates. The topology helpers (star / chain / tree) lay them out
/// positionally, exactly as they would an explicit node list of the same
/// length, and analysis runs on the structure-of-arrays fast path —
/// `count = 1_000_000` is a normal scenario file, not a gigabyte of JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateSpec {
    /// Number of nodes (≥ 1).
    pub count: u64,
    /// Node-name prefix; node `i` (1-based) is `{prefix}{i}`.
    pub prefix: String,
    /// Sensing events per second per node (wired into the CPU's λ).
    pub event_rate: f64,
    /// Packets transmitted per sensing event.
    pub tx_per_event: f64,
    /// Exogenous packets received per second.
    pub rx_rate: f64,
}

/// How nodes route toward the sink (schema v2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Every node transmits directly to the sink. Unlike the `None`
    /// topology, this runs through the routed analysis (forwarding loads
    /// are all zero, so the numbers match the v1 star exactly).
    Star,
    /// A linear chain in node-list order: the first node is sink-adjacent
    /// and relays everything behind it.
    Chain,
    /// A complete tree in breadth-first node-list order: the first node is
    /// the sink-adjacent root; node `i` forwards to node `(i - 1) / fanout`.
    Tree {
        /// Children per parent (≥ 1).
        fanout: usize,
    },
    /// An explicit static route set (the mesh case): every node names its
    /// next hop once; `to = "sink"` exits the network.
    Mesh {
        /// One route per node.
        routes: Vec<RouteSpec>,
    },
}

/// One static route of a [`TopologySpec::Mesh`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteSpec {
    /// Name of the forwarding node.
    pub from: String,
    /// Name of the next hop: another node, or the literal `"sink"`.
    pub to: String,
}

impl TopologySpec {
    /// Resolve this topology into per-node next hops over `nodes`. Fails on
    /// unknown/duplicate/missing route endpoints; cycle detection happens in
    /// `wsnem_wsn::Network::validate`.
    pub fn build_next_hops(
        &self,
        nodes: &[NodeSpec],
    ) -> Result<Vec<wsnem_wsn::NextHop>, ScenarioError> {
        use wsnem_wsn::NextHop;
        let n = nodes.len();
        match self {
            TopologySpec::Star => Ok(wsnem_wsn::topology::star_next_hops(n)),
            TopologySpec::Chain => Ok(wsnem_wsn::topology::chain_next_hops(n)),
            TopologySpec::Tree { fanout } => {
                if *fanout == 0 {
                    return Err(ScenarioError::Invalid(
                        "topology: tree fanout must be >= 1".into(),
                    ));
                }
                Ok(wsnem_wsn::topology::tree_next_hops(n, *fanout))
            }
            TopologySpec::Mesh { routes } => {
                let index_of = |name: &str| nodes.iter().position(|node| node.name == name);
                let mut next: Vec<Option<NextHop>> = vec![None; n];
                for r in routes {
                    let from = index_of(&r.from).ok_or_else(|| {
                        ScenarioError::Invalid(format!(
                            "topology: route from unknown node `{}`",
                            r.from
                        ))
                    })?;
                    if next[from].is_some() {
                        return Err(ScenarioError::Invalid(format!(
                            "topology: node `{}` has more than one route",
                            r.from
                        )));
                    }
                    let hop = if r.to == "sink" {
                        NextHop::Sink
                    } else {
                        NextHop::Node(index_of(&r.to).ok_or_else(|| {
                            ScenarioError::Invalid(format!(
                                "topology: route from `{}` to unknown node `{}`",
                                r.from, r.to
                            ))
                        })?)
                    };
                    next[from] = Some(hop);
                }
                next.iter()
                    .enumerate()
                    .map(|(i, hop)| {
                        hop.ok_or_else(|| {
                            ScenarioError::Invalid(format!(
                                "topology: node `{}` has no route (orphan)",
                                nodes[i].name
                            ))
                        })
                    })
                    .collect()
            }
        }
    }

    /// Short display label for listings and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TopologySpec::Star => "star",
            TopologySpec::Chain => "chain",
            TopologySpec::Tree { .. } => "tree",
            TopologySpec::Mesh { .. } => "mesh",
        }
    }
}

/// One node of a [`NetworkSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node name.
    pub name: String,
    /// Sensing events per second (wired into the CPU's λ).
    pub event_rate: f64,
    /// Packets transmitted per sensing event.
    pub tx_per_event: f64,
    /// Packets received per second (forwarded traffic).
    pub rx_rate: f64,
    /// Per-node duty-cycle MAC override (schema v4). `None` inherits the
    /// network-level [`NetworkSpec::radio`] (or the `cc2420-class` preset
    /// when that is also absent). Relays often override: an always-on or
    /// short-check-interval radio on the sink-ward path trades the relay's
    /// battery for everyone else's preamble cost.
    pub radio: Option<RadioSpec>,
}

impl NetworkSpec {
    /// The duty-cycle MAC node `i` runs: its own override when present,
    /// else the network-level default, else the `cc2420-class` preset
    /// (exactly the radio every node ran before schema v4).
    pub fn radio_spec_for(&self, node: usize) -> RadioSpec {
        self.nodes
            .get(node)
            .and_then(|n| n.radio.clone())
            .or_else(|| self.radio.clone())
            .unwrap_or_default()
    }

    /// Materialize the routed `wsnem_wsn::Network` this spec describes
    /// (shared by validation, the runner and the CLI `topology` / `radio`
    /// commands). A missing topology builds as a star; missing radio
    /// sections lower to the `cc2420-class` preset.
    pub fn build_network(
        &self,
        cpu: CpuModelParams,
        profile: &PowerProfile,
        battery: &Battery,
    ) -> Result<wsnem_wsn::Network, ScenarioError> {
        let nodes: Vec<wsnem_wsn::NodeConfig> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let radio = self.radio_spec_for(i).lower().map_err(|e| {
                    ScenarioError::Invalid(format!("node `{}`: radio: {e}", n.name))
                })?;
                Ok(wsnem_wsn::NodeConfig {
                    name: n.name.clone(),
                    event_rate: n.event_rate,
                    cpu,
                    cpu_profile: profile.clone(),
                    radio,
                    tx_per_event: n.tx_per_event,
                    rx_rate: n.rx_rate,
                    battery: *battery,
                })
            })
            .collect::<Result<_, ScenarioError>>()?;
        let next_hop = match &self.topology {
            None => vec![wsnem_wsn::NextHop::Sink; nodes.len()],
            Some(t) => t.build_next_hops(&self.nodes)?,
        };
        Ok(wsnem_wsn::Network { nodes, next_hop })
    }

    /// Number of nodes this spec describes, without materializing them.
    pub fn node_count(&self) -> usize {
        match &self.template {
            Some(t) => t.count as usize,
            None => self.nodes.len(),
        }
    }

    /// Materialize the structure-of-arrays network this spec describes —
    /// the large-net counterpart of [`NetworkSpec::build_network`].
    ///
    /// A template spec lowers directly to flat arrays with generated names
    /// (no per-node structs at any point); an explicit node list builds the
    /// per-node network first and converts it, which fails for
    /// heterogeneous CPU/profile/battery configurations (those stay on the
    /// per-node path).
    pub fn build_soa(
        &self,
        cpu: CpuModelParams,
        profile: &PowerProfile,
        battery: &Battery,
    ) -> Result<wsnem_wsn::SoaNetwork, ScenarioError> {
        match &self.template {
            Some(t) => {
                let n = t.count as usize;
                let parent = match &self.topology {
                    None | Some(TopologySpec::Star) => wsnem_wsn::star_parents(n),
                    Some(TopologySpec::Chain) => wsnem_wsn::chain_parents(n),
                    Some(TopologySpec::Tree { fanout }) => {
                        if *fanout == 0 {
                            return Err(ScenarioError::Invalid(
                                "topology: tree fanout must be >= 1".into(),
                            ));
                        }
                        wsnem_wsn::tree_parents(n, *fanout)
                    }
                    Some(TopologySpec::Mesh { .. }) => {
                        return Err(ScenarioError::Invalid(
                            "network.template cannot be combined with a mesh topology \
                             (its static routes name specific nodes)"
                                .into(),
                        ))
                    }
                };
                let radio = self
                    .radio
                    .clone()
                    .unwrap_or_default()
                    .lower()
                    .map_err(|e| ScenarioError::Invalid(format!("network.radio: {e}")))?;
                Ok(wsnem_wsn::SoaNetwork::homogeneous(
                    parent,
                    t.prefix.clone(),
                    t.event_rate,
                    t.tx_per_event,
                    t.rx_rate,
                    cpu,
                    profile.clone(),
                    radio,
                    *battery,
                ))
            }
            None => {
                let net = self.build_network(cpu, profile, battery)?;
                wsnem_wsn::SoaNetwork::from_network(&net).map_err(ScenarioError::Invalid)
            }
        }
    }
}

impl Scenario {
    /// Validate the complete scenario (schema version, parameters, specs)
    /// against the built-in solver registry.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.validate_with(backend::global())
    }

    /// Validate against an explicit registry — the one that will actually
    /// solve, so custom solvers' capabilities are honored.
    pub fn validate_with(
        &self,
        registry: &wsnem_core::BackendRegistry,
    ) -> Result<(), ScenarioError> {
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&self.schema_version) {
            return Err(ScenarioError::UnsupportedVersion {
                found: self.schema_version,
                supported: SCHEMA_VERSION,
            });
        }
        if self.name.is_empty() {
            return Err(ScenarioError::Invalid(
                "scenario name must be non-empty".into(),
            ));
        }
        if self.backends.is_empty() {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: at least one backend required",
                self.name
            )));
        }
        for &b in &self.backends {
            if registry.get(b).is_none() {
                return Err(ScenarioError::Invalid(format!(
                    "scenario `{}`: backend `{b}` is not registered",
                    self.name
                )));
            }
        }
        self.cpu
            .validate()
            .map_err(|e| ScenarioError::Invalid(format!("scenario `{}`: cpu: {e}", self.name)))?;
        if let Some(service) = &self.service {
            if self.schema_version < 3 {
                return Err(ScenarioError::Invalid(format!(
                    "scenario `{}`: service requires schema_version >= 3 (found {})",
                    self.name, self.schema_version
                )));
            }
            service.validate(self.cpu.mu).map_err(|e| {
                ScenarioError::Invalid(format!("scenario `{}`: service: {e}", self.name))
            })?;
            if !service.is_exponential() {
                // Capability gate, driven by the registry: analytic backends
                // cannot model a general service law — fail loudly here
                // instead of letting them compute exponential numbers.
                for &b in &self.backends {
                    // Registration was verified earlier in this method.
                    let Some(caps) = registry.capabilities_of(b) else {
                        unreachable!("backend registration checked above")
                    };
                    if !caps.supports_service_dist {
                        return Err(ScenarioError::Invalid(format!(
                            "scenario `{}`: backend `{b}` does not support the \
                             non-exponential service distribution ({}); request only \
                             backends whose capabilities include supports_service_dist \
                             (e.g. Mg1, PetriNet, Des)",
                            self.name,
                            service.label()
                        )));
                    }
                }
            }
        }
        self.profile.build()?;
        self.battery.build()?;
        if let Some(w) = &self.workload {
            w.build(self.cpu.lambda).validate().map_err(|e| {
                ScenarioError::Invalid(format!("scenario `{}`: workload: {e}", self.name))
            })?;
        }
        if !(self.report.energy_horizon_s > 0.0) {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: report.energy_horizon_s must be > 0",
                self.name
            )));
        }
        if let Some(sweep) = &self.sweep {
            if sweep.axis == SweepAxis::Lambda
                && self.workload.as_ref().is_some_and(|w| !w.is_poisson())
            {
                return Err(ScenarioError::Invalid(format!(
                    "scenario `{}`: a Lambda sweep requires the Poisson workload \
                     (non-Poisson workloads do not take their rate from cpu.lambda, \
                     so the DES backend would not actually be swept)",
                    self.name
                )));
            }
            if sweep.values.is_empty() {
                return Err(ScenarioError::Invalid(format!(
                    "scenario `{}`: sweep.values must be non-empty",
                    self.name
                )));
            }
            for &v in &sweep.values {
                sweep.axis.apply(self.cpu, v).validate().map_err(|e| {
                    ScenarioError::Invalid(format!(
                        "scenario `{}`: sweep value {v}: {e}",
                        self.name
                    ))
                })?;
            }
        }
        if let Some(net) = &self.network {
            if let Some(t) = &net.template {
                self.validate_template(net, t)?;
            } else if net.nodes.is_empty() {
                return Err(ScenarioError::Invalid(format!(
                    "scenario `{}`: network.nodes must be non-empty",
                    self.name
                )));
            }
            for n in &net.nodes {
                if !(n.event_rate > 0.0) || !(n.tx_per_event >= 0.0) || !(n.rx_rate >= 0.0) {
                    return Err(ScenarioError::Invalid(format!(
                        "scenario `{}`: node `{}`: rates must be positive/non-negative",
                        self.name, n.name
                    )));
                }
                self.cpu.with_lambda(n.event_rate).validate().map_err(|e| {
                    ScenarioError::Invalid(format!(
                        "scenario `{}`: node `{}`: {e}",
                        self.name, n.name
                    ))
                })?;
            }
            if net.radio.is_some() || net.nodes.iter().any(|n| n.radio.is_some()) {
                if self.schema_version < 4 {
                    return Err(ScenarioError::Invalid(format!(
                        "scenario `{}`: network.radio / per-node radio overrides require \
                         schema_version >= 4 (found {})",
                        self.name, self.schema_version
                    )));
                }
                if let Some(radio) = &net.radio {
                    radio.validate().map_err(|e| {
                        ScenarioError::Invalid(format!(
                            "scenario `{}`: network.radio: {e}",
                            self.name
                        ))
                    })?;
                }
                for n in &net.nodes {
                    if let Some(radio) = &n.radio {
                        radio.validate().map_err(|e| {
                            ScenarioError::Invalid(format!(
                                "scenario `{}`: node `{}`: radio: {e}",
                                self.name, n.name
                            ))
                        })?;
                    }
                }
            }
            if net.topology.is_some() && net.template.is_none() {
                if self.schema_version < 2 {
                    return Err(ScenarioError::Invalid(format!(
                        "scenario `{}`: network.topology requires schema_version >= 2 \
                         (found {})",
                        self.name, self.schema_version
                    )));
                }
                let mut seen = std::collections::BTreeSet::new();
                for n in &net.nodes {
                    if n.name == "sink" {
                        return Err(ScenarioError::Invalid(format!(
                            "scenario `{}`: `sink` is a reserved node name in routed \
                             topologies",
                            self.name
                        )));
                    }
                    if !seen.insert(n.name.as_str()) {
                        return Err(ScenarioError::Invalid(format!(
                            "scenario `{}`: duplicate node name `{}` in a routed topology",
                            self.name, n.name
                        )));
                    }
                }
                let profile = self.profile.build()?;
                let battery = self.battery.build()?;
                let network = net.build_network(self.cpu, &profile, &battery)?;
                network.validate().map_err(|e| {
                    ScenarioError::Invalid(format!("scenario `{}`: {e}", self.name))
                })?;
                // Forwarding load raises relay arrival rates: check every
                // node's *effective* λ still describes a stable queue.
                let forwarded = network.forwarded_rates().map_err(|e| {
                    ScenarioError::Invalid(format!("scenario `{}`: {e}", self.name))
                })?;
                for (n, &fwd) in net.nodes.iter().zip(&forwarded) {
                    self.cpu
                        .with_forwarding(n.event_rate, fwd)
                        .validate()
                        .map_err(|e| {
                            ScenarioError::Invalid(format!(
                                "scenario `{}`: node `{}` (forwarding {fwd:.3} pkt/s \
                                 for its subtree): {e}",
                                self.name, n.name
                            ))
                        })?;
                }
            }
        }
        Ok(())
    }

    /// Validate a template network without materializing any nodes — the
    /// whole point of the template representation is that `count` may be
    /// 10^6, so every check here is closed-form.
    ///
    /// The stability check exploits the topology structure: in a star
    /// nothing forwards; in a chain or complete tree *all* upstream
    /// traffic funnels through the sink-adjacent root, whose forwarded
    /// load is therefore exactly `(count − 1) · event_rate · tx_per_event`
    /// — the worst effective λ in the network.
    fn validate_template(&self, net: &NetworkSpec, t: &TemplateSpec) -> Result<(), ScenarioError> {
        if self.schema_version < 5 {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: network.template requires schema_version >= 5 (found {})",
                self.name, self.schema_version
            )));
        }
        if !net.nodes.is_empty() {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: network.template and network.nodes are mutually \
                 exclusive (the template *is* the node list)",
                self.name
            )));
        }
        if matches!(net.topology, Some(TopologySpec::Mesh { .. })) {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: network.template cannot be combined with a mesh \
                 topology (its static routes name specific nodes)",
                self.name
            )));
        }
        if let Some(TopologySpec::Tree { fanout: 0 }) = net.topology {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: topology: tree fanout must be >= 1",
                self.name
            )));
        }
        if t.count == 0 {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: network.template.count must be >= 1",
                self.name
            )));
        }
        if t.prefix.is_empty() {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: network.template.prefix must be non-empty",
                self.name
            )));
        }
        if !(t.event_rate > 0.0
            && t.event_rate.is_finite()
            && t.tx_per_event >= 0.0
            && t.tx_per_event.is_finite()
            && t.rx_rate >= 0.0
            && t.rx_rate.is_finite())
        {
            return Err(ScenarioError::Invalid(format!(
                "scenario `{}`: template: rates must be positive/non-negative",
                self.name
            )));
        }
        self.cpu.with_lambda(t.event_rate).validate().map_err(|e| {
            ScenarioError::Invalid(format!("scenario `{}`: template: {e}", self.name))
        })?;
        let root_forwarded = match net.topology {
            None | Some(TopologySpec::Star) => 0.0,
            // Chain and complete tree: everything upstream passes the root.
            _ => (t.count - 1) as f64 * t.event_rate * t.tx_per_event,
        };
        self.cpu
            .with_forwarding(t.event_rate, root_forwarded)
            .validate()
            .map_err(|e| {
                ScenarioError::Invalid(format!(
                    "scenario `{}`: template root `{}1` (forwarding {root_forwarded:.3} \
                     pkt/s for the other {} nodes): {e}",
                    self.name,
                    t.prefix,
                    t.count - 1
                ))
            })?;
        // `net.radio` is validated by the shared radio block in
        // `validate_with`, which runs for template networks too.
        Ok(())
    }

    /// A minimal valid scenario with the paper's defaults — the starting
    /// point for programmatic construction and the `export` CLI command.
    pub fn paper_template(name: impl Into<String>) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            name: name.into(),
            description: String::new(),
            cpu: CpuModelParams::paper_defaults(),
            profile: ProfileSpec::Pxa271,
            battery: BatterySpec::TwoAa,
            workload: None,
            service: None,
            backends: vec![BackendId::Markov, BackendId::PetriNet, BackendId::Des],
            report: ReportSpec::default(),
            sweep: None,
            network: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_validates() {
        let s = Scenario::paper_template("t");
        s.validate().unwrap();
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut s = Scenario::paper_template("t");
        s.schema_version = 999;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::UnsupportedVersion { found: 999, .. })
        ));
        s.schema_version = 0;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::UnsupportedVersion { found: 0, .. })
        ));
        // v1 files stay loadable.
        s.schema_version = 1;
        s.validate().unwrap();
    }

    #[test]
    fn invalid_pieces_rejected() {
        let mut s = Scenario::paper_template("t");
        s.backends.clear();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_template("t");
        s.cpu = s.cpu.with_lambda(100.0); // unstable queue
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_template("t");
        s.profile = ProfileSpec::Custom {
            name: "bad".into(),
            standby_mw: -1.0,
            powerup_mw: 0.0,
            idle_mw: 0.0,
            active_mw: 0.0,
        };
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_template("t");
        s.battery = BatterySpec::Custom {
            capacity_mah: 100.0,
            voltage_v: 3.0,
            usable_fraction: 1.5,
        };
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_template("t");
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::PowerDownThreshold,
            values: vec![],
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_template("t");
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::Lambda,
            values: vec![0.5, -1.0],
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_template("t");
        s.network = Some(NetworkSpec {
            nodes: vec![],
            topology: None,
            radio: None,
            template: None,
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_template("t");
        s.workload = Some(WorkloadSpec::Trace { gaps: vec![] });
        assert!(s.validate().is_err());
    }

    #[test]
    fn lambda_sweep_requires_poisson_workload() {
        let mut s = Scenario::paper_template("t");
        s.workload = Some(WorkloadSpec::Mmpp2 {
            rate0: 2.0,
            rate1: 0.5,
            switch01: 0.1,
            switch10: 0.1,
        });
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::Lambda,
            values: vec![0.5, 1.0],
        });
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("Lambda sweep"), "{err}");
        // Other axes stay allowed with non-Poisson workloads.
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::PowerDownThreshold,
            values: vec![0.5, 1.0],
        });
        s.validate().unwrap();
        // And a Lambda sweep with the explicit Poisson workload is fine.
        s.workload = Some(WorkloadSpec::Poisson);
        s.sweep = Some(SweepSpec {
            axis: SweepAxis::Lambda,
            values: vec![0.5, 1.0],
        });
        s.validate().unwrap();
    }

    #[test]
    fn specs_materialize() {
        assert_eq!(ProfileSpec::Pxa271.build().unwrap().name, "PXA271");
        assert!(ProfileSpec::Msp430Class.build().unwrap().standby_mw < 1.0);
        let b = BatterySpec::Cr2032.build().unwrap();
        assert_eq!(b.capacity_mah, 225.0);
        let w = WorkloadSpec::Poisson.build(2.0);
        w.validate().unwrap();
        let c = WorkloadSpec::Closed {
            population: 3,
            think: Dist::Exponential { rate: 1.0 },
        }
        .build(1.0);
        c.validate().unwrap();
    }

    #[test]
    fn sweep_axes_apply() {
        let p = CpuModelParams::paper_defaults();
        assert_eq!(
            SweepAxis::PowerDownThreshold
                .apply(p, 0.7)
                .power_down_threshold,
            0.7
        );
        assert_eq!(SweepAxis::PowerUpDelay.apply(p, 0.2).power_up_delay, 0.2);
        assert_eq!(SweepAxis::Lambda.apply(p, 0.3).lambda, 0.3);
        assert_eq!(SweepAxis::Lambda.label(), "lambda");
    }

    #[test]
    fn backend_metadata_is_capability_driven() {
        // The old `Backend::assumes_poisson` now lives on Capabilities; the
        // deprecated alias still gives the canonical serialized names.
        let caps = |b: BackendId| backend::global().capabilities_of(b).unwrap();
        assert!(caps(BackendId::Markov).assumes_poisson);
        assert!(caps(BackendId::PetriNet).assumes_poisson);
        assert!(!caps(BackendId::Des).assumes_poisson);
        assert_eq!(Backend::ErlangPhase.to_string(), "ErlangPhase");
    }

    #[test]
    fn service_dist_validation_rules() {
        // Needs schema v3.
        let mut s = Scenario::paper_template("svc");
        s.service = Some(ServiceDist::Exponential);
        s.validate().unwrap();
        s.schema_version = 2;
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("schema_version >= 3"), "{err}");

        // Non-exponential service restricted to capable backends.
        let mut s = Scenario::paper_template("svc");
        s.service = Some(ServiceDist::Deterministic);
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("`Markov`"), "{err}");
        assert!(err.contains("supports_service_dist"), "{err}");
        s.backends = vec![BackendId::PetriNet, BackendId::Des];
        s.validate().unwrap();

        // Invalid service parameters rejected.
        let mut s = Scenario::paper_template("svc");
        s.backends = vec![BackendId::Des];
        s.service = Some(ServiceDist::Erlang { k: 0 });
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("service"), "{err}");
    }

    #[test]
    fn unknown_backend_name_gets_did_you_mean() {
        // The satellite bugfix: a typo'd backend name in a scenario file
        // surfaces as a did-you-mean error listing the registered backends,
        // driven by the registry so it can never go stale.
        let good = crate::files::to_string(
            &Scenario::paper_template("typo"),
            crate::files::FileFormat::Json,
        )
        .unwrap();
        let bad = good.replacen("\"Markov\"", "\"Markvo\"", 1);
        let err = crate::files::from_str(&bad, crate::files::FileFormat::Json)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown backend `Markvo`"), "{err}");
        assert!(err.contains("did you mean `Markov`?"), "{err}");
        for id in backend::global().ids() {
            assert!(err.contains(id.name()), "{err} missing {id}");
        }
        // Same behaviour through the TOML path.
        let good = crate::files::to_string(
            &Scenario::paper_template("typo"),
            crate::files::FileFormat::Toml,
        )
        .unwrap();
        let bad = good.replacen("\"PetriNet\"", "\"PetriNte\"", 1);
        let err = crate::files::from_str(&bad, crate::files::FileFormat::Toml)
            .unwrap_err()
            .to_string();
        assert!(err.contains("did you mean `PetriNet`?"), "{err}");
    }

    fn node(name: &str, event_rate: f64) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            event_rate,
            tx_per_event: 1.0,
            rx_rate: 0.0,
            radio: None,
        }
    }

    fn topology_scenario(nodes: Vec<NodeSpec>, topology: TopologySpec) -> Scenario {
        let mut s = Scenario::paper_template("topo");
        s.network = Some(NetworkSpec {
            nodes,
            topology: Some(topology),
            radio: None,
            template: None,
        });
        s
    }

    #[test]
    fn topology_specs_resolve_next_hops() {
        use wsnem_wsn::NextHop;
        let nodes = vec![node("a", 0.5), node("b", 0.5), node("c", 0.5)];
        assert_eq!(
            TopologySpec::Star.build_next_hops(&nodes).unwrap(),
            vec![NextHop::Sink; 3]
        );
        assert_eq!(
            TopologySpec::Chain.build_next_hops(&nodes).unwrap(),
            vec![NextHop::Sink, NextHop::Node(0), NextHop::Node(1)]
        );
        assert_eq!(
            TopologySpec::Tree { fanout: 2 }
                .build_next_hops(&nodes)
                .unwrap(),
            vec![NextHop::Sink, NextHop::Node(0), NextHop::Node(0)]
        );
        let mesh = TopologySpec::Mesh {
            routes: vec![
                RouteSpec {
                    from: "b".into(),
                    to: "a".into(),
                },
                RouteSpec {
                    from: "a".into(),
                    to: "sink".into(),
                },
                RouteSpec {
                    from: "c".into(),
                    to: "a".into(),
                },
            ],
        };
        assert_eq!(
            mesh.build_next_hops(&nodes).unwrap(),
            vec![NextHop::Sink, NextHop::Node(0), NextHop::Node(0)]
        );
        assert_eq!(mesh.label(), "mesh");
        assert_eq!(TopologySpec::Tree { fanout: 3 }.label(), "tree");
    }

    #[test]
    fn topology_requires_schema_v2() {
        let mut s = topology_scenario(vec![node("a", 0.5)], TopologySpec::Star);
        s.validate().unwrap();
        s.schema_version = 1;
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("schema_version >= 2"), "{err}");
    }

    #[test]
    fn mesh_validation_rejects_bad_route_sets() {
        let nodes = || vec![node("a", 0.5), node("b", 0.5)];
        let cases: Vec<(Vec<RouteSpec>, &str)> = vec![
            (
                vec![RouteSpec {
                    from: "a".into(),
                    to: "sink".into(),
                }],
                "orphan",
            ),
            (
                vec![
                    RouteSpec {
                        from: "a".into(),
                        to: "sink".into(),
                    },
                    RouteSpec {
                        from: "a".into(),
                        to: "sink".into(),
                    },
                    RouteSpec {
                        from: "b".into(),
                        to: "a".into(),
                    },
                ],
                "more than one route",
            ),
            (
                vec![
                    RouteSpec {
                        from: "a".into(),
                        to: "sink".into(),
                    },
                    RouteSpec {
                        from: "b".into(),
                        to: "ghost".into(),
                    },
                ],
                "unknown node `ghost`",
            ),
            (
                vec![
                    RouteSpec {
                        from: "ghost".into(),
                        to: "sink".into(),
                    },
                    RouteSpec {
                        from: "b".into(),
                        to: "a".into(),
                    },
                ],
                "unknown node `ghost`",
            ),
            (
                vec![
                    RouteSpec {
                        from: "a".into(),
                        to: "b".into(),
                    },
                    RouteSpec {
                        from: "b".into(),
                        to: "a".into(),
                    },
                ],
                "cycle",
            ),
        ];
        for (routes, needle) in cases {
            let s = topology_scenario(nodes(), TopologySpec::Mesh { routes });
            let err = s.validate().unwrap_err().to_string();
            assert!(err.contains(needle), "expected `{needle}` in `{err}`");
        }
    }

    #[test]
    fn topology_rejects_reserved_and_duplicate_names() {
        let s = topology_scenario(vec![node("sink", 0.5)], TopologySpec::Star);
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("reserved"), "{err}");

        let s = topology_scenario(vec![node("a", 0.5), node("a", 0.5)], TopologySpec::Chain);
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");

        // Without a topology, duplicate names stay legal (v1 semantics).
        let mut s = Scenario::paper_template("t");
        s.network = Some(NetworkSpec {
            nodes: vec![node("a", 0.5), node("a", 0.5)],
            topology: None,
            radio: None,
            template: None,
        });
        s.validate().unwrap();
    }

    #[test]
    fn topology_rejects_unstable_relays() {
        // 9 leaves at 1.5 ev/s into one relay: effective λ = 0.5 + 13.5 > μ.
        let mut nodes = vec![node("relay", 0.5)];
        nodes.extend((0..9).map(|i| node(&format!("leaf-{i}"), 1.5)));
        let s = topology_scenario(nodes, TopologySpec::Tree { fanout: 9 });
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("relay") && err.contains("forwarding"), "{err}");
        assert!(err.contains("rho"), "{err}");
    }

    #[test]
    fn radio_section_requires_schema_v4() {
        let mut s = Scenario::paper_template("radio");
        s.network = Some(NetworkSpec {
            nodes: vec![node("a", 0.5)],
            topology: None,
            radio: Some(RadioSpec::default()),
            template: None,
        });
        s.validate().unwrap();
        s.schema_version = 3;
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("schema_version >= 4"), "{err}");

        // A per-node override alone also gates on v4.
        let mut s = Scenario::paper_template("radio");
        let mut n = node("a", 0.5);
        n.radio = Some(RadioSpec::Lpl {
            period_s: 0.2,
            listen_s: 0.004,
        });
        s.network = Some(NetworkSpec {
            nodes: vec![n],
            topology: None,
            radio: None,
            template: None,
        });
        s.validate().unwrap();
        s.schema_version = 3;
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("schema_version >= 4"), "{err}");
    }

    #[test]
    fn invalid_radio_specs_rejected_with_context() {
        // Network-level: unknown preset.
        let mut s = Scenario::paper_template("radio");
        s.network = Some(NetworkSpec {
            nodes: vec![node("a", 0.5)],
            topology: None,
            radio: Some(RadioSpec::Preset("cc9999".into())),
            template: None,
        });
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("network.radio"), "{err}");
        assert!(err.contains("unknown radio preset `cc9999`"), "{err}");
        assert!(err.contains("cc2420-class"), "{err}");

        // Node-level: B-MAC preamble shorter than the check interval.
        let mut s = Scenario::paper_template("radio");
        let mut n = node("a", 0.5);
        n.radio = Some(RadioSpec::BMac {
            check_interval_s: 0.2,
            preamble_s: 0.1,
        });
        s.network = Some(NetworkSpec {
            nodes: vec![n],
            topology: None,
            radio: None,
            template: None,
        });
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("node `a`: radio"), "{err}");
        assert!(err.contains("preamble"), "{err}");
    }

    #[test]
    fn radio_resolution_prefers_node_over_network_over_default() {
        let lpl = RadioSpec::Lpl {
            period_s: 0.2,
            listen_s: 0.004,
        };
        let xmac = RadioSpec::XMac {
            check_interval_s: 0.5,
            strobe_s: 0.004,
            ack_s: 0.001,
        };
        let mut override_node = node("b", 0.5);
        override_node.radio = Some(xmac.clone());
        let spec = NetworkSpec {
            nodes: vec![node("a", 0.5), override_node],
            topology: None,
            radio: Some(lpl.clone()),
            template: None,
        };
        assert_eq!(spec.radio_spec_for(0), lpl);
        assert_eq!(spec.radio_spec_for(1), xmac);
        // No network radio → the historical preset.
        let spec = NetworkSpec {
            nodes: vec![node("a", 0.5)],
            topology: None,
            radio: None,
            template: None,
        };
        assert_eq!(spec.radio_spec_for(0), RadioSpec::default());
        // And the built network carries the lowered models.
        let net = spec
            .build_network(
                CpuModelParams::paper_defaults(),
                &PowerProfile::pxa271(),
                &Battery::two_aa(),
            )
            .unwrap();
        assert_eq!(net.nodes[0].radio, wsnem_wsn::RadioModel::cc2420_class());
    }

    #[test]
    fn tree_fanout_zero_rejected() {
        let s = topology_scenario(
            vec![node("a", 0.5), node("b", 0.5)],
            TopologySpec::Tree { fanout: 0 },
        );
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("fanout"), "{err}");
    }

    fn template_net(count: u64, event_rate: f64, topology: Option<TopologySpec>) -> NetworkSpec {
        NetworkSpec {
            nodes: vec![],
            topology,
            radio: None,
            template: Some(TemplateSpec {
                count,
                prefix: "n".into(),
                event_rate,
                tx_per_event: 1.0,
                rx_rate: 0.05,
            }),
        }
    }

    fn template_scenario(net: NetworkSpec) -> Scenario {
        let mut s = Scenario::paper_template("tpl");
        s.network = Some(net);
        s
    }

    #[test]
    fn template_network_validates_and_counts_without_materializing() {
        let s = template_scenario(template_net(
            1_000_000,
            1e-6,
            Some(TopologySpec::Tree { fanout: 4 }),
        ));
        s.validate().unwrap();
        assert_eq!(s.network.as_ref().unwrap().node_count(), 1_000_000);
    }

    #[test]
    fn template_requires_schema_v5() {
        let mut s = template_scenario(template_net(10, 0.01, None));
        s.schema_version = 4;
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("schema_version >= 5"), "{err}");
        assert!(err.contains("(found 4)"), "{err}");
    }

    #[test]
    fn template_and_nodes_are_mutually_exclusive() {
        let mut net = template_net(10, 0.01, None);
        net.nodes = vec![node("a", 0.5)];
        let err = template_scenario(net).validate().unwrap_err().to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn template_rejects_mesh_topology() {
        let s = template_scenario(template_net(
            10,
            0.01,
            Some(TopologySpec::Mesh { routes: vec![] }),
        ));
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("mesh"), "{err}");
    }

    #[test]
    fn template_rejects_bad_count_prefix_and_rates() {
        let err = template_scenario(template_net(0, 0.01, None))
            .validate()
            .unwrap_err()
            .to_string();
        assert!(err.contains("count must be >= 1"), "{err}");

        let mut net = template_net(10, 0.01, None);
        net.template.as_mut().unwrap().prefix = String::new();
        let err = template_scenario(net).validate().unwrap_err().to_string();
        assert!(err.contains("prefix must be non-empty"), "{err}");

        let err = template_scenario(template_net(10, -0.5, None))
            .validate()
            .unwrap_err()
            .to_string();
        assert!(err.contains("rates"), "{err}");
    }

    #[test]
    fn template_root_stability_checked_in_closed_form() {
        // A chain funnels everyone's traffic through the first node:
        // 99 999 upstream nodes × 0.01 pkt/s ≈ 1000 pkt/s >> the paper's
        // service rate, so the root queue is unstable. Validation must say
        // so by name without building 10^5 nodes.
        let s = template_scenario(template_net(100_000, 0.01, Some(TopologySpec::Chain)));
        let err = s.validate().unwrap_err().to_string();
        assert!(err.contains("root `n1`"), "{err}");
        // A star with the same rates forwards nothing and stays valid.
        let s = template_scenario(template_net(100_000, 0.01, Some(TopologySpec::Star)));
        s.validate().unwrap();
    }

    #[test]
    fn build_soa_lowers_template_and_explicit_specs() {
        let cpu = CpuModelParams::paper_defaults();
        let profile = PowerProfile::pxa271();
        let battery = Battery::two_aa();
        // Template path: flat arrays with generated names.
        let net = template_net(7, 0.01, Some(TopologySpec::Chain));
        let soa = net.build_soa(cpu, &profile, &battery).unwrap();
        assert_eq!(soa.len(), 7);
        assert_eq!(soa.name(0), "n1");
        assert_eq!(soa.name(6), "n7");
        // Explicit homogeneous nodes convert through the per-node network.
        let spec = NetworkSpec {
            nodes: vec![node("a", 0.5), node("b", 0.5)],
            topology: Some(TopologySpec::Chain),
            radio: None,
            template: None,
        };
        let soa = spec.build_soa(cpu, &profile, &battery).unwrap();
        assert_eq!(soa.len(), 2);
        assert_eq!(soa.name(0), "a");
    }

    #[test]
    fn template_round_trips_through_toml() {
        let s = template_scenario(template_net(
            42,
            0.01,
            Some(TopologySpec::Tree { fanout: 3 }),
        ));
        let text = crate::files::to_string(&s, crate::files::FileFormat::Toml).unwrap();
        let back = crate::files::from_str(&text, crate::files::FileFormat::Toml).unwrap();
        assert_eq!(back.network, s.network);
        back.validate().unwrap();
    }
}
