//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-workspace
//! serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`) so
//! the workspace builds without network access. Supported input shapes:
//!
//! * structs with named fields,
//! * enums whose variants are unit, newtype (one unnamed field) or
//!   struct-like (named fields),
//!
//! serialized in serde's default externally-tagged representation. Generics
//! are rejected with a compile error.

#![forbid(unsafe_code)]
// A proc macro executes only at compile time, where a panic surfaces as a
// compile error on the deriving item — unwrap here can never crash at runtime.
#![allow(clippy::disallowed_methods)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&item.shape, which) {
        (Shape::Struct(fields), Which::Serialize) => ser_struct(&item.name, fields),
        (Shape::Struct(fields), Which::Deserialize) => de_struct(&item.name, fields),
        (Shape::Enum(variants), Which::Serialize) => ser_enum(&item.name, variants),
        (Shape::Enum(variants), Which::Deserialize) => de_enum(&item.name, variants),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named fields.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// One unnamed field.
    Newtype,
    /// Named fields.
    Struct(Vec<String>),
}

fn ident_name(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Strip a raw-identifier prefix for use as a string key.
fn key_of(ident: &str) -> &str {
    ident.strip_prefix("r#").unwrap_or(ident)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility up to `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("derive input ended before `struct`/`enum`".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, `crate`, ...
            }
            Some(TokenTree::Group(_)) => i += 1, // `pub(crate)` restriction
            Some(_) => i += 1,
        }
    };
    let name = tokens
        .get(i)
        .and_then(ident_name)
        .ok_or("expected a type name after `struct`/`enum`")?;
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (in-workspace subset) does not support generic type `{name}`"
        ));
    }
    // Find the brace group with the body (skips `where` clauses, which we
    // don't otherwise need to understand).
    let body = tokens[i..]
        .iter()
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| format!("`{name}`: tuple/unit shapes are not supported by this derive"))?;
    let shape = if kind == "struct" {
        Shape::Struct(parse_named_fields(body)?)
    } else {
        Shape::Enum(parse_variants(body)?)
    };
    Ok(Item { name, shape })
}

/// Split a brace-group body into top-level comma-separated chunks,
/// accounting for `<...>` nesting (delimiter groups already hide their own
/// commas).
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Skip leading attributes and visibility inside a field/variant chunk.
fn skip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    chunk.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => return &chunk[i..],
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(body) {
        let rest = skip_attrs_and_vis(&chunk);
        let name = rest
            .first()
            .and_then(ident_name)
            .ok_or("expected a field name")?;
        if !matches!(rest.get(1), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!(
                "field `{name}`: only named fields are supported by this derive"
            ));
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(body) {
        let rest = skip_attrs_and_vis(&chunk);
        let name = rest
            .first()
            .and_then(ident_name)
            .ok_or("expected a variant name")?;
        let kind = match rest.get(1) {
            None => VariantKind::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit, // discriminant
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n_fields = split_top_level(g.stream()).len();
                if n_fields != 1 {
                    return Err(format!(
                        "variant `{name}`: only newtype tuple variants are supported"
                    ));
                }
                VariantKind::Newtype
            }
            Some(other) => return Err(format!("variant `{name}`: unexpected token `{other}`")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn fields_to_map(receiver: &str, fields: &[String]) -> String {
    let mut out = String::from(
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        let key = key_of(f);
        out.push_str(&format!(
            "__m.push(({key:?}.to_string(), ::serde::Serialize::to_value(&{receiver}{f})));\n"
        ));
    }
    out.push_str("::serde::Value::Map(__m)");
    out
}

fn fields_from_map(fields: &[String]) -> String {
    // Missing keys deserialize from `Null` so `Option` fields default to
    // `None`; a required field then reports `missing field` instead.
    fields
        .iter()
        .map(|f| {
            let key = key_of(f);
            format!(
                "{f}: match ::serde::map_field_opt(__m, {key:?}) {{\n\
                 Some(__f) => ::serde::Deserialize::from_value(__f).map_err(|e| \
                 ::serde::Error::custom(format!(\"field `{key}`: {{e}}\")))?,\n\
                 None => ::serde::Deserialize::from_value(&::serde::Value::Null)\
                 .map_err(|_| ::serde::Error::missing_field({key:?}))?,\n\
                 }},\n"
            )
        })
        .collect()
}

fn ser_struct(name: &str, fields: &[String]) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{}\n}}\n}}\n",
        fields_to_map("self.", fields)
    )
}

fn de_struct(name: &str, fields: &[String]) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let __m = __v.as_map().ok_or_else(|| ::serde::Error::expected({expect:?}, __v))?;\n\
         ::std::result::Result::Ok({name} {{\n{body}}})\n}}\n}}\n",
        expect = format!("struct {name}"),
        body = fields_from_map(fields)
    )
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let key = key_of(vname);
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::Str({key:?}.to_string()),\n"
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "{name}::{vname}(__x) => ::serde::Value::Map(vec![({key:?}.to_string(), \
                 ::serde::Serialize::to_value(__x))]),\n"
            )),
            VariantKind::Struct(fields) => {
                let bindings = fields.join(", ");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {bindings} }} => {{\n{to_map}\n\
                     ::serde::Value::Map(vec![({key:?}.to_string(), ::serde::Value::Map(__m))])\n}}\n",
                    to_map = {
                        // Bindings are references in a match on `&self`-like
                        // value; build the inner map from them.
                        let mut s = String::from(
                            "let mut __m: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            let fkey = key_of(f);
                            s.push_str(&format!(
                                "__m.push(({fkey:?}.to_string(), \
                                 ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        s
                    }
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let mut str_arms = String::new();
    let mut map_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let key = key_of(vname);
        match &v.kind {
            VariantKind::Unit => {
                str_arms.push_str(&format!(
                    "{key:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
                map_arms.push_str(&format!(
                    "{key:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantKind::Newtype => map_arms.push_str(&format!(
                "{key:?} => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__inner)?)),\n"
            )),
            VariantKind::Struct(fields) => map_arms.push_str(&format!(
                "{key:?} => {{\n\
                 let __m = __inner.as_map().ok_or_else(|| \
                 ::serde::Error::expected({expect:?}, __inner))?;\n\
                 ::std::result::Result::Ok({name}::{vname} {{\n{body}}})\n}}\n",
                expect = format!("map for variant {name}::{vname}"),
                body = fields_from_map(fields)
            )),
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
         ::serde::Value::Map(__map) if __map.len() == 1 => {{\n\
         let (__tag, __inner) = &__map[0];\n\
         let _ = __inner;\n\
         match __tag.as_str() {{\n{map_arms}\
         __other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
         __other => ::std::result::Result::Err(::serde::Error::expected(\
         {expect:?}, __other)),\n}}\n}}\n}}\n",
        expect = format!("enum {name} (string or single-entry map)")
    )
}
