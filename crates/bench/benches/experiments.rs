//! Experiment-harness benchmarks: one Criterion group per paper artifact
//! (reduced budgets — the full-fidelity regeneration lives in `src/bin/`),
//! plus the E6 model-evaluation-cost comparison behind the paper's §6
//! trade-off claim ("Petri nets need long simulation; Markov models evaluate
//! an expression").

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use std::hint::black_box;
use wsnem_bench::harness::Criterion;
use wsnem_bench::{criterion_group, criterion_main};

use wsnem_core::experiments::{table4, table5, ThresholdSweep};
use wsnem_core::{CpuModel, CpuModelParams, DesCpuModel, MarkovCpuModel, PetriCpuModel};
use wsnem_energy::PowerProfile;

fn reduced_params() -> CpuModelParams {
    CpuModelParams::paper_defaults()
        .with_replications(2)
        .with_horizon(200.0)
        .with_warmup(10.0)
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("threshold_sweep_reduced", |b| {
        b.iter(|| {
            let sweep = ThresholdSweep {
                params: reduced_params(),
                t_values: vec![0.0, 0.5, 1.0],
            };
            black_box(sweep.run().expect("sweep runs"))
        });
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    let profile = PowerProfile::pxa271();
    let sweep = ThresholdSweep {
        params: reduced_params(),
        t_values: vec![0.0, 0.5, 1.0],
    }
    .run()
    .expect("sweep runs");
    g.bench_function("energy_series_from_sweep", |b| {
        b.iter(|| {
            for kind in [
                wsnem_core::BackendId::Des,
                wsnem_core::BackendId::Markov,
                wsnem_core::BackendId::PetriNet,
            ] {
                black_box(sweep.energy_series(kind, &profile));
            }
        });
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("delta_percentages_reduced", |b| {
        b.iter(|| black_box(table4(reduced_params(), &[0.001, 0.3]).expect("table4")));
    });
    g.finish();
}

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    let profile = PowerProfile::pxa271();
    g.bench_function("delta_energy_reduced", |b| {
        b.iter(|| black_box(table5(reduced_params(), &[0.001, 0.3], &profile).expect("table5")));
    });
    g.finish();
}

/// E6: what one steady-state evaluation costs per model — the §6 trade-off.
fn bench_model_eval_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_eval_cost");
    let params = CpuModelParams::paper_defaults()
        .with_replications(4)
        .with_horizon(1000.0);
    g.bench_function("markov_closed_form", |b| {
        let m = MarkovCpuModel::new(params);
        b.iter(|| black_box(m.evaluate().expect("evaluates")));
    });
    g.sample_size(10);
    g.bench_function("petri_simulation_4x1000s", |b| {
        let m = PetriCpuModel::new(params).with_threads(Some(1));
        b.iter(|| black_box(m.evaluate().expect("evaluates")));
    });
    g.bench_function("des_simulation_4x1000s", |b| {
        let m = DesCpuModel::new(params).with_threads(Some(1));
        b.iter(|| black_box(m.evaluate().expect("evaluates")));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_fig5,
    bench_table4,
    bench_table5,
    bench_model_eval_cost
);
criterion_main!(benches);
