//! Engine microbenchmarks: token-game firing throughput, DES event
//! throughput, CTMC solver scaling, RNG/distribution sampling cost.
//!
//! These quantify the substrate costs behind the §6 trade-off discussion.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use std::hint::black_box;
use wsnem_bench::harness::{BenchmarkId, Criterion, Throughput};
use wsnem_bench::{criterion_group, criterion_main};

use wsnem_bench::nets::{relay_ring_net, vanishing_pipeline_net};
use wsnem_core::build_cpu_edspn;
use wsnem_des::cpu::{CpuDes, CpuSimParams};
use wsnem_des::workload::Workload;
use wsnem_markov::{CtmcBuilder, SteadyStateMethod};
use wsnem_petri::analysis::{tangible_chain, ReachOptions};
use wsnem_petri::models::mm1k_net;
use wsnem_petri::{simulate, SimConfig};
use wsnem_stats::dist::{Dist, Sample};
use wsnem_stats::rng::{Rng64, Xoshiro256PlusPlus};

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    g.bench_function("xoshiro_next_u64", |b| {
        let mut rng = Xoshiro256PlusPlus::new(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("exponential_sample", |b| {
        let mut rng = Xoshiro256PlusPlus::new(1);
        let d = Dist::Exponential { rate: 1.0 };
        b.iter(|| black_box(d.sample(&mut rng)));
    });
    g.bench_function("gamma_sample", |b| {
        let mut rng = Xoshiro256PlusPlus::new(1);
        let d = Dist::Gamma {
            shape: 2.5,
            rate: 1.0,
        };
        b.iter(|| black_box(d.sample(&mut rng)));
    });
    g.finish();
}

fn bench_petri_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("petri_token_game");
    // ~2λ·horizon firings per run of the M/M/1/K net.
    let (net, _) = mm1k_net(1.0, 2.0, 10).expect("net builds");
    for horizon in [1_000.0, 10_000.0] {
        g.throughput(Throughput::Elements((2.0 * horizon) as u64));
        g.bench_with_input(
            BenchmarkId::new("mm1k", horizon as u64),
            &horizon,
            |b, &h| {
                let cfg = SimConfig::for_horizon(h);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = Xoshiro256PlusPlus::new(seed);
                    black_box(simulate(&net, &cfg, &[], &mut rng).expect("simulates"))
                });
            },
        );
    }
    // The paper's Fig. 3 net (8 transitions, immediates + deterministics).
    let (net, _) = build_cpu_edspn(1.0, 10.0, 0.5, 0.001).expect("paper net builds");
    g.throughput(Throughput::Elements(6_000));
    g.bench_function("paper_cpu_edspn_1000s", |b| {
        let cfg = SimConfig::for_horizon(1000.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = Xoshiro256PlusPlus::new(seed);
            black_box(simulate(&net, &cfg, &[], &mut rng).expect("simulates"))
        });
    });
    // Immediate-heavy net: every arrival walks an 8-stage vanishing chain,
    // stressing the vanishing-resolution path in both execution modes.
    let net = vanishing_pipeline_net(8);
    g.throughput(Throughput::Elements(10 * 1_000));
    g.bench_function("vanishing_pipeline_sim_1000s", |b| {
        let cfg = SimConfig::for_horizon(1000.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = Xoshiro256PlusPlus::new(seed);
            black_box(simulate(&net, &cfg, &[], &mut rng).expect("simulates"))
        });
    });
    g.bench_function("vanishing_pipeline_tangible_chain", |b| {
        b.iter(|| black_box(tangible_chain(&net, ReachOptions::default()).expect("eliminates")));
    });
    // Many-timed-transition stress: a closed relay ring with every hop
    // enabled all the time. Event count is held at ~n·horizon = 8192
    // across sizes, so the per-event cost scaling is what the numbers show
    // (the scan engine was O(n) per event here, the heap is O(log n)).
    for n in [32usize, 128, 256] {
        let net = relay_ring_net(n);
        let horizon = 8192.0 / n as f64;
        g.throughput(Throughput::Elements(8192));
        g.bench_with_input(BenchmarkId::new("relay_ring", n), &horizon, |b, &h| {
            let cfg = SimConfig::for_horizon(h);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = Xoshiro256PlusPlus::new(seed);
                black_box(simulate(&net, &cfg, &[], &mut rng).expect("simulates"))
            });
        });
    }
    g.finish();
}

fn bench_des_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_cpu");
    let sim = CpuDes::new(
        CpuSimParams::exponential_service(10.0, 0.5, 0.001),
        Workload::open_poisson(1.0),
    )
    .expect("sim builds");
    g.throughput(Throughput::Elements(3_000));
    g.bench_function("paper_cpu_1000s", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sim.run_with_seed(seed))
        });
    });
    g.finish();
}

fn bench_ctmc_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctmc_steady_state");
    for n in [16usize, 128, 512] {
        // Birth–death chain of n states.
        let mut b = CtmcBuilder::new(n);
        for i in 0..n - 1 {
            b.rate(i, i + 1, 1.0).expect("rate ok");
            b.rate(i + 1, i, 2.0).expect("rate ok");
        }
        let chain = b.build().expect("chain builds");
        g.bench_with_input(BenchmarkId::new("dense", n), &chain, |bch, chain| {
            bch.iter(|| {
                black_box(
                    chain
                        .steady_state(SteadyStateMethod::Dense)
                        .expect("solves"),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("gauss_seidel", n), &chain, |bch, chain| {
            bch.iter(|| {
                black_box(
                    chain
                        .steady_state(SteadyStateMethod::GaussSeidel {
                            max_iter: 100_000,
                            tol: 1e-12,
                        })
                        .expect("solves"),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rng,
    bench_petri_engine,
    bench_des_engine,
    bench_ctmc_solvers
);
criterion_main!(benches);
