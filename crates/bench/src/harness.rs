//! A tiny benchmark harness exposing the subset of the `criterion` API the
//! bench targets use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput::Elements`), so the workspace builds and
//! benches offline, without external crates.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until a wall-clock budget is spent, reporting the per-iteration
//! mean, min and (when a throughput was declared) elements/second. Run with
//! `cargo bench`, or with `WSNEM_BENCH_QUICK=1` for a fast smoke pass.

use std::time::{Duration, Instant};

/// Declared work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(func: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{func}/{param}"),
        }
    }
}

/// Top-level driver (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== {name} ==");
        BenchmarkGroup {
            throughput: None,
            budget: if quick() {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(500)
            },
        }
    }
}

fn quick() -> bool {
    std::env::var_os("WSNEM_BENCH_QUICK").is_some() || std::env::args().any(|a| a == "--quick")
}

/// A group of related benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
    budget: Duration,
}

impl BenchmarkGroup {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for criterion compatibility; the wall-clock budget already
    /// bounds sampling, so the sample count is informational only.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.budget,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&name.to_string(), self.throughput);
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            budget: self.budget,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&id.name, self.throughput);
    }

    /// End the group (mirror of criterion; nothing to flush).
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    budget: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f` repeatedly until the group's wall-clock budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, faults pages).
        std::hint::black_box(f());
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() >= self.budget || self.samples.len() >= 10_000 {
                return;
            }
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().unwrap();
        let mut line = format!(
            "{name:<40} {:>12} mean  {:>12} min  ({} iters)",
            fmt_duration(mean),
            fmt_duration(min),
            self.samples.len()
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let rate = n as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {:.3e} elem/s", rate));
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Mirror of `criterion::criterion_group!`: bundles benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($fn_:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $fn_(&mut c); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        let mut calls = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        g.finish();
        assert!(calls > 1, "iter ran the closure repeatedly");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains("s"));
    }
}
