//! E7 — Erlang-phase ablation: how many phases does a CTMC need before the
//! constant delays are "modeled effectively" (the paper's §6 open problem)?
//!
//! Replaces both deterministic delays by Erlang-k, solves the chain exactly,
//! and reports the error vs the DES ground truth as k grows — alongside the
//! supplementary-variable approximation's error for reference.
//!
//! Usage: `cargo run --release -p wsnem-bench --bin ablation_erlang [--quick]`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::{f, quick_mode, render_table};
use wsnem_core::experiments::erlang_ablation;
use wsnem_core::{CpuModel, CpuModelParams, MarkovCpuModel};

fn main() {
    let quick = quick_mode();
    let params = CpuModelParams::paper_defaults()
        .with_power_up_delay(0.3)
        .with_replications(if quick { 6 } else { 24 })
        .with_horizon(if quick { 1000.0 } else { 8000.0 })
        .with_warmup(if quick { 50.0 } else { 400.0 });
    let phase_counts: &[u32] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };

    let (des, rows) = erlang_ablation(params, phase_counts).expect("ablation runs");
    let sv = MarkovCpuModel::new(params)
        .evaluate()
        .expect("markov evaluates");
    let sv_delta = sv.fractions.mean_abs_delta_pct(&des);

    println!("Ablation E7 — Erlang-k phase expansion of the deterministic delays");
    println!(
        "lambda = {}/s, mu = {}/s, T = {} s, D = {} s; DES reference: {}\n",
        params.lambda, params.mu, params.power_down_threshold, params.power_up_delay, des
    );
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.phases.to_string(),
                r.n_states.to_string(),
                f(r.delta_vs_des, 3),
                format!("{:.2e}", r.eval_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["phases k", "CTMC states", "Δ vs DES (pp)", "solve time (s)"],
            &printable
        )
    );
    println!("Supplementary-variable (paper) approximation at the same parameters:");
    println!("  Δ vs DES = {} pp (closed form, instant)", f(sv_delta, 3));
    println!("\nReading: phase expansion answers the paper's closing question — constant");
    println!("delays can be Markov-modeled effectively, at the cost of a growing state");
    println!("space (k phases multiply the chain size).");
}
