//! Tracked performance baseline: times the key engine benches and writes a
//! machine-readable JSON snapshot (`BENCH_9.json` by default) so future PRs
//! have a perf trajectory to compare against.
//!
//! ```text
//! cargo run --release -p wsnem-bench --bin perf_baseline            # full
//! cargo run --release -p wsnem-bench --bin perf_baseline -- --quick # CI
//! cargo run --release -p wsnem-bench --bin perf_baseline -- -o out.json
//! cargo run --release -p wsnem-bench --bin perf_baseline -- \
//!     --quick --check BENCH_9.json --tolerance 25   # regression gate
//! ```
//!
//! Numbers are per-iteration nanoseconds (min and mean over a wall-clock
//! budget, min being the noise-robust figure). The bench set mirrors
//! `benches/engine.rs`: the paper's CPU EDSPN, the vanishing-resolution
//! pipeline (simulation and GSPN→CTMC elimination), the M/M/1/K token game
//! and the many-timed relay rings that exercise the event-driven engine.
//!
//! `--check <baseline.json>` turns the run into a regression gate: every
//! bench present in both runs must keep its min time within `--tolerance`
//! percent (default 25) of the committed baseline, else the process exits
//! non-zero. Min (not mean) is compared, so background load on a shared
//! runner inflates the figure far less than it would the average.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use std::time::{Duration, Instant};

use wsnem_bench::nets::{relay_ring_net, vanishing_pipeline_net};
use wsnem_bench::{quick_mode, render_table};
use wsnem_core::backend::{global, EvalOptions};
use wsnem_core::{build_cpu_edspn, BackendId, CpuModelParams};
use wsnem_petri::analysis::{tangible_chain, ReachOptions};
use wsnem_petri::models::mm1k_net;
use wsnem_petri::{simulate, SimConfig};
use wsnem_stats::rng::Xoshiro256PlusPlus;

struct Measurement {
    name: &'static str,
    min_ns: u128,
    mean_ns: u128,
    iters: usize,
}

/// Time `f` repeatedly until `budget` is spent (one untimed warm-up call).
fn measure<O, F: FnMut() -> O>(name: &'static str, budget: Duration, mut f: F) -> Measurement {
    std::hint::black_box(f());
    let started = Instant::now();
    let mut iters = 0usize;
    let mut total_ns = 0u128;
    let mut min_ns = u128::MAX;
    loop {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let ns = t0.elapsed().as_nanos();
        iters += 1;
        total_ns += ns;
        min_ns = min_ns.min(ns);
        if started.elapsed() >= budget || iters >= 20_000 {
            break;
        }
    }
    Measurement {
        name,
        min_ns,
        mean_ns: total_ns / iters as u128,
        iters,
    }
}

fn sim_bench<'a>(
    net: &'a wsnem_petri::PetriNet,
    horizon: f64,
) -> impl FnMut() -> wsnem_petri::SimOutput + 'a {
    let cfg = SimConfig::for_horizon(horizon);
    let mut seed = 0u64;
    move || {
        seed += 1;
        let mut rng = Xoshiro256PlusPlus::new(seed);
        simulate(net, &cfg, &[], &mut rng).expect("simulates")
    }
}

/// Extract `(name, min_ns)` pairs from a baseline JSON written by this tool.
/// Hand-rolled scan — the format is the flat one emitted below, one bench
/// per line: `"name": {"min_ns": N, ...}`.
fn parse_baseline_min_ns(json: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim_start().strip_prefix('"') else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some(rest) = rest.split_once("\"min_ns\":").map(|(_, r)| r) else {
            continue;
        };
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(min_ns) = digits.parse() {
            out.push((name.to_owned(), min_ns));
        }
    }
    out
}

/// Gate the measured results against a committed baseline: each bench found
/// in both must stay within `tolerance_pct` of the baseline min time.
fn check_against(
    results: &[Measurement],
    baseline_path: &str,
    tolerance_pct: f64,
) -> Result<(), String> {
    let json = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline = parse_baseline_min_ns(&json);
    if baseline.is_empty() {
        return Err(format!("no benches found in baseline {baseline_path}"));
    }
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for m in results {
        let Some((_, base_min)) = baseline.iter().find(|(n, _)| n == m.name) else {
            println!("check: `{}` not in baseline, skipping", m.name);
            continue;
        };
        compared += 1;
        let drift_pct = 100.0 * (m.min_ns as f64 - *base_min as f64) / *base_min as f64;
        println!(
            "check: {:<36} min {:>10} ns vs baseline {:>10} ns ({:+.1}%)",
            m.name, m.min_ns, base_min, drift_pct
        );
        if drift_pct > tolerance_pct {
            regressions.push(format!(
                "{}: {} ns vs baseline {} ns ({drift_pct:+.1}% > +{tolerance_pct}%)",
                m.name, m.min_ns, base_min
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "no overlapping benches between this run and {baseline_path}"
        ));
    }
    if regressions.is_empty() {
        println!("check: {compared} bench(es) within +{tolerance_pct}% of {baseline_path}");
        Ok(())
    } else {
        Err(format!(
            "perf regression vs {baseline_path}:\n  {}",
            regressions.join("\n  ")
        ))
    }
}

fn main() {
    let quick = quick_mode();
    let args: Vec<String> = std::env::args().collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = arg_value("-o")
        .or_else(|| arg_value("--output"))
        .unwrap_or_else(|| "BENCH_9.json".to_owned());
    let check_path = arg_value("--check");
    let tolerance_pct: f64 = match arg_value("--tolerance") {
        None => 25.0,
        Some(v) => match v.parse().ok().filter(|t: &f64| *t > 0.0) {
            Some(t) => t,
            None => {
                eprintln!("--tolerance expects a positive percentage, got `{v}`");
                std::process::exit(2);
            }
        },
    };
    let budget = if quick {
        Duration::from_millis(80)
    } else {
        Duration::from_millis(1500)
    };

    let (paper_net, _) = build_cpu_edspn(1.0, 10.0, 0.5, 0.001).expect("paper net builds");
    let (mm1k, _) = mm1k_net(1.0, 2.0, 10).expect("mm1k builds");
    let pipeline = vanishing_pipeline_net(8);
    let ring32 = relay_ring_net(32);
    let ring128 = relay_ring_net(128);
    let ring256 = relay_ring_net(256);

    let mut results = Vec::new();
    results.push(measure(
        "paper_cpu_edspn_1000s",
        budget,
        sim_bench(&paper_net, 1000.0),
    ));
    results.push(measure("mm1k_10000s", budget, sim_bench(&mm1k, 10_000.0)));
    results.push(measure(
        "vanishing_pipeline_sim_1000s",
        budget,
        sim_bench(&pipeline, 1000.0),
    ));
    results.push(measure("vanishing_pipeline_tangible_chain", budget, || {
        tangible_chain(&pipeline, ReachOptions::default()).expect("eliminates")
    }));
    // ~8192 events each: per-event cost comparable across ring sizes.
    results.push(measure("relay_ring_32", budget, sim_bench(&ring32, 256.0)));
    results.push(measure("relay_ring_128", budget, sim_bench(&ring128, 64.0)));
    results.push(measure("relay_ring_256", budget, sim_bench(&ring256, 32.0)));
    // One closed-form M/G/1 node evaluation — the per-node cost that bounds
    // the million-node analytic fast path (target: well under 10 µs/node).
    let mg1_params = CpuModelParams::paper_defaults();
    let mg1_opts = EvalOptions::default();
    results.push(measure("mg1_node", budget, || {
        global()
            .solve(BackendId::Mg1, std::hint::black_box(&mg1_params), &mg1_opts)
            .expect("mg1 solves")
    }));

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.name.to_owned(),
                format!("{:.2}", m.min_ns as f64 / 1e3),
                format!("{:.2}", m.mean_ns as f64 / 1e3),
                m.iters.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["bench", "min µs", "mean µs", "iters"], &rows)
    );

    // Flat, dependency-free JSON (keys are known identifiers, no escaping
    // needed).
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"unit\": \"ns_per_iteration\",\n  \"benches\": {\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"min_ns\": {}, \"mean_ns\": {}, \"iters\": {}}}{}\n",
            m.name,
            m.min_ns,
            m.mean_ns,
            m.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        if let Err(msg) = check_against(&results, &baseline, tolerance_pct) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
