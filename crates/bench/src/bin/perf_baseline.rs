//! Tracked performance baseline: times the key engine benches and writes a
//! machine-readable JSON snapshot (`BENCH_5.json` by default) so future PRs
//! have a perf trajectory to compare against.
//!
//! ```text
//! cargo run --release -p wsnem-bench --bin perf_baseline            # full
//! cargo run --release -p wsnem-bench --bin perf_baseline -- --quick # CI
//! cargo run --release -p wsnem-bench --bin perf_baseline -- -o out.json
//! ```
//!
//! Numbers are per-iteration nanoseconds (min and mean over a wall-clock
//! budget, min being the noise-robust figure). The bench set mirrors
//! `benches/engine.rs`: the paper's CPU EDSPN, the vanishing-resolution
//! pipeline (simulation and GSPN→CTMC elimination), the M/M/1/K token game
//! and the many-timed relay rings that exercise the event-driven engine.

use std::time::{Duration, Instant};

use wsnem_bench::nets::{relay_ring_net, vanishing_pipeline_net};
use wsnem_bench::{quick_mode, render_table};
use wsnem_core::build_cpu_edspn;
use wsnem_petri::analysis::{tangible_chain, ReachOptions};
use wsnem_petri::models::mm1k_net;
use wsnem_petri::{simulate, SimConfig};
use wsnem_stats::rng::Xoshiro256PlusPlus;

struct Measurement {
    name: &'static str,
    min_ns: u128,
    mean_ns: u128,
    iters: usize,
}

/// Time `f` repeatedly until `budget` is spent (one untimed warm-up call).
fn measure<O, F: FnMut() -> O>(name: &'static str, budget: Duration, mut f: F) -> Measurement {
    std::hint::black_box(f());
    let started = Instant::now();
    let mut iters = 0usize;
    let mut total_ns = 0u128;
    let mut min_ns = u128::MAX;
    loop {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let ns = t0.elapsed().as_nanos();
        iters += 1;
        total_ns += ns;
        min_ns = min_ns.min(ns);
        if started.elapsed() >= budget || iters >= 20_000 {
            break;
        }
    }
    Measurement {
        name,
        min_ns,
        mean_ns: total_ns / iters as u128,
        iters,
    }
}

fn sim_bench<'a>(
    net: &'a wsnem_petri::PetriNet,
    horizon: f64,
) -> impl FnMut() -> wsnem_petri::SimOutput + 'a {
    let cfg = SimConfig::for_horizon(horizon);
    let mut seed = 0u64;
    move || {
        seed += 1;
        let mut rng = Xoshiro256PlusPlus::new(seed);
        simulate(net, &cfg, &[], &mut rng).expect("simulates")
    }
}

fn main() {
    let quick = quick_mode();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "-o" || a == "--output")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_5.json".to_owned())
    };
    let budget = if quick {
        Duration::from_millis(80)
    } else {
        Duration::from_millis(1500)
    };

    let (paper_net, _) = build_cpu_edspn(1.0, 10.0, 0.5, 0.001).expect("paper net builds");
    let (mm1k, _) = mm1k_net(1.0, 2.0, 10).expect("mm1k builds");
    let pipeline = vanishing_pipeline_net(8);
    let ring128 = relay_ring_net(128);
    let ring256 = relay_ring_net(256);

    let mut results = Vec::new();
    results.push(measure(
        "paper_cpu_edspn_1000s",
        budget,
        sim_bench(&paper_net, 1000.0),
    ));
    results.push(measure("mm1k_10000s", budget, sim_bench(&mm1k, 10_000.0)));
    results.push(measure(
        "vanishing_pipeline_sim_1000s",
        budget,
        sim_bench(&pipeline, 1000.0),
    ));
    results.push(measure("vanishing_pipeline_tangible_chain", budget, || {
        tangible_chain(&pipeline, ReachOptions::default()).expect("eliminates")
    }));
    // ~8192 events each: per-event cost comparable across ring sizes.
    results.push(measure("relay_ring_128", budget, sim_bench(&ring128, 64.0)));
    results.push(measure("relay_ring_256", budget, sim_bench(&ring256, 32.0)));

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|m| {
            vec![
                m.name.to_owned(),
                format!("{:.2}", m.min_ns as f64 / 1e3),
                format!("{:.2}", m.mean_ns as f64 / 1e3),
                m.iters.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["bench", "min µs", "mean µs", "iters"], &rows)
    );

    // Flat, dependency-free JSON (keys are known identifiers, no escaping
    // needed).
    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"unit\": \"ns_per_iteration\",\n  \"benches\": {\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"min_ns\": {}, \"mean_ns\": {}, \"iters\": {}}}{}\n",
            m.name,
            m.min_ns,
            m.mean_ns,
            m.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("wrote {out_path}");
}
