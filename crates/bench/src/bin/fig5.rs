//! E3 — Paper Figure 5: energy consumption (J) vs the Power Down Threshold
//! for Simulation, Markov and Petri net at D = 0.001 s, PXA271 power rates
//! (paper Table 3), Eq. 25 over the simulated horizon. The paper's Eq. 24
//! variant (queueing-estimated runtime, N = λ·horizon jobs) is printed for
//! the Markov model as well.
//!
//! Usage: `cargo run --release -p wsnem-bench --bin fig5 [--quick]`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::{f, quick_mode, render_table};
use wsnem_core::experiments::ThresholdSweep;
use wsnem_core::{BackendId, CpuModelParams, MarkovCpuModel};
use wsnem_energy::PowerProfile;

fn main() {
    let quick = quick_mode();
    let params = CpuModelParams::paper_defaults()
        .with_replications(if quick { 4 } else { 32 })
        .with_horizon(if quick { 500.0 } else { 1000.0 })
        .with_warmup(if quick { 25.0 } else { 50.0 });
    let profile = PowerProfile::pxa271();
    let sweep = ThresholdSweep::paper(params, 0.001)
        .run()
        .expect("sweep runs");

    println!("Paper Figure 5 — energy (J) vs Power Down Threshold (Eq. 25, PXA271)");
    println!(
        "lambda = {}/s, mu = {}/s, D = 0.001 s, horizon = {} s\n",
        params.lambda, params.mu, params.horizon
    );

    let sim = sweep.energy_series(BackendId::Des, &profile);
    let mar = sweep.energy_series(BackendId::Markov, &profile);
    let pn = sweep.energy_series(BackendId::PetriNet, &profile);
    let n_jobs = params.lambda * params.horizon;
    let rows: Vec<Vec<String>> = sweep
        .t_values()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let eq24 = MarkovCpuModel::new(
                params
                    .with_power_down_threshold(*t)
                    .with_power_up_delay(0.001),
            )
            .inner()
            .expect("valid params")
            .energy_eq24(&profile, n_jobs)
            .total_joules();
            vec![
                f(*t, 1),
                f(sim[i], 3),
                f(mar[i], 3),
                f(pn[i], 3),
                f(eq24, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "T (s)",
                "Simulation (J)",
                "Markov (J)",
                "Petri Net (J)",
                "Markov Eq.24 (J)"
            ],
            &rows
        )
    );
}
