//! E5 — Paper Table 5: Δ energy consumption (J) estimates for varying Power
//! Up Delay (PXA271, Eq. 25 over the horizon, mean |Δ| over the T-sweep).
//!
//! Usage: `cargo run --release -p wsnem-bench --bin table5 [--quick]`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::{f, quick_mode, render_table};
use wsnem_core::experiments::table5;
use wsnem_core::CpuModelParams;
use wsnem_energy::PowerProfile;

fn main() {
    let quick = quick_mode();
    let params = CpuModelParams::paper_defaults()
        .with_replications(if quick { 4 } else { 24 })
        .with_horizon(if quick { 500.0 } else { 1000.0 })
        .with_warmup(if quick { 25.0 } else { 50.0 });
    let d_values = [0.001, 0.3, 10.0];
    let rows = table5(params, &d_values, &PowerProfile::pxa271()).expect("table5 computes");

    println!("Paper Table 5 — Δ energy consumption (J) for varying Power Up Delay");
    println!(
        "mean over T in 0.0..=1.0 of |Δ energy| (Eq. 25, horizon {} s, PXA271)\n",
        params.horizon
    );
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.d, 3),
                f(r.sim_markov, 3),
                f(r.sim_pn, 3),
                f(r.markov_pn, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["PUD (s)", "Sim-Markov", "Sim-PN", "Markov-PN"],
            &printable
        )
    );
    println!("Paper's qualitative claim: energy deltas mirror Table 4 — the Markov");
    println!("approximation's error grows with D while the Petri net tracks simulation.");
}
