//! E9 — extension: fine-grained Power-Up-Delay sweep locating the validity
//! boundary of the paper's supplementary-variable approximation, with the
//! Erlang-phase chain and the Petri net as accurate references.
//!
//! Usage: `cargo run --release -p wsnem-bench --bin ext_delay_sweep [--quick]`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::{f, quick_mode, render_table};
use wsnem_core::experiments::{delay_sweep, markov_validity_boundary};
use wsnem_core::CpuModelParams;

fn main() {
    let quick = quick_mode();
    let params = CpuModelParams::paper_defaults()
        .with_replications(if quick { 4 } else { 24 })
        .with_horizon(if quick { 800.0 } else { 6000.0 })
        .with_warmup(if quick { 50.0 } else { 300.0 });
    let d_values: Vec<f64> = if quick {
        vec![0.01, 0.1, 1.0, 10.0]
    } else {
        vec![0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0]
    };

    let rows = delay_sweep(params, &d_values).expect("sweep runs");

    println!(
        "Extension E9 — model error vs Power Up Delay (T = {} s, λ = {}/s)",
        params.power_down_threshold, params.lambda
    );
    println!("errors are mean |Δ| vs DES over the four states, percentage points\n");
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.d, 3),
                f(r.lambda_d, 3),
                f(r.markov_err, 3),
                f(r.phase_err, 3),
                f(r.petri_err, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "D (s)",
                "lambda*D",
                "Markov (SV) err",
                "Erlang-16 err",
                "Petri net err"
            ],
            &printable
        )
    );
    match markov_validity_boundary(&rows, 1.0) {
        Some(b) => println!(
            "Supplementary-variable model first exceeds 1 pp error at lambda*D = {b:.3} —\n\
             the basis for wsn::tuning's analytic-backend cutoff (lambda*D <= 0.05 is safely inside)."
        ),
        None => println!("Supplementary-variable model stayed within 1 pp over the sweep."),
    }
}
