//! E2 — Paper Figure 4: steady-state percentages of time in each CPU state
//! vs the Power Down Threshold, for Simulation (DES), Markov and Petri net,
//! at Power Up Delay D = 0.001 s (λ = 1/s, μ = 10/s, 1000 s horizon).
//!
//! Usage: `cargo run --release -p wsnem-bench --bin fig4 [--quick]`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::{f, quick_mode, render_table};
use wsnem_core::experiments::ThresholdSweep;
use wsnem_core::{BackendId, CpuModelParams};

fn main() {
    let quick = quick_mode();
    let params = CpuModelParams::paper_defaults()
        .with_replications(if quick { 4 } else { 32 })
        .with_horizon(if quick { 500.0 } else { 2000.0 })
        .with_warmup(if quick { 25.0 } else { 100.0 });
    let sweep = ThresholdSweep::paper(params, 0.001)
        .run()
        .expect("sweep runs");

    println!("Paper Figure 4 — steady-state percentage of time vs Power Down Threshold");
    println!(
        "lambda = {}/s, mu = {}/s, D = 0.001 s, horizon = {} s, {} replications\n",
        params.lambda, params.mu, params.horizon, params.replications
    );

    for (state_idx, state) in ["Standby", "PowerUp", "Idle", "Active"].iter().enumerate() {
        // Canonical order is [standby, powerup, idle, active].
        println!("State: {state} (%)");
        let sim = sweep.percent_series(BackendId::Des, state_idx);
        let mar = sweep.percent_series(BackendId::Markov, state_idx);
        let pn = sweep.percent_series(BackendId::PetriNet, state_idx);
        let rows: Vec<Vec<String>> = sweep
            .t_values()
            .iter()
            .enumerate()
            .map(|(i, t)| vec![f(*t, 1), f(sim[i], 3), f(mar[i], 3), f(pn[i], 3)])
            .collect();
        println!(
            "{}",
            render_table(&["T (s)", "Simulation", "Markov", "Petri Net"], &rows)
        );
    }
}
