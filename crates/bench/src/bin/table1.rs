//! E1 — Paper Table 1: the transition parameters of the Fig. 3 EDSPN, read
//! back from the net the library actually builds (not hard-coded), plus the
//! structural P-invariants the state classification rests on.

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::render_table;
use wsnem_core::build_cpu_edspn;
use wsnem_petri::analysis::p_semiflows;
use wsnem_petri::TransitionKind;
use wsnem_stats::dist::Dist;

fn main() {
    let (net, _) = build_cpu_edspn(1.0, 10.0, 0.5, 0.001).expect("paper net builds");

    println!("Paper Table 1 — CPU Jobs Petri Net Transition Parameters");
    println!("(reconstructed from the net built by wsnem-core::build_cpu_edspn)\n");
    let mut rows = Vec::new();
    for t in net.transitions() {
        let name = net.transition_name(t).to_owned();
        let (firing, delay, priority) = match net.kind(t) {
            TransitionKind::Immediate { priority, .. } => (
                "Instantaneous".to_owned(),
                "-".to_owned(),
                priority.to_string(),
            ),
            TransitionKind::Timed { dist, .. } => match dist {
                Dist::Exponential { rate } => (
                    "Exponential".to_owned(),
                    format!("rate {rate}/s"),
                    "NA".to_owned(),
                ),
                Dist::Deterministic(d) => (
                    "Deterministic".to_owned(),
                    format!("{d} s"),
                    "NA".to_owned(),
                ),
                other => (format!("{other:?}"), "-".to_owned(), "NA".to_owned()),
            },
        };
        rows.push(vec![name, firing, delay, priority]);
    }
    println!(
        "{}",
        render_table(
            &["Transition", "Firing Distribution", "Delay", "Priority"],
            &rows
        )
    );

    println!("Structural P-invariants (Farkas analysis):");
    let inv = p_semiflows(&net).expect("invariants computable");
    for x in inv {
        let terms: Vec<String> = net
            .places()
            .filter(|p| x[p.index()] > 0)
            .map(|p| {
                let w = x[p.index()];
                if w == 1 {
                    net.place_name(p).to_owned()
                } else {
                    format!("{w}*{}", net.place_name(p))
                }
            })
            .collect();
        let value = net.initial_marking().weighted_sum(&x);
        println!("  {} = {value}", terms.join(" + "));
    }
}
