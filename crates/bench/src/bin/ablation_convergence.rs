//! E8 — Convergence ablation: the paper's §6 drawback, quantified. How much
//! simulation budget (horizon × replications) does the Petri net need before
//! its percentages stabilize, and what does each budget cost in wall-clock?
//!
//! Usage: `cargo run --release -p wsnem-bench --bin ablation_convergence [--quick]`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::{f, quick_mode, render_table};
use wsnem_core::experiments::convergence_ablation;
use wsnem_core::CpuModelParams;

fn main() {
    let quick = quick_mode();
    let params = CpuModelParams::paper_defaults();
    let budgets: &[(f64, usize)] = if quick {
        &[(100.0, 1), (1000.0, 4)]
    } else {
        &[
            (100.0, 1),
            (100.0, 8),
            (1000.0, 1),
            (1000.0, 8),
            (1000.0, 32),
            (10_000.0, 8),
            (10_000.0, 32),
        ]
    };

    let (reference, rows) = convergence_ablation(params, budgets).expect("ablation runs");

    println!("Ablation E8 — Petri-net estimate convergence with simulation budget");
    println!(
        "T = {} s, D = {} s; high-budget DES reference: {}\n",
        params.power_down_threshold, params.power_up_delay, reference
    );
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.horizon, 0),
                r.replications.to_string(),
                f(r.delta_vs_reference, 3),
                format!("{:.2e}", r.eval_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "horizon (s)",
                "replications",
                "Δ vs reference (pp)",
                "wall time (s)"
            ],
            &printable
        )
    );
    println!("Reading: error shrinks roughly with the square root of the total budget —");
    println!("the 'long simulation time' cost the paper attributes to Petri nets, versus");
    println!("the closed-form Markov expression that evaluates in nanoseconds.");
}
