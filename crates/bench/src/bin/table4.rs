//! E4 — Paper Table 4: Δ steady-state percentage estimates for varying
//! Power Up Delay. Reported as the mean over the T-sweep of the mean
//! absolute per-state difference (percentage points); the sweep-summed
//! variant (closer to the paper's magnitudes) is printed alongside.
//!
//! Usage: `cargo run --release -p wsnem-bench --bin table4 [--quick]`

#![allow(clippy::disallowed_methods)] // tests/examples may panic on broken invariants
use wsnem_bench::{f, quick_mode, render_table};
use wsnem_core::experiments::table4;
use wsnem_core::CpuModelParams;

fn main() {
    let quick = quick_mode();
    let params = CpuModelParams::paper_defaults()
        .with_replications(if quick { 4 } else { 24 })
        .with_horizon(if quick { 500.0 } else { 4000.0 })
        .with_warmup(if quick { 25.0 } else { 200.0 });
    let d_values = [0.001, 0.3, 10.0];
    let rows = table4(params, &d_values).expect("table4 computes");

    println!("Paper Table 4 — Δ steady-state percentages (pp) for varying Power Up Delay");
    println!(
        "mean over T in 0.0..=1.0 of mean |Δ| across the four states; n = {} points\n",
        rows[0].sweep.points.len()
    );
    let n = rows[0].sweep.points.len() as f64;
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                f(r.d, 3),
                f(r.sim_markov, 3),
                f(r.sim_pn, 3),
                f(r.markov_pn, 3),
                f(r.sim_markov * n * 4.0, 1),
                f(r.sim_pn * n * 4.0, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "PUD (s)",
                "Sim-Markov",
                "Sim-PN",
                "Markov-PN",
                "Sim-Markov (sweep sum)",
                "Sim-PN (sweep sum)"
            ],
            &printable
        )
    );
    println!("Paper's qualitative claim: Sim-PN stays small while Sim-Markov explodes as D grows.");
}
