//! Shared formatting helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one paper artifact (see
//! DESIGN.md §4) and prints it as an aligned ASCII table suitable for
//! copy-paste into EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bench harness code backs dev-tool binaries, not the library stack: a
// panic aborts the measurement run, which is the right failure mode.
#![allow(clippy::disallowed_methods)]

pub mod harness;
pub mod nets;

/// Render an aligned ASCII table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (c, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {c:>w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// `--quick` flag: binaries run a reduced budget (CI-friendly).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Format a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["10.5".into(), "x".into()],
            ],
        );
        assert!(t.contains("| a "));
        assert!(t.contains("long-header"));
        // All lines share the same width.
        let lens: Vec<usize> = t.lines().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 3), "10.000");
    }
}
