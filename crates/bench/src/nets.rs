//! Benchmark net constructors shared by the `engine` bench target and the
//! `perf_baseline` binary, so both measure exactly the same models.

use wsnem_petri::{NetBuilder, PetriNet};

/// An exp source feeding a `k`-stage chain of immediate transitions (each
/// stage at its own priority) into a bounded queue with an exp server —
/// every arrival resolves `k` vanishing markings.
pub fn vanishing_pipeline_net(k: u8) -> PetriNet {
    let mut b = NetBuilder::new();
    let first = b.place("V0", 0);
    let queue = b.place("Q", 0);
    let src = b.exponential("src", 1.0);
    b.output_arc(src, first, 1);
    b.inhibitor_arc(queue, src, 6);
    let mut prev = first;
    for i in 1..=k {
        let next = if i == k {
            queue
        } else {
            b.place(format!("V{i}"), 0)
        };
        let t = b.immediate(format!("t{i}"), k - i + 1, 1.0);
        b.input_arc(prev, t, 1);
        b.output_arc(t, next, 1);
        prev = next;
    }
    let serve = b.exponential("serve", 2.0);
    b.input_arc(queue, serve, 1);
    b.build().expect("pipeline net builds")
}

/// A closed ring of `n` relay stations — place `Q_i` feeds an exponential
/// hop transition into `Q_{i+1 mod n}` — with one token in every place, so
/// all `n` timers race concurrently at every instant.
///
/// This is the many-timed-transition stress shape: a scan-driven engine
/// pays O(n) per event to find the earliest timer (O(n²) per unit of model
/// time), an event-driven engine O(log n).
pub fn relay_ring_net(n: usize) -> PetriNet {
    let mut b = NetBuilder::new();
    let places: Vec<_> = (0..n).map(|i| b.place(format!("Q{i}"), 1)).collect();
    for i in 0..n {
        let t = b.exponential(format!("hop{i}"), 1.0);
        b.input_arc(places[i], t, 1);
        b.output_arc(t, places[(i + 1) % n], 1);
    }
    b.build().expect("ring builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_net_shape() {
        let net = vanishing_pipeline_net(8);
        // src + serve + 8 immediates.
        assert_eq!(net.n_transitions(), 10);
        assert!(net.find_transition("t8").is_some());
    }

    #[test]
    fn ring_net_shape() {
        let net = relay_ring_net(128);
        assert_eq!(net.n_transitions(), 128);
        assert_eq!(net.n_places(), 128);
        // One token everywhere: every hop is enabled in the initial marking.
        let m = net.initial_marking();
        assert!(net.transitions().all(|t| net.is_enabled(&m, t)));
    }
}
