//! TOML rendering and parsing over the in-workspace serde subset.
//!
//! Source-compatible with the `toml` crate calls this workspace makes:
//! [`to_string`], [`to_string_pretty`], [`from_str`].
//!
//! Supported TOML subset (everything the scenario file format uses, plus
//! headroom for hand-authored files):
//!
//! * `[table]` and `[[array-of-tables]]` headers with dotted paths,
//! * `key = value` with bare or quoted keys, including dotted keys,
//! * basic and literal strings, integers (with `_` separators), floats
//!   (including `inf` / `-inf` / `nan`), booleans,
//! * arrays (multi-line allowed) and inline tables,
//! * `#` comments.
//!
//! Dates/times and multi-line strings are not supported. `None` fields are
//! skipped on write (TOML has no null), which matches upstream `toml`.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to a TOML document.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value();
    let Value::Map(entries) = v else {
        return Err(Error::new(
            "TOML documents must serialize from a map/struct",
        ));
    };
    let mut out = String::new();
    write_table(&mut out, &[], &entries);
    Ok(out)
}

/// Alias of [`to_string`] (the output is already block-formatted).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Parse a TOML document into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Parse a TOML document into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    Parser {
        bytes: s.as_bytes(),
        pos: 0,
    }
    .document()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn is_table(v: &Value) -> bool {
    matches!(v, Value::Map(_))
}

fn is_table_array(v: &Value) -> bool {
    match v {
        Value::Seq(items) => !items.is_empty() && items.iter().all(is_table),
        _ => false,
    }
}

fn write_table(out: &mut String, path: &[String], entries: &[(String, Value)]) {
    // Inline entries first, then sub-tables, then arrays of tables — the
    // order TOML requires for unambiguous section ownership.
    for (k, v) in entries {
        if matches!(v, Value::Null) || is_table(v) || is_table_array(v) {
            continue;
        }
        write_key(out, k);
        out.push_str(" = ");
        write_inline(out, v);
        out.push('\n');
    }
    for (k, v) in entries {
        let Value::Map(sub) = v else { continue };
        let sub_path: Vec<String> = path.iter().cloned().chain([k.clone()]).collect();
        if !out.is_empty() {
            out.push('\n');
        }
        out.push('[');
        write_path(out, &sub_path);
        out.push_str("]\n");
        write_table(out, &sub_path, sub);
    }
    for (k, v) in entries {
        if !is_table_array(v) {
            continue;
        }
        let Value::Seq(items) = v else { unreachable!() };
        let sub_path: Vec<String> = path.iter().cloned().chain([k.clone()]).collect();
        for item in items {
            let Value::Map(sub) = item else {
                unreachable!()
            };
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("[[");
            write_path(out, &sub_path);
            out.push_str("]]\n");
            write_table(out, &sub_path, sub);
        }
    }
}

fn write_path(out: &mut String, path: &[String]) {
    for (i, seg) in path.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        write_key(out, seg);
    }
}

fn bare_key_ok(k: &str) -> bool {
    !k.is_empty()
        && k.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn write_key(out: &mut String, k: &str) {
    if bare_key_ok(k) {
        out.push_str(k);
    } else {
        write_basic_string(out, k);
    }
}

fn write_inline(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("{}"), // unreachable from write_table; defensive
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_basic_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            let mut first = true;
            for (k, v) in entries {
                if matches!(v, Value::Null) {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                write_key(out, k);
                out.push_str(" = ");
                write_inline(out, v);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("nan");
    } else if f.is_infinite() {
        out.push_str(if f > 0.0 { "inf" } else { "-inf" });
    } else {
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_basic_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        Error::new(format!("TOML parse error at line {line}: {msg}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Skip spaces/tabs and comments on the current line.
    fn skip_inline_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t') => self.pos += 1,
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Skip all whitespace including newlines and comments.
    fn skip_all_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if matches!(self.peek(), Some(b'\n' | b'\r')) {
                self.pos += 1;
            } else {
                return;
            }
        }
    }

    fn expect_eol(&mut self) -> Result<(), Error> {
        self.skip_inline_ws();
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.pos += 1;
                Ok(())
            }
            Some(b'\r') if self.bytes.get(self.pos + 1) == Some(&b'\n') => {
                self.pos += 2;
                Ok(())
            }
            Some(c) => Err(self.err(&format!("expected end of line, found `{}`", c as char))),
        }
    }

    fn document(&mut self) -> Result<Value, Error> {
        let mut root: Vec<(String, Value)> = Vec::new();
        // Path of the table currently being filled; empty = root.
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_all_ws();
            match self.peek() {
                None => return Ok(Value::Map(root)),
                Some(b'[') => {
                    self.pos += 1;
                    let array_of_tables = self.peek() == Some(b'[');
                    if array_of_tables {
                        self.pos += 1;
                    }
                    self.skip_inline_ws();
                    let path = self.dotted_key()?;
                    self.skip_inline_ws();
                    if self.peek() != Some(b']') {
                        return Err(self.err("expected `]`"));
                    }
                    self.pos += 1;
                    if array_of_tables {
                        if self.peek() != Some(b']') {
                            return Err(self.err("expected `]]`"));
                        }
                        self.pos += 1;
                    }
                    self.expect_eol()?;
                    if array_of_tables {
                        push_table_array_element(&mut root, &path).map_err(|m| self.err(&m))?;
                    } else {
                        ensure_table(&mut root, &path).map_err(|m| self.err(&m))?;
                    }
                    current = path;
                }
                Some(_) => {
                    let key_path = self.dotted_key()?;
                    self.skip_inline_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected `=` after key"));
                    }
                    self.pos += 1;
                    self.skip_inline_ws();
                    let value = self.value()?;
                    self.expect_eol()?;
                    let mut full: Vec<String> = current.clone();
                    full.extend(key_path);
                    insert_value(&mut root, &full, value).map_err(|m| self.err(&m))?;
                }
            }
        }
    }

    fn dotted_key(&mut self) -> Result<Vec<String>, Error> {
        let mut path = vec![self.key_segment()?];
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                self.skip_inline_ws();
                path.push(self.key_segment()?);
            } else {
                return Ok(path);
            }
        }
    }

    fn key_segment(&mut self) -> Result<String, Error> {
        match self.peek() {
            Some(b'"') => self.basic_string(),
            Some(b'\'') => self.literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
                ) {
                    self.pos += 1;
                }
                // Only ASCII alphanumerics, `_` and `-` were consumed.
                let Ok(key) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
                    unreachable!("bare key span is pure ASCII")
                };
                Ok(key.to_owned())
            }
            _ => Err(self.err("expected a key")),
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.basic_string()?)),
            Some(b'\'') => Ok(Value::Str(self.literal_string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(c) if c == b'+' || c == b'-' || c.is_ascii_digit() || c == b'i' || c == b'n' => {
                self.number()
            }
            _ => Err(self.err("expected a TOML value")),
        }
    }

    fn boolean(&mut self) -> Result<Value, Error> {
        for (lit, v) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                return Ok(Value::Bool(v));
            }
        }
        Err(self.err("expected `true` or `false`"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+' | b'-')) {
            self.pos += 1;
        }
        // inf / nan keywords.
        for lit in ["inf", "nan"] {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                let neg = self.bytes[start] == b'-';
                return Ok(Value::Float(match (lit, neg) {
                    ("inf", false) => f64::INFINITY,
                    ("inf", true) => f64::NEG_INFINITY,
                    _ => f64::NAN,
                }));
            }
        }
        let mut is_float = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
        }
        // Only ASCII digits, signs, dots, exponents and `_` were consumed.
        let Ok(span) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            unreachable!("number span is pure ASCII")
        };
        let text: String = span.chars().filter(|&c| c != '_').collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            Err(self.err("invalid integer"))
        }
    }

    fn basic_string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    // The Some(_) arm guarantees at least one byte remains.
                    let Some(c) = s.chars().next() else {
                        unreachable!("peeked byte vanished from the input")
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn literal_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening '
        let start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated literal string")),
                Some(b'\'') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .to_owned();
                    self.pos += 1;
                    return Ok(s);
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // [
        let mut items = Vec::new();
        loop {
            self.skip_all_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            items.push(self.value()?);
            self.skip_all_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, Error> {
        self.pos += 1; // {
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_inline_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_inline_ws();
            let path = self.dotted_key()?;
            self.skip_inline_ws();
            if self.peek() != Some(b'=') {
                return Err(self.err("expected `=` in inline table"));
            }
            self.pos += 1;
            self.skip_inline_ws();
            let v = self.value()?;
            insert_value(&mut entries, &path, v).map_err(|m| self.err(&m))?;
            self.skip_inline_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in inline table")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Document assembly
// ---------------------------------------------------------------------------

/// Walk (creating as needed) to the table at `path`. When the final segment
/// holds an array of tables, descend into its *last* element — TOML's
/// `[table.after.array]` semantics.
fn walk<'t>(
    root: &'t mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'t mut Vec<(String, Value)>, String> {
    let mut table = root;
    for seg in path {
        if !table.iter().any(|(k, _)| k == seg) {
            table.push((seg.clone(), Value::Map(Vec::new())));
        }
        // The key was inserted just above when absent.
        let Some(idx) = table.iter().position(|(k, _)| k == seg) else {
            unreachable!("freshly inserted key not found")
        };
        let node = &mut table[idx].1;
        // Descend into the last element of an array of tables.
        if let Value::Seq(items) = node {
            match items.last_mut() {
                Some(Value::Map(_)) => {}
                _ => return Err(format!("key `{seg}` is not a table")),
            }
            let Some(Value::Map(last)) = items.last_mut() else {
                unreachable!()
            };
            table = last;
            continue;
        }
        match node {
            Value::Map(m) => table = m,
            _ => return Err(format!("key `{seg}` is not a table")),
        }
    }
    Ok(table)
}

fn ensure_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), String> {
    walk(root, path).map(|_| ())
}

fn push_table_array_element(
    root: &mut Vec<(String, Value)>,
    path: &[String],
) -> Result<(), String> {
    // The header grammar requires at least one key segment.
    let Some((last, parent_path)) = path.split_last() else {
        unreachable!("empty header path")
    };
    let parent = walk(root, parent_path)?;
    match parent.iter_mut().find(|(k, _)| k == last) {
        None => {
            parent.push((last.clone(), Value::Seq(vec![Value::Map(Vec::new())])));
            Ok(())
        }
        Some((_, Value::Seq(items))) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        Some(_) => Err(format!("key `{last}` is not an array of tables")),
    }
}

fn insert_value(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    value: Value,
) -> Result<(), String> {
    // The key grammar requires at least one segment.
    let Some((last, parent_path)) = path.split_last() else {
        unreachable!("empty key path")
    };
    let parent = walk(root, parent_path)?;
    if parent.iter().any(|(k, _)| k == last) {
        return Err(format!("duplicate key `{last}`"));
    }
    parent.push((last.clone(), value));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_sections() {
        let doc = r#"
# a comment
name = "paper-defaults"
count = 3
rate = 1.5
big = 1_000
on = true

[cpu]
lambda = 1.0
mu = 10.0

[cpu.inner]
x = -2
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("paper-defaults"));
        assert_eq!(v.get("count"), Some(&Value::Int(3)));
        assert_eq!(v.get("big"), Some(&Value::Int(1000)));
        assert_eq!(v.get("on"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("cpu").unwrap().get("lambda"),
            Some(&Value::Float(1.0))
        );
        assert_eq!(
            v.get("cpu").unwrap().get("inner").unwrap().get("x"),
            Some(&Value::Int(-2))
        );
    }

    #[test]
    fn arrays_and_inline_tables() {
        let doc = r#"
xs = [1, 2, 3]
multi = [
  1.5,
  2.5, # comment
]
service = {Exponential = {rate = 10.0}}
names = ["a", 'b']
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("xs").unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(v.get("multi").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(
            v.get("service")
                .unwrap()
                .get("Exponential")
                .unwrap()
                .get("rate"),
            Some(&Value::Float(10.0))
        );
        assert_eq!(
            v.get("names").unwrap().as_seq().unwrap()[1].as_str(),
            Some("b")
        );
    }

    #[test]
    fn array_of_tables() {
        let doc = r#"
[[node]]
name = "a"

[[node]]
name = "b"

[node.extra]
w = 1
"#;
        let v = parse(doc).unwrap();
        let nodes = v.get("node").unwrap().as_seq().unwrap();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].get("name").unwrap().as_str(), Some("a"));
        // [node.extra] lands in the LAST element.
        assert_eq!(
            nodes[1].get("extra").unwrap().get("w"),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn nonfinite_floats() {
        let v = parse("a = inf\nb = -inf\nc = nan\n").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Float(f64::INFINITY)));
        assert_eq!(v.get("b"), Some(&Value::Float(f64::NEG_INFINITY)));
        assert!(matches!(v.get("c"), Some(Value::Float(f)) if f.is_nan()));
    }

    #[test]
    fn writer_round_trips_nested_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("x".into())),
            ("t".into(), Value::Float(0.5)),
            (
                "cpu".into(),
                Value::Map(vec![
                    ("lambda".into(), Value::Float(1.0)),
                    ("seed".into(), Value::Int(42)),
                ]),
            ),
            (
                "nodes".into(),
                Value::Seq(vec![
                    Value::Map(vec![("id".into(), Value::Int(0))]),
                    Value::Map(vec![("id".into(), Value::Int(1))]),
                ]),
            ),
            ("xs".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
        ]);
        let Value::Map(entries) = &v else {
            unreachable!()
        };
        let mut doc = String::new();
        write_table(&mut doc, &[], entries);
        let back = parse(&doc).unwrap();
        // The writer reorders (inline keys before sections, as TOML
        // requires); compare with sorted keys.
        fn normalize(v: &Value) -> Value {
            match v {
                Value::Map(m) => {
                    let mut m: Vec<(String, Value)> =
                        m.iter().map(|(k, v)| (k.clone(), normalize(v))).collect();
                    m.sort_by(|a, b| a.0.cmp(&b.0));
                    Value::Map(m)
                }
                Value::Seq(s) => Value::Seq(s.iter().map(normalize).collect()),
                other => other.clone(),
            }
        }
        assert_eq!(normalize(&back), normalize(&v), "document was:\n{doc}");
    }

    #[test]
    fn dotted_keys_and_duplicates() {
        let v = parse("a.b = 1\na.c = 2\n").unwrap();
        assert_eq!(v.get("a").unwrap().get("b"), Some(&Value::Int(1)));
        assert_eq!(v.get("a").unwrap().get("c"), Some(&Value::Int(2)));
        assert!(parse("x = 1\nx = 2\n").is_err());
        let e = parse("x = @").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
    }

    #[test]
    fn enum_like_values_round_trip_inline() {
        // Unit variants are strings; newtype/struct variants are single-entry
        // maps — both must survive writer → parser.
        let v = Value::Map(vec![
            ("policy".into(), Value::Str("RaceResample".into())),
            (
                "dist".into(),
                Value::Map(vec![("Deterministic".into(), Value::Float(0.25))]),
            ),
        ]);
        let Value::Map(entries) = &v else {
            unreachable!()
        };
        let mut doc = String::new();
        write_table(&mut doc, &[], entries);
        assert_eq!(parse(&doc).unwrap(), v, "document was:\n{doc}");
    }
}
