//! Numerically-stable online accumulators (Welford's algorithm and friends).
//!
//! These are the building blocks for per-replication summaries: O(1) memory,
//! one pass, no catastrophic cancellation.

/// Welford online mean / variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by n).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Merge another accumulator into this one (Chan's parallel update) —
    /// the reduction step for parallel replications.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Running minimum / maximum tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    min: f64,
    max: f64,
    n: u64,
}

impl Default for MinMax {
    fn default() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            n: 0,
        }
    }
}

impl MinMax {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a value.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// max − min (`None` when empty).
    pub fn range(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max - self.min)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Merge two trackers.
    pub fn merge(&mut self, other: &MinMax) {
        if other.n == 0 {
            return;
        }
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Online covariance / correlation of paired observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Covariance {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    cxy: f64,
}

impl Covariance {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a pair.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        self.m2_x += dx * (x - self.mean_x);
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        self.m2_y += dy * (y - self.mean_y);
        self.cxy += dx * (y - self.mean_y);
    }

    /// Number of pairs.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Unbiased sample covariance.
    pub fn covariance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.cxy / (self.n - 1) as f64
        }
    }

    /// Pearson correlation coefficient (0 if either variance is 0).
    pub fn correlation(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let denom = (self.m2_x * self.m2_y).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            self.cxy / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
        assert!((w.std_dev() - var.sqrt()).abs() < 1e-12);
        assert!((w.std_err() - (var / 8.0).sqrt()).abs() < 1e-12);
        assert!(
            (w.variance_population()
                - xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 8.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..300] {
            left.push(x);
        }
        for &x in &xs[300..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());

        // Merging empties is the identity.
        let mut e = Welford::new();
        e.merge(&Welford::new());
        assert_eq!(e.count(), 0);
        e.merge(&all);
        assert!((e.mean() - all.mean()).abs() < 1e-12);
    }

    #[test]
    fn welford_huge_offset_stability() {
        // Large common offset should not destroy the variance estimate.
        let mut w = Welford::new();
        for i in 0..1000 {
            w.push(1e9 + (i % 2) as f64);
        }
        assert!(
            (w.variance() - 0.2502502502502503).abs() < 1e-6,
            "{}",
            w.variance()
        );
    }

    #[test]
    fn minmax_tracks() {
        let mut mm = MinMax::new();
        assert!(mm.min().is_none());
        for x in [3.0, -1.0, 7.0, 2.0] {
            mm.push(x);
        }
        assert_eq!(mm.min(), Some(-1.0));
        assert_eq!(mm.max(), Some(7.0));
        assert_eq!(mm.range(), Some(8.0));
        assert_eq!(mm.count(), 4);

        let mut other = MinMax::new();
        other.push(100.0);
        mm.merge(&other);
        assert_eq!(mm.max(), Some(100.0));
        mm.merge(&MinMax::new());
        assert_eq!(mm.count(), 5);
    }

    #[test]
    fn covariance_perfect_linear() {
        let mut c = Covariance::new();
        for i in 0..100 {
            let x = i as f64;
            c.push(x, 2.0 * x + 1.0);
        }
        assert!((c.correlation() - 1.0).abs() < 1e-12);
        assert!(c.covariance() > 0.0);
        assert_eq!(c.count(), 100);
    }

    #[test]
    fn covariance_anticorrelated_and_degenerate() {
        let mut c = Covariance::new();
        for i in 0..100 {
            c.push(i as f64, -(i as f64));
        }
        assert!((c.correlation() + 1.0).abs() < 1e-12);

        let mut d = Covariance::new();
        d.push(1.0, 5.0);
        assert_eq!(d.correlation(), 0.0);
        d.push(1.0, 7.0); // x constant → zero variance → correlation 0
        assert_eq!(d.correlation(), 0.0);
    }
}
