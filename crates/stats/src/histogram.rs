//! Fixed-width histograms with under/overflow tracking.
//!
//! Used by the experiment harness to summarize job-latency distributions and
//! by tests to sanity-check samplers.

/// A histogram over `[low, high)` with equal-width bins, plus explicit
/// underflow/overflow counters so no observation is silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Create a histogram over `[low, high)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `high <= low`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(high > low, "high must exceed low");
        Self {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Record an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let w = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / w) as usize;
            // Floating error at the upper edge can index one past the end.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `low`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above `high`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `[start, end)` interval of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.high - self.low) / self.bins.len() as f64;
        (self.low + i as f64 * w, self.low + (i + 1) as f64 * w)
    }

    /// Fraction of in-range observations in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        let in_range = self.count - self.underflow - self.overflow;
        if in_range == 0 {
            0.0
        } else {
            self.bins[i] as f64 / in_range as f64
        }
    }

    /// Approximate quantile from bin midpoints (in-range data only).
    ///
    /// Returns `None` if no in-range observations exist or `q` ∉ [0, 1].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let in_range = self.count - self.underflow - self.overflow;
        if in_range == 0 {
            return None;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                let (a, b) = self.bin_range(i);
                return Some(0.5 * (a + b));
            }
        }
        let (a, b) = self.bin_range(self.bins.len() - 1);
        Some(0.5 * (a + b))
    }

    /// Merge another histogram with identical binning.
    ///
    /// # Panics
    /// Panics if the bin layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.low, other.low, "histogram low bounds differ");
        assert_eq!(self.high, other.high, "histogram high bounds differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_receive_correct_values() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1u64; 10][..]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.num_bins(), 10);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.0); // boundary → overflow (interval is half-open)
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn bin_ranges_partition_domain() {
        let h = Histogram::new(2.0, 6.0, 4);
        assert_eq!(h.bin_range(0), (2.0, 3.0));
        assert_eq!(h.bin_range(3), (5.0, 6.0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..100 {
            h.push((i as f64) / 100.0);
        }
        let total: f64 = (0..5).map(|i| h.fraction(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_reasonable() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.push((i % 100) as f64);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() < 2.0, "median {med}");
        assert!(h.quantile(1.5).is_none());
        assert!(Histogram::new(0.0, 1.0, 2).quantile(0.5).is_none());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.push(0.25);
        b.push(0.75);
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_rejects_mismatched() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }

    #[test]
    fn edge_value_near_high_boundary() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.push(0.9999999999999999); // rounds into the last bin, not past it
        assert_eq!(h.counts()[2], 1);
    }
}
