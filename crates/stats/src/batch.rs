//! Batch-means steady-state estimation.
//!
//! Petri-net and DES runs produce *correlated* within-run observations; the
//! batch-means method groups consecutive observations into batches whose
//! means are approximately independent, enabling honest confidence intervals
//! — this is how "simulate until the percentages stabilize" (paper §2/§6) is
//! made precise.

use crate::ci::ConfidenceInterval;
use crate::error::StatsError;
use crate::online::Welford;

/// Fixed-batch-size batch-means accumulator.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: Welford,
    batches: Vec<f64>,
    overall: Welford,
}

impl BatchMeans {
    /// Create an accumulator with the given (positive) batch size.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            current: Welford::new(),
            batches: Vec::new(),
            overall: Welford::new(),
        }
    }

    /// Add one raw observation.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current.push(x);
        if self.current.count() as usize == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of complete batches.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Total raw observations pushed.
    pub fn observation_count(&self) -> u64 {
        self.overall.count()
    }

    /// Overall (raw) mean.
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// The completed batch means.
    pub fn batch_means(&self) -> &[f64] {
        &self.batches
    }

    /// Lag-1 autocorrelation of the batch means — values near 0 indicate the
    /// batches are long enough to be treated as independent.
    pub fn lag1_autocorrelation(&self) -> Result<f64, StatsError> {
        let n = self.batches.len();
        if n < 3 {
            return Err(StatsError::InsufficientData {
                what: "lag1_autocorrelation",
                needed: 3,
                got: n,
            });
        }
        let mean: f64 = self.batches.iter().sum::<f64>() / n as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            let d = self.batches[i] - mean;
            den += d * d;
            if i + 1 < n {
                num += d * (self.batches[i + 1] - mean);
            }
        }
        if den == 0.0 {
            Ok(0.0)
        } else {
            Ok(num / den)
        }
    }

    /// Confidence interval over the batch means.
    pub fn confidence_interval(&self, level: f64) -> Result<ConfidenceInterval, StatsError> {
        ConfidenceInterval::from_samples(&self.batches, level)
    }

    /// True once the relative CI half-width over batch means is below
    /// `rel_precision` (with at least `min_batches` batches).
    pub fn converged(&self, level: f64, rel_precision: f64, min_batches: usize) -> bool {
        if self.batches.len() < min_batches.max(2) {
            return false;
        }
        match self.confidence_interval(level) {
            Ok(ci) => ci.relative_half_width() <= rel_precision,
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Sample};
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn batches_form_correctly() {
        let mut bm = BatchMeans::new(4);
        for i in 0..10 {
            bm.push(i as f64);
        }
        // Batches: [0..4) mean 1.5, [4..8) mean 5.5; 2 observations pending.
        assert_eq!(bm.batch_count(), 2);
        assert_eq!(bm.batch_means(), &[1.5, 5.5]);
        assert_eq!(bm.observation_count(), 10);
        assert!((bm.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn iid_data_converges() {
        let d = Exponential::new(1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(42);
        let mut bm = BatchMeans::new(100);
        for _ in 0..20_000 {
            bm.push(d.sample(&mut rng));
        }
        assert!(bm.converged(0.95, 0.05, 10));
        let ci = bm.confidence_interval(0.95).unwrap();
        assert!(ci.contains(1.0), "CI [{}, {}]", ci.low(), ci.high());
        let rho = bm.lag1_autocorrelation().unwrap();
        assert!(rho.abs() < 0.2, "iid batch means, rho = {rho}");
    }

    #[test]
    fn correlated_data_higher_autocorrelation_with_small_batches() {
        // AR(1)-ish sequence: batch size 1 keeps the correlation; large
        // batches wash it out.
        let mut rng = Xoshiro256PlusPlus::new(7);
        let mut small = BatchMeans::new(1);
        let mut large = BatchMeans::new(200);
        let mut x = 0.0f64;
        use crate::rng::Rng64;
        for _ in 0..40_000 {
            x = 0.95 * x + rng.next_f64() - 0.5;
            small.push(x);
            large.push(x);
        }
        let rho_small = small.lag1_autocorrelation().unwrap();
        let rho_large = large.lag1_autocorrelation().unwrap();
        assert!(rho_small > 0.8, "rho_small = {rho_small}");
        assert!(rho_large < rho_small, "{rho_large} !< {rho_small}");
    }

    #[test]
    fn insufficient_batches_errors() {
        let mut bm = BatchMeans::new(5);
        for i in 0..9 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 1);
        assert!(bm.lag1_autocorrelation().is_err());
        assert!(bm.confidence_interval(0.95).is_err());
        assert!(!bm.converged(0.95, 0.1, 2));
    }

    #[test]
    fn constant_data_zero_autocorrelation() {
        let mut bm = BatchMeans::new(2);
        for _ in 0..20 {
            bm.push(5.0);
        }
        assert_eq!(bm.lag1_autocorrelation().unwrap(), 0.0);
    }
}
