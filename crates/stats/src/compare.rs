//! Series-comparison metrics.
//!
//! The paper's Tables 4 and 5 report the *average absolute difference*
//! between model predictions across a parameter sweep (Sim-vs-Markov,
//! Sim-vs-PN, Markov-vs-PN). These helpers compute exactly those deltas.

use crate::error::StatsError;

fn check_lengths(a: &[f64], b: &[f64]) -> Result<(), StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(StatsError::InsufficientData {
            what: "series comparison",
            needed: 1,
            got: 0,
        });
    }
    Ok(())
}

/// Mean absolute error between two equal-length series.
pub fn mean_abs_error(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    check_lengths(a, b)?;
    Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64)
}

/// Root-mean-square error between two equal-length series.
pub fn rmse(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    check_lengths(a, b)?;
    Ok((a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt())
}

/// Maximum absolute error between two equal-length series.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    check_lengths(a, b)?;
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max))
}

/// Mean absolute *percentage* error (skips points where the reference is 0).
///
/// Returns `None` when every reference point is zero.
pub fn mape(reference: &[f64], other: &[f64]) -> Result<Option<f64>, StatsError> {
    check_lengths(reference, other)?;
    let mut total = 0.0;
    let mut n = 0usize;
    for (r, o) in reference.iter().zip(other) {
        if *r != 0.0 {
            total += ((r - o) / r).abs();
            n += 1;
        }
    }
    Ok((n > 0).then(|| 100.0 * total / n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_zero_error() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(mean_abs_error(&a, &a).unwrap(), 0.0);
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
        assert_eq!(max_abs_error(&a, &a).unwrap(), 0.0);
        assert_eq!(mape(&a, &a).unwrap(), Some(0.0));
    }

    #[test]
    fn known_deltas() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [1.0, -1.0, 3.0, -3.0];
        assert_eq!(mean_abs_error(&a, &b).unwrap(), 2.0);
        assert_eq!(max_abs_error(&a, &b).unwrap(), 3.0);
        assert!((rmse(&a, &b).unwrap() - (5.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_at_least_mae() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [2.0, 3.0, 2.5, 4.0];
        assert!(rmse(&a, &b).unwrap() >= mean_abs_error(&a, &b).unwrap());
    }

    #[test]
    fn mape_skips_zero_reference() {
        let r = [0.0, 2.0];
        let o = [5.0, 3.0];
        assert_eq!(mape(&r, &o).unwrap(), Some(50.0));
        assert_eq!(mape(&[0.0], &[1.0]).unwrap(), None);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(mean_abs_error(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[], &[]).is_err());
        assert!(max_abs_error(&[1.0, 2.0], &[1.0]).is_err());
        assert!(mape(&[1.0], &[]).is_err());
    }
}
