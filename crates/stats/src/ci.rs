//! Normal and Student-t quantiles plus confidence intervals.
//!
//! Quantiles are computed without lookup tables: the normal inverse CDF uses
//! Acklam's rational approximation (|rel err| < 1.15e-9) and the Student-t
//! inverse uses the Hill (1970) asymptotic expansion around the normal
//! quantile, which is accurate to ~1e-5 for ν ≥ 2 — far tighter than the
//! Monte-Carlo noise the intervals describe.

use crate::error::StatsError;
use crate::online::Welford;

/// Inverse CDF of the standard normal distribution (Acklam's algorithm).
///
/// # Panics
/// Panics if `p` is not strictly inside (0, 1).
#[allow(clippy::excessive_precision)] // Acklam's published coefficients, verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Upper quantile of Student's t with `df` degrees of freedom (Hill, 1970).
///
/// For `df == 1` and `df == 2` exact closed forms are used; `df > 100` falls
/// back to the normal quantile (the difference is below 1e-3 there).
///
/// # Panics
/// Panics if `p` is not in (0, 1) or `df == 0`.
pub fn t_quantile(p: f64, df: u64) -> f64 {
    assert!(df >= 1, "df must be >= 1");
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    if p == 0.5 {
        return 0.0;
    }
    if p < 0.5 {
        return -t_quantile(1.0 - p, df);
    }
    match df {
        1 => (std::f64::consts::PI * (p - 0.5)).tan(),
        2 => {
            let a = 2.0 * p - 1.0;
            a * (2.0 / (1.0 - a * a)).sqrt() / std::f64::consts::SQRT_2 * std::f64::consts::SQRT_2
        }
        _ => {
            let z = normal_quantile(p);
            let n = df as f64;
            // Cornish–Fisher-type expansion of t in terms of z.
            let z2 = z * z;
            let g1 = (z2 + 1.0) * z / 4.0;
            let g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
            let g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
            let g4 =
                ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z / 92160.0;
            z + g1 / n + g2 / (n * n) + g3 / (n * n * n) + g4 / (n * n * n * n)
        }
    }
}

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Student-t interval from a [`Welford`] accumulator.
    ///
    /// Requires at least two observations.
    pub fn from_welford(w: &Welford, level: f64) -> Result<Self, StatsError> {
        if w.count() < 2 {
            return Err(StatsError::InsufficientData {
                what: "ConfidenceInterval",
                needed: 2,
                got: w.count() as usize,
            });
        }
        let alpha = 1.0 - level;
        let t = t_quantile(1.0 - alpha / 2.0, w.count() - 1);
        Ok(Self {
            mean: w.mean(),
            half_width: t * w.std_err(),
            level,
        })
    }

    /// Interval from raw samples.
    pub fn from_samples(xs: &[f64], level: f64) -> Result<Self, StatsError> {
        let mut w = Welford::new();
        for &x in xs {
            w.push(x);
        }
        Self::from_welford(&w, level)
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low() && x <= self.high()
    }

    /// Relative half-width (half-width / |mean|); infinite when mean is 0.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_reference_values() {
        // Classic z-table entries.
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.95) - 1.644854).abs() < 1e-4);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.999) - 3.090232).abs() < 1e-4);
        assert!((normal_quantile(0.001) + 3.090232).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for p in [0.6, 0.75, 0.9, 0.99, 0.9999] {
            let hi = normal_quantile(p);
            let lo = normal_quantile(1.0 - p);
            assert!((hi + lo).abs() < 1e-8, "asymmetry at {p}");
        }
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1)")]
    fn normal_quantile_rejects_boundary() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn t_quantile_reference_values() {
        // t-table entries, p = 0.975 two-sided 95%.
        assert!((t_quantile(0.975, 1) - 12.7062).abs() < 0.01);
        assert!((t_quantile(0.975, 2) - 4.3027).abs() < 0.01);
        assert!((t_quantile(0.975, 5) - 2.5706).abs() < 0.01);
        assert!((t_quantile(0.975, 10) - 2.2281).abs() < 0.005);
        assert!((t_quantile(0.975, 30) - 2.0423).abs() < 0.003);
        assert!((t_quantile(0.95, 10) - 1.8125).abs() < 0.005);
        assert!((t_quantile(0.99, 20) - 2.5280).abs() < 0.005);
    }

    #[test]
    fn t_quantile_approaches_normal() {
        let z = normal_quantile(0.975);
        let t = t_quantile(0.975, 10_000);
        assert!((z - t).abs() < 1e-3);
    }

    #[test]
    fn t_quantile_median_and_symmetry() {
        assert_eq!(t_quantile(0.5, 7), 0.0);
        assert!((t_quantile(0.9, 7) + t_quantile(0.1, 7)).abs() < 1e-9);
    }

    #[test]
    fn ci_from_samples() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8, 10.1];
        let ci = ConfidenceInterval::from_samples(&xs, 0.95).unwrap();
        assert!(ci.contains(10.0));
        assert!(ci.low() < ci.mean && ci.mean < ci.high());
        assert!(ci.half_width > 0.0);
        assert!(ci.relative_half_width() < 0.1);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn ci_insufficient_data() {
        let err = ConfidenceInterval::from_samples(&[1.0], 0.95).unwrap_err();
        assert!(matches!(err, StatsError::InsufficientData { .. }));
    }

    #[test]
    fn ci_coverage_monte_carlo() {
        // 95% CIs built from N(0,1) samples should contain 0 about 95% of the
        // time. With 500 trials, 3σ tolerance ≈ 0.0293.
        use crate::dist::Sample;
        use crate::rng::Xoshiro256PlusPlus;
        let normal = crate::dist::Normal::new(0.0, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::new(12345);
        let trials = 500;
        let mut covered = 0;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..20).map(|_| normal.sample(&mut rng)).collect();
            if ConfidenceInterval::from_samples(&xs, 0.95)
                .unwrap()
                .contains(0.0)
            {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((rate - 0.95).abs() < 0.04, "coverage {rate}");
    }

    #[test]
    fn zero_mean_relative_width_infinite() {
        let ci = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
            level: 0.9,
        };
        assert!(ci.relative_half_width().is_infinite());
    }
}
