//! Stable, platform-independent content hashing.
//!
//! The scenario result cache keys finished reports on a hash of each
//! scenario's canonical serialization, so the hash must be **stable**: the
//! same bytes must produce the same digest on every platform, every build
//! and for the lifetime of this repository. `std::hash` deliberately makes
//! no such promise (SipHash keys are randomized per process), so this
//! module implements 128-bit FNV-1a from its published constants — tiny,
//! dependency-free and byte-order independent.
//!
//! This is a *content fingerprint*, not a cryptographic hash: collisions
//! are astronomically unlikely for honest inputs but constructible by an
//! adversary. Consumers that must be collision-proof (the result cache)
//! store the full key next to the value and verify it on lookup.

/// FNV-1a 128-bit offset basis (the published constant).
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime, `2^88 + 2^8 + 0x3b`.
const FNV128_PRIME: u128 = 0x1000000000000000000013b;

/// Streaming 128-bit FNV-1a hasher.
///
/// ```
/// use wsnem_stats::hash::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write(b"hello ");
/// h.write(b"world");
/// assert_eq!(h.finish(), StableHasher::hash_bytes(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self {
            state: FNV128_OFFSET,
        }
    }

    /// Fold `bytes` into the running digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Fold a length-prefixed byte string in, so `("ab", "c")` and
    /// `("a", "bc")` cannot collide when hashing several fields.
    pub fn write_delimited(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The current digest.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The current digest as 32 lowercase hex characters (the cache's
    /// file-name form).
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.state)
    }

    /// One-shot digest of a byte string.
    pub fn hash_bytes(bytes: &[u8]) -> u128 {
        let mut h = Self::new();
        h.write(bytes);
        h.finish()
    }
}

/// One-shot 128-bit FNV-1a digest of a byte string.
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    StableHasher::hash_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values computed from the published offset/prime pair
        // (Fowler/Noll/Vo); the empty string hashes to the offset basis.
        assert_eq!(fnv1a128(b""), FNV128_OFFSET);
        assert_eq!(fnv1a128(b"a"), 0xd228cb696f1a8caf78912b704e4a8964);
        assert_eq!(fnv1a128(b"foobar"), 0x343e1662793c64bf6f0d3597ba446f18);
    }

    #[test]
    fn streaming_equals_oneshot_and_is_order_sensitive() {
        let mut h = StableHasher::new();
        h.write(b"scenario:");
        h.write(b"paper-defaults");
        assert_eq!(h.finish(), fnv1a128(b"scenario:paper-defaults"));
        assert_ne!(fnv1a128(b"ab"), fnv1a128(b"ba"));
        assert_ne!(fnv1a128(b"a"), fnv1a128(b"a\0"));
    }

    #[test]
    fn delimited_fields_cannot_shift_bytes_across_boundaries() {
        let digest = |parts: &[&[u8]]| {
            let mut h = StableHasher::new();
            for p in parts {
                h.write_delimited(p);
            }
            h.finish()
        };
        assert_ne!(digest(&[b"ab", b"c"]), digest(&[b"a", b"bc"]));
        assert_eq!(digest(&[b"ab", b"c"]), digest(&[b"ab", b"c"]));
    }

    #[test]
    fn hex_form_is_32_lowercase_chars() {
        let mut h = StableHasher::new();
        h.write(b"x");
        let hex = h.finish_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(hex, format!("{:032x}", h.finish()));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = fnv1a128(b"wsnem scenario bytes");
        for i in 0..8 {
            let mut flipped = b"wsnem scenario bytes".to_vec();
            flipped[3] ^= 1 << i;
            assert_ne!(base, fnv1a128(&flipped), "bit {i}");
        }
    }
}
