//! # wsnem-stats
//!
//! Self-contained randomness and statistics substrate for the wsnem
//! simulators (EDSPN engine, discrete-event simulator, experiment harness).
//!
//! The crate deliberately avoids external RNG/distribution crates so that a
//! `(master seed, stream id)` pair reproduces **bit-identical** sample paths
//! on every platform and for the lifetime of this repository — a property the
//! cross-model comparison experiments of the paper rely on.
//!
//! Contents:
//!
//! * [`rng`] — SplitMix64 and xoshiro256++ generators, the [`Rng64`]
//!   abstraction and [`StreamFactory`] for independent replication streams.
//! * [`dist`] — continuous and discrete distributions with analytic moments,
//!   sampled by inversion / Box–Muller / Marsaglia–Tsang.
//! * [`online`] — Welford mean/variance, extremes, covariance.
//! * [`timeweighted`] — time-integrals of piecewise-constant signals (the
//!   backbone of "percentage of time in state X" measures).
//! * [`batch`] — batch-means steady-state estimation with lag-1 diagnostics.
//! * [`ci`] — normal / Student-t quantiles and confidence intervals.
//! * [`histogram`] — fixed-width histograms with summary statistics.
//! * [`mser`] — MSER-style warm-up (initial transient) truncation.
//! * [`compare`] — series-comparison metrics (MAE, RMSE, max-abs) used to
//!   regenerate the paper's Δ tables.
//! * [`hash`] — stable 128-bit FNV-1a content fingerprints (the scenario
//!   result cache's key function; `std::hash` is randomized per process).
//! * [`pq`] — the cancellable tombstone timer heap shared by the DES kernel
//!   and the EDSPN token-game engine (O(log n) schedule/pop, O(1) cancel).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]
// `!(x > 0.0)`-style guards deliberately reject NaN together with the
// out-of-domain values; `partial_cmp` rewrites would lose that property.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod batch;
pub mod ci;
pub mod compare;
pub mod dist;
pub mod error;
pub mod hash;
pub mod histogram;
pub mod mser;
pub mod online;
pub mod pq;
pub mod rng;
pub mod timeweighted;

pub use batch::BatchMeans;
pub use ci::{normal_quantile, t_quantile, ConfidenceInterval};
pub use compare::{max_abs_error, mean_abs_error, rmse};
pub use dist::{Dist, Sample};
pub use error::StatsError;
pub use hash::{fnv1a128, StableHasher};
pub use histogram::Histogram;
pub use online::{MinMax, Welford};
pub use pq::{EventId, EventQueue};
pub use rng::{Rng64, SplitMix64, StreamFactory, Xoshiro256PlusPlus};
pub use timeweighted::TimeWeighted;
