//! Continuous distributions with analytic moments, sampled by inversion,
//! Box–Muller and Marsaglia–Tsang.
//!
//! Two layers:
//!
//! * [`Dist`] — a `Copy` enum describing a firing-time / service-time /
//!   interarrival distribution. This is what net specs, workloads and
//!   scenario files store (it is serializable behind the `serde` feature).
//! * Dedicated structs ([`Exponential`], [`Normal`]) for hot paths and tests
//!   that want a validated distribution without the enum dispatch.
//!
//! All samplers draw from a [`Rng64`] and are deterministic per stream: a
//! `(master seed, stream id)` pair reproduces bit-identical sample paths.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::error::StatsError;
use crate::rng::Rng64;

/// A value that can be sampled from and has analytic first/second moments.
pub trait Sample {
    /// Draw one observation.
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64;

    /// Analytic mean.
    fn mean(&self) -> f64;

    /// Analytic variance.
    fn variance(&self) -> f64;
}

/// A distribution description: the closed set of firing/service/interarrival
/// laws understood by the simulators.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Dist {
    /// Exponential with the given rate (mean `1/rate`). Sampled by
    /// inversion.
    Exponential {
        /// Rate parameter (> 0).
        rate: f64,
    },
    /// A constant (degenerate) delay — the paper's Power Down Threshold and
    /// Power Up Delay.
    Deterministic(f64),
    /// Erlang: sum of `k` i.i.d. exponentials of the given rate
    /// (mean `k/rate`, variance `k/rate²`).
    Erlang {
        /// Number of phases (>= 1).
        k: u32,
        /// Per-phase rate (> 0).
        rate: f64,
    },
    /// Gamma with shape and rate (mean `shape/rate`). Sampled by
    /// Marsaglia–Tsang.
    Gamma {
        /// Shape parameter (> 0).
        shape: f64,
        /// Rate parameter (> 0).
        rate: f64,
    },
    /// Log-normal: `exp(N(mu, sigma²))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal (> 0).
        sigma: f64,
    },
    /// Uniform on `[low, high)`.
    Uniform {
        /// Lower bound.
        low: f64,
        /// Upper bound (> low).
        high: f64,
    },
}

impl Dist {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), StatsError> {
        fn positive(what: &'static str, v: f64) -> Result<(), StatsError> {
            if !(v > 0.0) || !v.is_finite() {
                return Err(StatsError::InvalidParameter {
                    what,
                    constraint: "> 0 and finite",
                    value: v,
                });
            }
            Ok(())
        }
        match *self {
            Dist::Exponential { rate } => positive("Exponential", rate),
            Dist::Deterministic(delay) => {
                if !(delay >= 0.0) || !delay.is_finite() {
                    return Err(StatsError::InvalidParameter {
                        what: "Deterministic",
                        constraint: ">= 0 and finite",
                        value: delay,
                    });
                }
                Ok(())
            }
            Dist::Erlang { k, rate } => {
                if k == 0 {
                    return Err(StatsError::InvalidParameter {
                        what: "Erlang",
                        constraint: "k >= 1",
                        value: 0.0,
                    });
                }
                positive("Erlang", rate)
            }
            Dist::Gamma { shape, rate } => {
                positive("Gamma", shape)?;
                positive("Gamma", rate)
            }
            Dist::LogNormal { mu, sigma } => {
                if !mu.is_finite() {
                    return Err(StatsError::InvalidParameter {
                        what: "LogNormal",
                        constraint: "mu finite",
                        value: mu,
                    });
                }
                positive("LogNormal", sigma)
            }
            Dist::Uniform { low, high } => {
                if !low.is_finite() || !high.is_finite() || !(high > low) {
                    return Err(StatsError::InvalidParameter {
                        what: "Uniform",
                        constraint: "low < high, both finite",
                        value: high - low,
                    });
                }
                Ok(())
            }
        }
    }

    /// Squared coefficient of variation `Cs² = Var/Mean²` (the P-K formula's
    /// variability knob). `NaN` for zero-mean distributions.
    pub fn cv2(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }

    /// True for [`Dist::Exponential`].
    pub fn is_exponential(&self) -> bool {
        matches!(self, Dist::Exponential { .. })
    }

    /// True for [`Dist::Deterministic`].
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Dist::Deterministic(_))
    }
}

impl Sample for Dist {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Exponential { rate } => sample_exponential(rate, rng),
            Dist::Deterministic(delay) => delay,
            Dist::Erlang { k, rate } => {
                // Exact: sum of k exponential phases (k is small in practice).
                let mut acc = 0.0;
                for _ in 0..k {
                    acc += sample_exponential(rate, rng);
                }
                acc
            }
            Dist::Gamma { shape, rate } => sample_gamma(shape, rng) / rate,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
            Dist::Uniform { low, high } => low + (high - low) * rng.next_f64(),
        }
    }

    fn mean(&self) -> f64 {
        match *self {
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::Deterministic(delay) => delay,
            Dist::Erlang { k, rate } => k as f64 / rate,
            Dist::Gamma { shape, rate } => shape / rate,
            Dist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
            Dist::Uniform { low, high } => 0.5 * (low + high),
        }
    }

    fn variance(&self) -> f64 {
        match *self {
            Dist::Exponential { rate } => 1.0 / (rate * rate),
            Dist::Deterministic(_) => 0.0,
            Dist::Erlang { k, rate } => k as f64 / (rate * rate),
            Dist::Gamma { shape, rate } => shape / (rate * rate),
            Dist::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (s2.exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            Dist::Uniform { low, high } => {
                let w = high - low;
                w * w / 12.0
            }
        }
    }
}

/// Inversion: `-ln(U)/rate` with `U` in the open unit interval.
#[inline]
fn sample_exponential<R: Rng64 + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    -rng.next_open_f64().ln() / rate
}

/// Box–Muller (the sine branch is discarded to keep the sampler stateless;
/// two uniforms per observation).
#[inline]
fn sample_standard_normal<R: Rng64 + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.next_open_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Marsaglia–Tsang for `Gamma(shape, 1)`; the `shape < 1` boost uses the
/// standard `U^(1/shape)` augmentation.
fn sample_gamma<R: Rng64 + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        let u = rng.next_open_f64();
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = rng.next_open_f64();
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A validated exponential distribution (struct form for hot paths).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Validated constructor (`rate > 0`).
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        Dist::Exponential { rate }.validate()?;
        Ok(Self { rate })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sample for Exponential {
    #[inline]
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        sample_exponential(self.rate, rng)
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

/// A validated normal distribution (struct form; used by CI coverage tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Validated constructor (`sigma > 0`, `mu` finite).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Normal",
                constraint: "mu finite",
                value: mu,
            });
        }
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Normal",
                constraint: "sigma > 0 and finite",
                value: sigma,
            });
        }
        Ok(Self { mu, sigma })
    }
}

impl Sample for Normal {
    #[inline]
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * sample_standard_normal(rng)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    fn sample_mean_var(d: &impl Sample, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = Xoshiro256PlusPlus::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn validation_accepts_good_rejects_bad() {
        assert!(Dist::Exponential { rate: 2.0 }.validate().is_ok());
        assert!(Dist::Exponential { rate: 0.0 }.validate().is_err());
        assert!(Dist::Exponential { rate: -1.0 }.validate().is_err());
        assert!(Dist::Exponential { rate: f64::NAN }.validate().is_err());
        assert!(Dist::Deterministic(0.0).validate().is_ok());
        assert!(Dist::Deterministic(-0.1).validate().is_err());
        assert!(Dist::Deterministic(f64::INFINITY).validate().is_err());
        assert!(Dist::Erlang { k: 2, rate: 4.0 }.validate().is_ok());
        assert!(Dist::Erlang { k: 0, rate: 4.0 }.validate().is_err());
        assert!(Dist::Gamma {
            shape: 0.5,
            rate: 1.0
        }
        .validate()
        .is_ok());
        assert!(Dist::Gamma {
            shape: 0.0,
            rate: 1.0
        }
        .validate()
        .is_err());
        assert!(Dist::LogNormal {
            mu: 0.0,
            sigma: 1.0
        }
        .validate()
        .is_ok());
        assert!(Dist::LogNormal {
            mu: 0.0,
            sigma: 0.0
        }
        .validate()
        .is_err());
        assert!(Dist::Uniform {
            low: 0.0,
            high: 1.0
        }
        .validate()
        .is_ok());
        assert!(Dist::Uniform {
            low: 1.0,
            high: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn analytic_moments() {
        assert_eq!(Dist::Exponential { rate: 4.0 }.mean(), 0.25);
        assert_eq!(Dist::Exponential { rate: 4.0 }.variance(), 0.0625);
        assert_eq!(Dist::Deterministic(0.7).mean(), 0.7);
        assert_eq!(Dist::Deterministic(0.7).variance(), 0.0);
        assert_eq!(Dist::Erlang { k: 2, rate: 4.0 }.mean(), 0.5);
        // Erlang-k has Cs² = 1/k.
        assert!((Dist::Erlang { k: 2, rate: 4.0 }.cv2() - 0.5).abs() < 1e-12);
        assert_eq!(
            Dist::Gamma {
                shape: 2.5,
                rate: 5.0
            }
            .mean(),
            0.5
        );
        assert_eq!(
            Dist::Uniform {
                low: 1.0,
                high: 3.0
            }
            .mean(),
            2.0
        );
        assert!(
            (Dist::Uniform {
                low: 1.0,
                high: 3.0
            }
            .variance()
                - 1.0 / 3.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn samplers_match_their_moments() {
        let n = 200_000;
        let cases: Vec<Dist> = vec![
            Dist::Exponential { rate: 2.0 },
            Dist::Erlang { k: 3, rate: 6.0 },
            Dist::Gamma {
                shape: 2.5,
                rate: 1.0,
            },
            Dist::Gamma {
                shape: 0.5,
                rate: 2.0,
            },
            Dist::LogNormal {
                mu: -1.0,
                sigma: 0.5,
            },
            Dist::Uniform {
                low: -1.0,
                high: 2.0,
            },
        ];
        for (i, d) in cases.iter().enumerate() {
            let (mean, var) = sample_mean_var(d, n, 1000 + i as u64);
            let m_tol = 4.0 * (d.variance() / n as f64).sqrt() + 1e-12;
            assert!(
                (mean - d.mean()).abs() < m_tol,
                "{d:?}: sample mean {mean} vs {}",
                d.mean()
            );
            assert!(
                (var - d.variance()).abs() < 0.1 * d.variance().max(0.05),
                "{d:?}: sample var {var} vs {}",
                d.variance()
            );
        }
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Dist::Deterministic(0.25);
        let mut rng = Xoshiro256PlusPlus::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0.25);
        }
    }

    #[test]
    fn samples_are_nonnegative_where_required() {
        let mut rng = Xoshiro256PlusPlus::new(9);
        for d in [
            Dist::Exponential { rate: 0.5 },
            Dist::Erlang { k: 4, rate: 1.0 },
            Dist::Gamma {
                shape: 0.3,
                rate: 1.0,
            },
            Dist::LogNormal {
                mu: 0.0,
                sigma: 2.0,
            },
        ] {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) >= 0.0, "{d:?}");
            }
        }
    }

    #[test]
    fn struct_forms_agree_with_enum() {
        let e = Exponential::new(3.0).unwrap();
        assert_eq!(e.rate(), 3.0);
        assert_eq!(e.mean(), Dist::Exponential { rate: 3.0 }.mean());
        assert!(Exponential::new(0.0).is_err());
        let n = Normal::new(1.0, 2.0).unwrap();
        assert_eq!(n.mean(), 1.0);
        assert_eq!(n.variance(), 4.0);
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        let (mean, var) = sample_mean_var(&n, 100_000, 5);
        assert!((mean - 1.0).abs() < 0.05, "{mean}");
        assert!((var - 4.0).abs() < 0.2, "{var}");
    }

    #[test]
    fn determinism_per_seed() {
        let d = Dist::Gamma {
            shape: 1.7,
            rate: 2.0,
        };
        let mut a = Xoshiro256PlusPlus::new(123);
        let mut b = Xoshiro256PlusPlus::new(123);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut a).to_bits(), d.sample(&mut b).to_bits());
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn dist_serde_round_trip() {
        use serde::{Deserialize as _, Serialize as _};
        for d in [
            Dist::Exponential { rate: 2.0 },
            Dist::Deterministic(0.5),
            Dist::Erlang { k: 3, rate: 6.0 },
            Dist::LogNormal {
                mu: -0.5,
                sigma: 0.8,
            },
        ] {
            let v = d.to_value();
            let back = Dist::from_value(&v).unwrap();
            assert_eq!(d, back);
        }
    }
}
