//! MSER (Marginal Standard Error Rule) warm-up truncation.
//!
//! Steady-state estimates from a single simulation run are biased by the
//! initial transient (the CPU starts in StandBy with an empty queue). The
//! MSER rule picks the truncation point `d*` that minimizes the width of the
//! marginal confidence interval of the truncated mean — a standard, fully
//! automatic initial-transient deletion heuristic.

use crate::error::StatsError;

/// Result of an MSER truncation analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MserResult {
    /// Optimal number of leading observations to discard.
    pub truncate: usize,
    /// Mean of the retained suffix.
    pub mean: f64,
    /// The minimized MSER statistic (variance of the suffix mean).
    pub statistic: f64,
}

/// Apply the MSER rule to a series, searching truncation points in the first
/// half of the data (the conventional restriction that keeps the estimate
/// from being dominated by tiny suffixes).
///
/// `batch` groups the raw series into batch averages first (MSER-5 uses
/// `batch = 5`), which smooths high-frequency noise.
pub fn mser(series: &[f64], batch: usize) -> Result<MserResult, StatsError> {
    if batch == 0 {
        return Err(StatsError::InvalidParameter {
            what: "mser",
            constraint: "batch >= 1",
            value: 0.0,
        });
    }
    let batched: Vec<f64> = series
        .chunks_exact(batch)
        .map(|c| c.iter().sum::<f64>() / batch as f64)
        .collect();
    let n = batched.len();
    if n < 4 {
        return Err(StatsError::InsufficientData {
            what: "mser",
            needed: 4 * batch,
            got: series.len(),
        });
    }

    // Suffix sums let every candidate truncation be evaluated in O(1).
    let mut suffix_sum = vec![0.0f64; n + 1];
    let mut suffix_sq = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        suffix_sum[i] = suffix_sum[i + 1] + batched[i];
        suffix_sq[i] = suffix_sq[i + 1] + batched[i] * batched[i];
    }

    let mut best = MserResult {
        truncate: 0,
        mean: suffix_sum[0] / n as f64,
        statistic: f64::INFINITY,
    };
    for d in 0..n / 2 {
        let m = (n - d) as f64;
        let mean = suffix_sum[d] / m;
        let var = (suffix_sq[d] / m - mean * mean).max(0.0);
        let stat = var / m; // squared std-error of the truncated mean
        if stat < best.statistic {
            best = MserResult {
                truncate: d * batch,
                mean,
                statistic: stat,
            };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng64, Xoshiro256PlusPlus};

    #[test]
    fn stationary_series_keeps_everything_ish() {
        let mut rng = Xoshiro256PlusPlus::new(1);
        let series: Vec<f64> = (0..2000).map(|_| rng.next_f64()).collect();
        let r = mser(&series, 5).unwrap();
        // No transient → truncation should be small.
        assert!(
            r.truncate < series.len() / 4,
            "truncated {} of {}",
            r.truncate,
            series.len()
        );
        assert!((r.mean - 0.5).abs() < 0.05);
    }

    #[test]
    fn obvious_transient_is_cut() {
        // 200 samples of a decaying transient, then stationary noise at 1.0.
        let mut rng = Xoshiro256PlusPlus::new(2);
        let mut series = Vec::new();
        for i in 0..200 {
            series.push(10.0 * (-(i as f64) / 40.0).exp() + rng.next_f64() * 0.1);
        }
        for _ in 0..1800 {
            series.push(1.0 + (rng.next_f64() - 0.5) * 0.1);
        }
        let r = mser(&series, 5).unwrap();
        assert!(r.truncate >= 50, "truncate = {}", r.truncate);
        assert!((r.mean - 1.0).abs() < 0.3, "mean = {}", r.mean);
    }

    #[test]
    fn truncated_mean_less_biased_than_raw() {
        let mut rng = Xoshiro256PlusPlus::new(3);
        let mut series = Vec::new();
        for _ in 0..300 {
            series.push(50.0 + rng.next_f64());
        }
        for _ in 0..1700 {
            series.push(1.0 + rng.next_f64());
        }
        let raw_mean = series.iter().sum::<f64>() / series.len() as f64;
        let r = mser(&series, 5).unwrap();
        assert!((r.mean - 1.5).abs() < (raw_mean - 1.5).abs());
    }

    #[test]
    fn errors_on_tiny_or_bad_input() {
        assert!(mser(&[1.0, 2.0], 1).is_err());
        assert!(mser(&[1.0; 100], 0).is_err());
        assert!(mser(&[1.0; 10], 5).is_err()); // only 2 batches
    }

    #[test]
    fn constant_series_zero_statistic() {
        let r = mser(&[3.0; 100], 5).unwrap();
        assert_eq!(r.mean, 3.0);
        assert!(r.statistic.abs() < 1e-18);
    }
}
