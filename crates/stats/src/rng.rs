//! Deterministic pseudo-random number generation.
//!
//! Two well-known generators are implemented from their reference C sources:
//!
//! * [`SplitMix64`] (Steele, Lea & Flood) — used for seed expansion only.
//! * [`Xoshiro256PlusPlus`] (Blackman & Vigna) — the workhorse generator for
//!   all simulations, with `jump`/`long_jump` for 2^128 / 2^192 stream
//!   separation.
//!
//! [`StreamFactory`] turns a single master seed into an unbounded family of
//! statistically independent streams, one per replication, so that parallel
//! replication schedules are reproducible regardless of thread interleaving.

/// Minimal trait for a 64-bit PRNG used throughout the workspace.
///
/// Deliberately small: the simulators only ever need raw `u64`s, uniform
/// `f64`s in `[0, 1)`, and bounded integers.
pub trait Rng64 {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling gives the canonical [0,1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — safe as an argument to
    /// `ln` when inverting CDFs.
    #[inline]
    fn next_open_f64(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// with rejection to remove modulo bias.
    #[inline]
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// SplitMix64: a tiny, very fast generator whose primary role here is to
/// expand seeds (it equidistributes any 64-bit seed, including 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from any 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — the default all-purpose generator.
///
/// Period 2^256 − 1; passes BigCrush; `jump()` advances 2^128 steps so
/// non-overlapping substreams are cheap to create.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed via SplitMix64 expansion (the seeding recommended by the authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // The all-zero state is invalid (fixed point); SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Self { s }
    }

    /// Construct directly from raw state words (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro state must be non-zero");
        Self { s }
    }

    /// Jump ahead 2^128 steps — generates non-overlapping sequences for up to
    /// 2^128 parallel streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        self.apply_jump(&JUMP);
    }

    /// Jump ahead 2^192 steps — for separating *groups* of streams.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x76E15D3EFEFDCBBF,
            0xC5004E441C522FB3,
            0x77710069854EE241,
            0x39109BB02ACBE635,
        ];
        self.apply_jump(&LONG_JUMP);
    }

    fn apply_jump(&mut self, table: &[u64; 4]) {
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &word in table {
            for b in 0..64 {
                if (word & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl Rng64 for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Factory producing statistically independent, reproducible RNG streams.
///
/// Stream `i` is derived as `xoshiro256++(splitmix64(master)^i-th output)`
/// followed by `i` applications of nothing — i.e. each stream gets a fresh,
/// independently expanded seed. Seed expansion (rather than jumping a single
/// stream) keeps stream creation O(1) in the stream index, which matters when
/// a sweep wants stream 40 000 without instantiating its predecessors.
#[derive(Debug, Clone, Copy)]
pub struct StreamFactory {
    master: u64,
}

impl StreamFactory {
    /// Create a factory from a master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this factory was built from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit seed of stream `index` (pure function).
    pub fn seed_of(&self, index: u64) -> u64 {
        // Two rounds of SplitMix over (master, index) — a keyed bijection with
        // good avalanche, so nearby indices map to unrelated seeds.
        let mut sm = SplitMix64::new(self.master ^ index.wrapping_mul(0xA24BAED4963EE407));
        sm.next_u64();
        sm.next_u64()
    }

    /// Materialize stream `index`.
    pub fn stream(&self, index: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::new(self.seed_of(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::new(42);
        let mut b = Xoshiro256PlusPlus::new(42);
        let mut c = Xoshiro256PlusPlus::new(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the canonical state [1,2,3,4].
        let mut x = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        assert_eq!(x.next_u64(), 41943041);
        assert_eq!(x.next_u64(), 58720359);
        assert_eq!(x.next_u64(), 3588806011781223);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut x = Xoshiro256PlusPlus::new(7);
        for _ in 0..10_000 {
            let u = x.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn open_f64_never_zero() {
        let mut x = Xoshiro256PlusPlus::new(7);
        for _ in 0..10_000 {
            let u = x.next_open_f64();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn bounded_is_unbiased_ish_and_in_range() {
        let mut x = Xoshiro256PlusPlus::new(99);
        let bound = 7u64;
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            let v = x.next_bounded(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt() + 50.0,
                "count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let mut a = Xoshiro256PlusPlus::new(5);
        let mut b = a;
        b.jump();
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // No overlap in a short window.
        for w in &vb {
            assert!(!va.contains(w));
        }
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256PlusPlus::new(5);
        let mut j = base;
        j.jump();
        let mut lj = base;
        lj.long_jump();
        assert_ne!(j, lj);
    }

    #[test]
    fn stream_factory_reproducible_and_distinct() {
        let f = StreamFactory::new(2024);
        let mut s0a = f.stream(0);
        let mut s0b = f.stream(0);
        let mut s1 = f.stream(1);
        assert_eq!(s0a.next_u64(), s0b.next_u64());
        // Streams with adjacent indices must diverge immediately.
        let a: Vec<u64> = (0..4).map(|_| s0a.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
        assert_eq!(f.master_seed(), 2024);
    }

    #[test]
    fn mean_of_uniform_near_half() {
        let mut x = Xoshiro256PlusPlus::new(31415);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| x.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        let mut x = Xoshiro256PlusPlus::new(1);
        let _ = x.next_bounded(0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }
}
