//! Error type shared by the statistics substrate.

use std::fmt;

/// Errors produced by distribution constructors and estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was out of its valid domain.
    InvalidParameter {
        /// Which distribution rejected the parameter.
        what: &'static str,
        /// Human-readable description of the violated constraint.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An estimator was asked for a result before seeing enough data.
    InsufficientData {
        /// What was being estimated.
        what: &'static str,
        /// How many observations are required.
        needed: usize,
        /// How many observations were available.
        got: usize,
    },
    /// Two series of different lengths were compared.
    LengthMismatch {
        /// Length of the left series.
        left: usize,
        /// Length of the right series.
        right: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                what,
                constraint,
                value,
            } => write!(f, "{what}: parameter {value} violates {constraint}"),
            StatsError::InsufficientData { what, needed, got } => {
                write!(f, "{what}: needs {needed} observations, got {got}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "series length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StatsError::InvalidParameter {
            what: "Exponential",
            constraint: "rate > 0",
            value: -1.0,
        };
        assert!(e.to_string().contains("Exponential"));
        assert!(e.to_string().contains("rate > 0"));

        let e = StatsError::InsufficientData {
            what: "BatchMeans",
            needed: 2,
            got: 0,
        };
        assert!(e.to_string().contains("BatchMeans"));

        let e = StatsError::LengthMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('4'));
    }
}
