//! Time-weighted statistics of piecewise-constant signals.
//!
//! Both simulators express "fraction of time the CPU spends in state X" and
//! "mean number of tokens in place P" as time integrals of a step function.
//! [`TimeWeighted`] accumulates ∫x dt exactly between updates.

/// Accumulates the time integral (and square integral) of a piecewise
/// constant signal, yielding time-averaged mean and variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    value: f64,
    integral: f64,
    integral_sq: f64,
    min: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start observing at time `t0` with initial signal value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        Self {
            start: t0,
            last_t: t0,
            value: v0,
            integral: 0.0,
            integral_sq: 0.0,
            min: v0,
            max: v0,
        }
    }

    /// Record that the signal changed to `v` at time `t` (must be ≥ the last
    /// update time; equal timestamps are fine — zero-width steps contribute
    /// nothing).
    #[inline]
    pub fn update(&mut self, t: f64, v: f64) {
        debug_assert!(
            t >= self.last_t,
            "time went backwards: {t} < {}",
            self.last_t
        );
        let dt = t - self.last_t;
        self.integral += self.value * dt;
        self.integral_sq += self.value * self.value * dt;
        self.last_t = t;
        self.value = v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Advance the clock to `t` without changing the value.
    #[inline]
    pub fn advance_to(&mut self, t: f64) {
        let v = self.value;
        self.update(t, v);
    }

    /// Current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Total observed span (last update − start).
    pub fn elapsed(&self) -> f64 {
        self.last_t - self.start
    }

    /// ∫ x dt up to the last update.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Time-averaged mean up to time `t` (advances a copy; 0 if no time has
    /// passed).
    pub fn mean_at(&self, t: f64) -> f64 {
        let mut c = *self;
        c.advance_to(t);
        c.mean()
    }

    /// Time-averaged mean over the observed span (0 if the span is empty).
    pub fn mean(&self) -> f64 {
        let dt = self.elapsed();
        if dt <= 0.0 {
            0.0
        } else {
            self.integral / dt
        }
    }

    /// Time-averaged variance over the observed span.
    pub fn variance(&self) -> f64 {
        let dt = self.elapsed();
        if dt <= 0.0 {
            return 0.0;
        }
        let m = self.integral / dt;
        (self.integral_sq / dt - m * m).max(0.0)
    }

    /// Minimum value seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Reset the observation window at time `t`, keeping the current value —
    /// used for warm-up truncation: statistics restart but the signal doesn't.
    pub fn reset_window(&mut self, t: f64) {
        self.advance_to(t);
        self.start = t;
        self.integral = 0.0;
        self.integral_sq = 0.0;
        self.min = self.value;
        self.max = self.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_mean_is_value() {
        let mut tw = TimeWeighted::new(0.0, 3.0);
        tw.advance_to(10.0);
        assert!((tw.mean() - 3.0).abs() < 1e-12);
        assert!(tw.variance() < 1e-12);
        assert_eq!(tw.min(), 3.0);
        assert_eq!(tw.max(), 3.0);
    }

    #[test]
    fn step_signal_mean() {
        // 1 for [0,2), 5 for [2,4) → mean 3, variance 4.
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(2.0, 5.0);
        tw.advance_to(4.0);
        assert!((tw.mean() - 3.0).abs() < 1e-12);
        assert!((tw.variance() - 4.0).abs() < 1e-12);
        assert_eq!(tw.min(), 1.0);
        assert_eq!(tw.max(), 5.0);
        assert!((tw.integral() - 12.0).abs() < 1e-12);
        assert!((tw.elapsed() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_width_steps_no_contribution() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.update(1.0, 10.0); // 0 over [0,1)
        tw.update(1.0, 0.0); // 10 for zero width
        tw.advance_to(2.0); // 0 over [1,2)
        assert!((tw.mean() - 0.0).abs() < 1e-12);
        assert_eq!(tw.max(), 10.0, "extremes still see the spike");
    }

    #[test]
    fn mean_at_future_time() {
        let mut tw = TimeWeighted::new(0.0, 2.0);
        tw.update(5.0, 0.0);
        // At t=10: 2*5 + 0*5 over 10 = 1.0
        assert!((tw.mean_at(10.0) - 1.0).abs() < 1e-12);
        // The original is untouched.
        assert!((tw.elapsed() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_mean_zero() {
        let tw = TimeWeighted::new(7.0, 9.0);
        assert_eq!(tw.mean(), 0.0);
        assert_eq!(tw.variance(), 0.0);
        assert_eq!(tw.value(), 9.0);
    }

    #[test]
    fn reset_window_truncates_history() {
        let mut tw = TimeWeighted::new(0.0, 100.0);
        tw.update(10.0, 1.0); // huge warm-up value for [0,10)
        tw.reset_window(10.0);
        tw.advance_to(20.0);
        assert!((tw.mean() - 1.0).abs() < 1e-12, "warm-up forgotten");
        assert_eq!(tw.min(), 1.0);
        assert_eq!(tw.max(), 1.0);
    }

    #[test]
    fn nonnegative_variance_after_reset() {
        let mut tw = TimeWeighted::new(0.0, 1.0);
        tw.update(1.0, 1.0);
        tw.reset_window(1.0);
        tw.advance_to(1.0);
        assert!(tw.variance() >= 0.0);
    }
}
