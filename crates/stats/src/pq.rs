//! Cancellable future-event list (tombstone timer heap).
//!
//! A binary heap keyed by `(time, tie_break)` gives O(log n) scheduling and
//! deterministic ordering among simultaneous events. Payloads live in a slab
//! so cancellation is O(1): the heap entry becomes a tombstone that `pop`
//! skips. [`EventId`]s carry a generation counter, so a stale id (slot
//! already reused) can never cancel someone else's event.
//!
//! The tie-break key comes in two flavours:
//!
//! * [`EventQueue::schedule`] assigns an internal monotone sequence number,
//!   so events at equal times pop in scheduling (FIFO) order — the classic
//!   future-event-list contract the DES kernel relies on.
//! * [`EventQueue::schedule_keyed`] lets the caller supply the key, so
//!   equal-time events pop in *key* order regardless of scheduling order.
//!   The EDSPN token game uses the transition index here, reproducing the
//!   "lowest transition index wins ties" rule of a linear minimum scan —
//!   which is what keeps heap-driven trajectories bit-identical to
//!   scan-driven ones.
//!
//! A queue should stick to one flavour: mixing both at the same timestamp
//! would interleave caller keys with internal sequence numbers.
//!
//! The hot loop allocates only when the heap/slab grow; entries are `Copy`.
//! This module is the shared home of the queue used by both the DES kernel
//! (`wsnem_des::event` re-exports it) and the Petri token-game engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event; used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    generation: u32,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    key: u64,
    slot: u32,
    generation: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

#[derive(Debug)]
struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// The future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    seq: u64,
    live: usize,
    last_popped: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            live: 0,
            last_popped: f64::NEG_INFINITY,
        }
    }

    /// Empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            seq: 0,
            live: 0,
            last_popped: f64::NEG_INFINITY,
        }
    }

    /// Schedule `payload` at absolute `time`. Events at equal times pop in
    /// scheduling (FIFO) order.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: E) -> EventId {
        self.seq += 1;
        let key = self.seq;
        self.schedule_keyed(time, key, payload)
    }

    /// Schedule `payload` at absolute `time` with an explicit tie-break
    /// `key`: among events at the same time, the smallest key pops first
    /// (irrespective of scheduling order). Do not mix with [`Self::schedule`]
    /// on one queue — the internal FIFO sequence shares the key space.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn schedule_keyed(&mut self, time: f64, key: u64, payload: E) -> EventId {
        assert!(!time.is_nan(), "event time must not be NaN");
        let slot = match self.free.pop() {
            Some(s) => {
                let entry = &mut self.slots[s as usize];
                entry.payload = Some(payload);
                s
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(payload),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(HeapEntry {
            time,
            key,
            slot,
            generation,
        });
        self.live += 1;
        EventId { slot, generation }
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending; `false` if it already fired or was cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = &mut self.slots[id.slot as usize];
        if slot.generation == id.generation && slot.payload.is_some() {
            slot.payload = None;
            slot.generation = slot.generation.wrapping_add(1);
            self.free.push(id.slot);
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest pending event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        while let Some(entry) = self.heap.pop() {
            let slot = &mut self.slots[entry.slot as usize];
            // Tombstone: the slot moved on (cancelled or reused).
            if slot.generation != entry.generation {
                continue;
            }
            if let Some(payload) = slot.payload.take() {
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(entry.slot);
                self.live -= 1;
                debug_assert!(
                    entry.time >= self.last_popped,
                    "event queue went backwards in time"
                );
                self.last_popped = entry.time;
                return Some((entry.time, payload));
            }
        }
        None
    }

    /// Time of the earliest pending event, if any.
    ///
    /// O(1) when the heap top is live; falls back to an O(n) scan when
    /// cancelled tombstones sit on top (peeking cannot mutate the heap).
    pub fn peek_time(&self) -> Option<f64> {
        if let Some(top) = self.heap.peek() {
            let slot = &self.slots[top.slot as usize];
            if slot.generation == top.generation && slot.payload.is_some() {
                return Some(top.time);
            }
        } else {
            return None;
        }
        let mut earliest: Option<f64> = None;
        for entry in self.heap.iter() {
            let slot = &self.slots[entry.slot as usize];
            let alive = slot.generation == entry.generation && slot.payload.is_some();
            if alive && earliest.is_none_or(|t| entry.time < t) {
                earliest = Some(entry.time);
            }
        }
        earliest
    }

    /// Number of live (non-cancelled, non-fired) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        // `seq` and `last_popped` intentionally keep monotone history.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn keyed_ties_pop_in_key_order() {
        let mut q = EventQueue::new();
        // Scheduled in reverse key order — FIFO would pop 9, 5, 2.
        q.schedule_keyed(5.0, 9, "nine");
        q.schedule_keyed(5.0, 5, "five");
        q.schedule_keyed(5.0, 2, "two");
        q.schedule_keyed(1.0, 7, "early");
        assert_eq!(q.pop(), Some((1.0, "early")));
        assert_eq!(q.pop(), Some((5.0, "two")));
        assert_eq!(q.pop(), Some((5.0, "five")));
        assert_eq!(q.pop(), Some((5.0, "nine")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn keyed_cancel_and_reschedule_same_key() {
        // The EDSPN pattern: one event per transition, keyed by its index,
        // cancelled and rescheduled as the transition disables/re-enables.
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(2.0, 3, "old");
        assert!(q.cancel(a));
        let _b = q.schedule_keyed(2.0, 3, "new");
        assert_eq!(q.pop(), Some((2.0, "new")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn stale_id_cannot_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        assert_eq!(q.pop(), Some((1.0, "a")));
        // Slot reused by a new event.
        let b = q.schedule(2.0, "b");
        assert!(!q.cancel(a), "stale id must not cancel the new event");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(i as f64, i);
        }
        assert_eq!(q.len(), 100);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Still usable after clear.
        q.schedule(1.0, 7);
        assert_eq!(q.pop(), Some((1.0, 7)));
    }

    #[test]
    fn interleaved_schedule_pop_cancel_stress() {
        let mut q = EventQueue::with_capacity(64);
        let mut ids = Vec::new();
        for round in 0..50u32 {
            for i in 0..20u32 {
                ids.push(q.schedule((round * 20 + i) as f64, (round, i)));
            }
            // Cancel every third id from this round.
            for (k, id) in ids.iter().rev().take(20).enumerate() {
                if k % 3 == 0 {
                    q.cancel(*id);
                }
            }
            // Pop a few.
            for _ in 0..10 {
                q.pop();
            }
        }
        // Drain; times must be non-decreasing.
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn negative_and_zero_times_allowed() {
        let mut q = EventQueue::new();
        q.schedule(0.0, "zero");
        q.schedule(-1.0, "neg");
        assert_eq!(q.pop(), Some((-1.0, "neg")));
        assert_eq!(q.pop(), Some((0.0, "zero")));
    }
}
