//! The common evaluation interface of the CPU models.

use wsnem_energy::{EnergyBreakdown, PowerProfile, StateFractions};

use crate::backend::BackendId;
use crate::error::CoreError;

/// Deprecated alias of [`BackendId`], kept so pre-registry code compiles
/// unchanged. Use [`BackendId`] in new code; `ModelKind`'s paper-legend
/// display names now live in [`BackendId::paper_label`].
pub type ModelKind = BackendId;

/// A model's steady-state verdict on the CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEvaluation {
    /// Which backend produced this.
    pub kind: BackendId,
    /// Steady-state occupancy of the four power states.
    pub fractions: StateFractions,
    /// Mean number of jobs in the system, when the model provides it.
    pub mean_jobs: Option<f64>,
    /// Mean per-job latency (s), when the model provides it.
    pub mean_latency: Option<f64>,
    /// Wall-clock cost of producing this evaluation (s) — the §6 trade-off
    /// (analytic formulas are instant, simulations are not).
    pub eval_seconds: f64,
}

impl ModelEvaluation {
    /// Energy over `time_s` seconds with the given profile (paper Eq. 25).
    pub fn energy(&self, profile: &PowerProfile, time_s: f64) -> EnergyBreakdown {
        wsnem_energy::energy_eq25(&self.fractions, profile, time_s)
    }

    /// Energy total in joules over `time_s` seconds.
    pub fn energy_joules(&self, profile: &PowerProfile, time_s: f64) -> f64 {
        self.energy(profile, time_s).total_joules()
    }

    /// Mean power draw (mW) under the profile.
    pub fn mean_power_mw(&self, profile: &PowerProfile) -> f64 {
        profile.mean_power_mw(&self.fractions)
    }
}

/// A CPU model that can be evaluated to steady-state fractions.
///
/// This is the typed, by-value API; the object-safe registry counterpart is
/// [`crate::backend::CpuSolver`].
pub trait CpuModel {
    /// The backend this model implements.
    fn kind(&self) -> BackendId;

    /// Evaluate the model.
    fn evaluate(&self) -> Result<ModelEvaluation, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_legends_live_on_paper_label() {
        // ModelKind is a deprecated alias of BackendId: canonical names for
        // Display/serialization, the paper's figure legends via
        // `paper_label`.
        assert_eq!(ModelKind::Markov.to_string(), "Markov");
        assert_eq!(ModelKind::PetriNet.to_string(), "PetriNet");
        assert_eq!(ModelKind::Des.to_string(), "Des");
        assert_eq!(ModelKind::PetriNet.paper_label(), "Petri Net");
        assert_eq!(ModelKind::Des.paper_label(), "Simulation");
    }

    #[test]
    fn evaluation_energy_helpers() {
        let eval = ModelEvaluation {
            kind: BackendId::Markov,
            fractions: StateFractions::new(1.0, 0.0, 0.0, 0.0),
            mean_jobs: None,
            mean_latency: None,
            eval_seconds: 0.0,
        };
        let p = PowerProfile::pxa271();
        assert!((eval.energy_joules(&p, 1000.0) - 17.0).abs() < 1e-9);
        assert!((eval.mean_power_mw(&p) - 17.0).abs() < 1e-9);
        assert_eq!(eval.energy(&p, 10.0).time_s, 10.0);
    }
}
