//! The common evaluation interface of the three CPU models.

use wsnem_energy::{EnergyBreakdown, PowerProfile, StateFractions};

use crate::error::CoreError;

/// Which model produced an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Supplementary-variable Markov closed forms.
    Markov,
    /// EDSPN token-game simulation.
    PetriNet,
    /// Discrete-event simulation (ground truth).
    Des,
}

impl ModelKind {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Markov => "Markov",
            ModelKind::PetriNet => "Petri Net",
            ModelKind::Des => "Simulation",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A model's steady-state verdict on the CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEvaluation {
    /// Which model produced this.
    pub kind: ModelKind,
    /// Steady-state occupancy of the four power states.
    pub fractions: StateFractions,
    /// Mean number of jobs in the system, when the model provides it.
    pub mean_jobs: Option<f64>,
    /// Mean per-job latency (s), when the model provides it.
    pub mean_latency: Option<f64>,
    /// Wall-clock cost of producing this evaluation (s) — the §6 trade-off
    /// (analytic formulas are instant, simulations are not).
    pub eval_seconds: f64,
}

impl ModelEvaluation {
    /// Energy over `time_s` seconds with the given profile (paper Eq. 25).
    pub fn energy(&self, profile: &PowerProfile, time_s: f64) -> EnergyBreakdown {
        wsnem_energy::energy_eq25(&self.fractions, profile, time_s)
    }

    /// Energy total in joules over `time_s` seconds.
    pub fn energy_joules(&self, profile: &PowerProfile, time_s: f64) -> f64 {
        self.energy(profile, time_s).total_joules()
    }

    /// Mean power draw (mW) under the profile.
    pub fn mean_power_mw(&self, profile: &PowerProfile) -> f64 {
        profile.mean_power_mw(&self.fractions)
    }
}

/// A CPU model that can be evaluated to steady-state fractions.
pub trait CpuModel {
    /// The model's kind/label.
    fn kind(&self) -> ModelKind;

    /// Evaluate the model.
    fn evaluate(&self) -> Result<ModelEvaluation, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper_legends() {
        assert_eq!(ModelKind::Markov.to_string(), "Markov");
        assert_eq!(ModelKind::PetriNet.to_string(), "Petri Net");
        assert_eq!(ModelKind::Des.to_string(), "Simulation");
    }

    #[test]
    fn evaluation_energy_helpers() {
        let eval = ModelEvaluation {
            kind: ModelKind::Markov,
            fractions: StateFractions::new(1.0, 0.0, 0.0, 0.0),
            mean_jobs: None,
            mean_latency: None,
            eval_seconds: 0.0,
        };
        let p = PowerProfile::pxa271();
        assert!((eval.energy_joules(&p, 1000.0) - 17.0).abs() < 1e-9);
        assert!((eval.mean_power_mw(&p) - 17.0).abs() < 1e-9);
        assert_eq!(eval.energy(&p, 10.0).time_s, 10.0);
    }
}
