//! The discrete-event ground-truth simulator behind the [`CpuModel`] trait.

use std::time::Instant;

use wsnem_des::cpu::{CpuDes, CpuSimParams};
use wsnem_des::replication::run_replications;
use wsnem_des::workload::Workload;
use wsnem_stats::dist::Dist;
use wsnem_stats::online::Welford;

use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation, ModelKind};
use crate::params::CpuModelParams;

/// Paper §5's benchmark: the event simulator (Matlab in the paper, Rust
/// here), run as parallel independent replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesCpuModel {
    params: CpuModelParams,
    threads: Option<usize>,
}

impl DesCpuModel {
    /// Wrap the shared parameters (replications spread over all cores).
    pub fn new(params: CpuModelParams) -> Self {
        Self {
            params,
            threads: None,
        }
    }

    /// Pin the number of worker threads (e.g. `Some(1)` inside an outer
    /// parallel sweep).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The parameters.
    pub fn params(&self) -> CpuModelParams {
        self.params
    }

    fn sim(&self) -> Result<CpuDes, CoreError> {
        self.params.validate()?;
        let sim_params = CpuSimParams {
            service: Dist::Exponential {
                rate: self.params.mu,
            },
            power_down_threshold: self.params.power_down_threshold,
            power_up_delay: self.params.power_up_delay,
            horizon: self.params.horizon,
            warmup: self.params.warmup,
            max_queue: None,
        };
        Ok(CpuDes::new(
            sim_params,
            Workload::open_poisson(self.params.lambda),
        )?)
    }
}

impl CpuModel for DesCpuModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Des
    }

    fn evaluate(&self) -> Result<ModelEvaluation, CoreError> {
        let start = Instant::now();
        let sim = self.sim()?;
        let summary = run_replications(
            &sim,
            self.params.replications,
            self.params.master_seed,
            self.threads,
        );
        let mut jobs = Welford::new();
        let mut latency = Welford::new();
        for r in &summary.reports {
            jobs.push(r.mean_jobs_in_system);
            latency.push(r.mean_latency);
        }
        Ok(ModelEvaluation {
            kind: ModelKind::Des,
            fractions: summary.mean_fractions(),
            mean_jobs: Some(jobs.mean()),
            mean_latency: Some(latency.mean()),
            eval_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_and_normalizes() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(4)
            .with_horizon(500.0);
        let m = DesCpuModel::new(params);
        let eval = m.evaluate().unwrap();
        assert_eq!(eval.kind, ModelKind::Des);
        assert!(eval.fractions.is_normalized(1e-6));
        assert!(eval.mean_jobs.unwrap() >= 0.0);
        assert!(eval.mean_latency.unwrap() > 0.0);
        assert_eq!(m.params().replications, 4);
    }

    #[test]
    fn deterministic_under_threads() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(6)
            .with_horizon(300.0);
        let a = DesCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        let b = DesCpuModel::new(params)
            .with_threads(Some(3))
            .evaluate()
            .unwrap();
        assert_eq!(a.fractions, b.fractions);
    }

    #[test]
    fn matches_markov_for_tiny_powerup_delay() {
        // At D = 0.001 the supplementary-variable model is essentially
        // exact; DES must agree within Monte-Carlo noise (the paper's
        // Fig. 4 message).
        let params = CpuModelParams::paper_defaults()
            .with_power_down_threshold(0.5)
            .with_replications(8)
            .with_horizon(4000.0)
            .with_warmup(200.0);
        let des = DesCpuModel::new(params).evaluate().unwrap();
        let markov = crate::MarkovCpuModel::new(params).evaluate().unwrap();
        let delta = des.fractions.mean_abs_delta_pct(&markov.fractions);
        assert!(delta < 1.5, "Δ = {delta} percentage points");
    }

    #[test]
    fn invalid_params_propagate() {
        let m = DesCpuModel::new(CpuModelParams::paper_defaults().with_mu(0.5));
        assert!(m.evaluate().is_err(), "rho > 1 rejected");
    }
}
