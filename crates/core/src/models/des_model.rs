//! The discrete-event ground-truth simulator behind the [`CpuModel`] trait.

use std::time::Instant;

use wsnem_des::cpu::{CpuDes, CpuSimParams};
use wsnem_des::replication::run_replications;
use wsnem_des::workload::Workload;
use wsnem_stats::dist::Dist;
use wsnem_stats::online::Welford;

use crate::backend::{BackendId, Capabilities, CpuSolver, EvalOptions};
use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation};
use crate::params::CpuModelParams;

/// Paper §5's benchmark: the event simulator (Matlab in the paper, Rust
/// here), run as parallel independent replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesCpuModel {
    params: CpuModelParams,
    threads: Option<usize>,
}

impl DesCpuModel {
    /// Wrap the shared parameters (replications spread over all cores).
    pub fn new(params: CpuModelParams) -> Self {
        Self {
            params,
            threads: None,
        }
    }

    /// Pin the number of worker threads (e.g. `Some(1)` inside an outer
    /// parallel sweep).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The parameters.
    pub fn params(&self) -> CpuModelParams {
        self.params
    }

    fn sim(&self) -> Result<CpuDes, CoreError> {
        self.params.validate()?;
        Ok(CpuDes::new(
            cpu_sim_params(
                &self.params,
                Dist::Exponential {
                    rate: self.params.mu,
                },
            ),
            Workload::open_poisson(self.params.lambda),
        )?)
    }
}

/// The single place the shared model parameters are wired into the DES
/// kernel's [`CpuSimParams`] (used by both the typed model and the registry
/// solver).
fn cpu_sim_params(params: &CpuModelParams, service: Dist) -> CpuSimParams {
    CpuSimParams {
        service,
        power_down_threshold: params.power_down_threshold,
        power_up_delay: params.power_up_delay,
        horizon: params.horizon,
        warmup: params.warmup,
        max_queue: None,
    }
}

impl CpuModel for DesCpuModel {
    fn kind(&self) -> BackendId {
        BackendId::Des
    }

    fn evaluate(&self) -> Result<ModelEvaluation, CoreError> {
        let sim = self.sim()?;
        evaluate_sim(&sim, self.params, self.threads)
    }
}

/// Run a configured simulator's replications and reduce them into the
/// shared evaluation shape.
fn evaluate_sim(
    sim: &CpuDes,
    params: CpuModelParams,
    threads: Option<usize>,
) -> Result<ModelEvaluation, CoreError> {
    let start = Instant::now();
    let summary = run_replications(sim, params.replications, params.master_seed, threads);
    let mut jobs = Welford::new();
    let mut latency = Welford::new();
    for r in &summary.reports {
        jobs.push(r.mean_jobs_in_system);
        latency.push(r.mean_latency);
    }
    Ok(ModelEvaluation {
        kind: BackendId::Des,
        fractions: summary.mean_fractions(),
        mean_jobs: Some(jobs.mean()),
        mean_latency: Some(latency.mean()),
        eval_seconds: start.elapsed().as_secs_f64(),
    })
}

/// The registry solver for [`BackendId::Des`] — the ground truth. Unlike
/// the typed [`DesCpuModel`], it honors both [`EvalOptions::service`] and
/// [`EvalOptions::workload`] (the capabilities the analytic backends lack).
#[derive(Debug, Clone, Copy, Default)]
pub struct DesSolver;

impl CpuSolver for DesSolver {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            id: BackendId::Des,
            analytic: false,
            ground_truth: true,
            assumes_poisson: false,
            supports_service_dist: true,
            provides_mean_jobs: true,
            provides_latency: true,
            uses_seed: true,
            requires_positive_delays: false,
            cost_rank: 4,
        }
    }

    fn solve(
        &self,
        params: &CpuModelParams,
        opts: &EvalOptions,
    ) -> Result<ModelEvaluation, CoreError> {
        let params = opts.apply(*params);
        params.validate()?;
        opts.service.validate(params.mu)?;
        let workload = opts
            .workload
            .clone()
            .unwrap_or_else(|| Workload::open_poisson(params.lambda));
        let sim = CpuDes::new(
            cpu_sim_params(&params, opts.service.to_dist(params.mu)),
            workload,
        )?;
        evaluate_sim(&sim, params, opts.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_and_normalizes() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(4)
            .with_horizon(500.0);
        let m = DesCpuModel::new(params);
        let eval = m.evaluate().unwrap();
        assert_eq!(eval.kind, BackendId::Des);
        assert!(eval.fractions.is_normalized(1e-6));
        assert!(eval.mean_jobs.unwrap() >= 0.0);
        assert!(eval.mean_latency.unwrap() > 0.0);
        assert_eq!(m.params().replications, 4);
    }

    #[test]
    fn deterministic_under_threads() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(6)
            .with_horizon(300.0);
        let a = DesCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        let b = DesCpuModel::new(params)
            .with_threads(Some(3))
            .evaluate()
            .unwrap();
        assert_eq!(a.fractions, b.fractions);
    }

    #[test]
    fn matches_markov_for_tiny_powerup_delay() {
        // At D = 0.001 the supplementary-variable model is essentially
        // exact; DES must agree within Monte-Carlo noise (the paper's
        // Fig. 4 message).
        let params = CpuModelParams::paper_defaults()
            .with_power_down_threshold(0.5)
            .with_replications(8)
            .with_horizon(4000.0)
            .with_warmup(200.0);
        let des = DesCpuModel::new(params).evaluate().unwrap();
        let markov = crate::MarkovCpuModel::new(params).evaluate().unwrap();
        let delta = des.fractions.mean_abs_delta_pct(&markov.fractions);
        assert!(delta < 1.5, "Δ = {delta} percentage points");
    }

    #[test]
    fn invalid_params_propagate() {
        let m = DesCpuModel::new(CpuModelParams::paper_defaults().with_mu(0.5));
        assert!(m.evaluate().is_err(), "rho > 1 rejected");
    }
}
