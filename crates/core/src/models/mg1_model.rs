//! Exact M/G/1 analytic backend — Pollaczek–Khinchine occupancy and wait
//! for the paper's power-managed CPU, for *any* service-time law.
//!
//! ## The closed form
//!
//! The node is an M/G/1 queue with Poisson arrivals at rate λ, service time
//! `S` (mean `E[S]`, squared coefficient of variation `cv²`), a power-down
//! threshold `T` (an idle period survives unserved for `T` seconds before
//! the CPU drops to standby) and a deterministic power-up delay `D` paid
//! when an arrival finds the CPU in standby. Let
//!
//! ```text
//! ρ = λ·E[S]            (utilization; stability needs ρ < 1)
//! p = e^(−λT)           (probability an idle period outlives T)
//! denom = 1 + p·λ·D     (cycle-length normalizer of the setup overhead)
//! ```
//!
//! Renewal–reward over regeneration cycles gives the exact state fractions
//! (they depend on the service law only through `E[S]`):
//!
//! ```text
//! active  = ρ
//! idle    = (1 − p)(1 − ρ) / denom
//! standby = p(1 − ρ) / denom
//! powerup = p·λ·D·(1 − ρ) / denom
//! ```
//!
//! and the mean wait is Pollaczek–Khinchine plus the deterministic-setup
//! term of the M/G/1 queue with server setup:
//!
//! ```text
//! E[S²] = E[S]²·(1 + cv²)
//! E[W]  = λ·E[S²] / (2(1 − ρ))  +  p·D·(2 + λD) / (2·denom)
//! ```
//!
//! With `T = D = 0` this is the textbook P–K formula; with exponential
//! service it reproduces the paper's supplementary-variable model in its
//! `D → 0` regime, and — unlike that model's Markov approximation — stays
//! exact for large `D` (`active = ρ` matches the DES ground truth at every
//! stable point). Evaluation is a handful of flops, which is what makes the
//! million-node analytic fast path possible.

use std::time::Instant;

use wsnem_energy::StateFractions;
use wsnem_stats::dist::Sample;

use crate::backend::{BackendId, Capabilities, CpuSolver, EvalOptions, ServiceDist};
use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation};
use crate::params::CpuModelParams;

/// The exact M/G/1 closed form (module docs) behind the [`CpuModel`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mg1CpuModel {
    params: CpuModelParams,
    service: ServiceDist,
}

impl Mg1CpuModel {
    /// Wrap the shared parameters with the built-in exponential service.
    pub fn new(params: CpuModelParams) -> Self {
        Self {
            params,
            service: ServiceDist::Exponential,
        }
    }

    /// Choose the service-time distribution.
    pub fn with_service(mut self, service: ServiceDist) -> Self {
        self.service = service;
        self
    }

    /// The parameters.
    pub fn params(&self) -> CpuModelParams {
        self.params
    }

    /// Utilization ρ = λ·E\[S\] under the configured service law (for
    /// [`ServiceDist::General`] the mean need not be `1/μ`).
    pub fn rho(&self) -> f64 {
        self.params.lambda * self.service.to_dist(self.params.mu).mean()
    }

    /// Validate fields the closed form consumes. Deliberately *not*
    /// [`CpuModelParams::validate`]: that checks stability as λ/μ < 1,
    /// which is wrong under a [`ServiceDist::General`] service law, and the
    /// simulation-only fields (horizon, warm-up, replications) are
    /// irrelevant here. Instability is reported separately as
    /// [`CoreError::Unsupported`] by [`Mg1CpuModel::evaluate`].
    fn validate(&self) -> Result<(), CoreError> {
        let p = &self.params;
        let check = |what: &'static str, ok: bool, constraint: &'static str, value: f64| {
            if ok {
                Ok(())
            } else {
                Err(CoreError::InvalidParameter {
                    what,
                    constraint,
                    value,
                })
            }
        };
        check(
            "lambda",
            p.lambda > 0.0 && p.lambda.is_finite(),
            "> 0 and finite",
            p.lambda,
        )?;
        check(
            "power_down_threshold",
            p.power_down_threshold >= 0.0 && p.power_down_threshold.is_finite(),
            ">= 0 and finite",
            p.power_down_threshold,
        )?;
        check(
            "power_up_delay",
            p.power_up_delay >= 0.0 && p.power_up_delay.is_finite(),
            ">= 0 and finite",
            p.power_up_delay,
        )?;
        self.service.validate(p.mu)
    }
}

impl CpuModel for Mg1CpuModel {
    fn kind(&self) -> BackendId {
        BackendId::Mg1
    }

    fn evaluate(&self) -> Result<ModelEvaluation, CoreError> {
        let start = Instant::now();
        self.validate()?;
        let p = &self.params;
        let dist = self.service.to_dist(p.mu);
        let mean_s = dist.mean();
        let rho = p.lambda * mean_s;
        // The only genuinely unsupported input: an unstable queue has no
        // steady state for a closed form to report.
        if !(rho < 1.0) {
            return Err(CoreError::Unsupported {
                backend: BackendId::Mg1,
                what: format!("an unstable operating point (rho = lambda*E[S] = {rho:.6} >= 1)"),
            });
        }
        let lambda = p.lambda;
        let d = p.power_up_delay;
        let p_standby = (-lambda * p.power_down_threshold).exp();
        let denom = 1.0 + p_standby * lambda * d;
        let fractions = StateFractions::new(
            p_standby * (1.0 - rho) / denom,
            p_standby * lambda * d * (1.0 - rho) / denom,
            (1.0 - p_standby) * (1.0 - rho) / denom,
            rho,
        );
        let mean_s2 = mean_s * mean_s * (1.0 + dist.cv2());
        let wait = lambda * mean_s2 / (2.0 * (1.0 - rho))
            + p_standby * d * (2.0 + lambda * d) / (2.0 * denom);
        let latency = wait + mean_s;
        Ok(ModelEvaluation {
            kind: BackendId::Mg1,
            fractions,
            mean_jobs: Some(lambda * latency),
            mean_latency: Some(latency),
            eval_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

/// The registry solver for [`BackendId::Mg1`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Mg1Solver;

impl CpuSolver for Mg1Solver {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            id: BackendId::Mg1,
            analytic: true,
            ground_truth: false,
            assumes_poisson: true,
            supports_service_dist: true,
            provides_mean_jobs: true,
            provides_latency: true,
            uses_seed: false,
            requires_positive_delays: false,
            cost_rank: 1,
        }
    }

    fn solve(
        &self,
        params: &CpuModelParams,
        opts: &EvalOptions,
    ) -> Result<ModelEvaluation, CoreError> {
        Mg1CpuModel::new(opts.apply(*params))
            .with_service(opts.service)
            .evaluate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::markov_model::MarkovCpuModel;
    use wsnem_stats::dist::Dist;

    fn eval(params: CpuModelParams, service: ServiceDist) -> ModelEvaluation {
        Mg1CpuModel::new(params)
            .with_service(service)
            .evaluate()
            .unwrap()
    }

    #[test]
    fn paper_defaults_match_markov_at_small_d() {
        let p = CpuModelParams::paper_defaults();
        let exact = eval(p, ServiceDist::Exponential);
        assert!(exact.fractions.is_normalized(1e-12));
        assert!(
            (exact.fractions.active - p.rho()).abs() < 1e-12,
            "active = rho exactly"
        );
        // D = 0.001 is deep in the supplementary-variable model's accurate
        // regime, so the paper's closed form and the exact one agree.
        let markov = MarkovCpuModel::new(p).evaluate().unwrap();
        assert!(exact.fractions.mean_abs_delta_pct(&markov.fractions) < 0.1);
        assert!(exact.eval_seconds < 0.1);
        assert_eq!(Mg1CpuModel::new(p).kind(), BackendId::Mg1);
        assert_eq!(Mg1CpuModel::new(p).params(), p);
    }

    #[test]
    fn md1_wait_is_half_of_mm1() {
        // With D = 0 the setup term vanishes and E[W] is pure P-K, so the
        // M/D/1 wait must be exactly half the M/M/1 wait at equal rho.
        let p = CpuModelParams::paper_defaults()
            .with_lambda(6.0)
            .with_mu(10.0)
            .with_power_up_delay(0.0);
        let exp_s = 1.0 / p.mu;
        let mm1_wait = eval(p, ServiceDist::Exponential).mean_latency.unwrap() - exp_s;
        let md1_wait = eval(p, ServiceDist::Deterministic).mean_latency.unwrap() - exp_s;
        assert!((mm1_wait - p.rho() / (p.mu * (1.0 - p.rho()))).abs() < 1e-12);
        assert!(
            (md1_wait - 0.5 * mm1_wait).abs() < 1e-12,
            "{md1_wait} vs {mm1_wait}"
        );
    }

    #[test]
    fn erlang_1_and_general_cv1_collapse_to_exponential() {
        let p = CpuModelParams::paper_defaults().with_lambda(4.0);
        let mm1 = eval(p, ServiceDist::Exponential);
        let erl = eval(p, ServiceDist::Erlang { k: 1 });
        let gen = eval(
            p,
            ServiceDist::General {
                dist: Dist::Exponential { rate: p.mu },
            },
        );
        for other in [&erl, &gen] {
            assert!(mm1.fractions.mean_abs_delta_pct(&other.fractions) < 1e-12);
            assert!((mm1.mean_latency.unwrap() - other.mean_latency.unwrap()).abs() < 1e-12);
            assert!((mm1.mean_jobs.unwrap() - other.mean_jobs.unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn general_service_sets_rho_from_its_own_mean() {
        // General ignores mu: an exponential at rate 3 gives rho = 1/3.
        let p = CpuModelParams::paper_defaults()
            .with_power_down_threshold(0.0)
            .with_power_up_delay(0.0);
        let e = eval(
            p,
            ServiceDist::General {
                dist: Dist::Exponential { rate: 3.0 },
            },
        );
        assert!((e.fractions.active - 1.0 / 3.0).abs() < 1e-12);
        let m = Mg1CpuModel::new(p).with_service(ServiceDist::General {
            dist: Dist::Exponential { rate: 3.0 },
        });
        assert!((m.rho() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unstable_points_are_unsupported() {
        let p = CpuModelParams::paper_defaults().with_lambda(10.0); // rho = 1
        let err = Mg1CpuModel::new(p).evaluate().unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Unsupported {
                    backend: BackendId::Mg1,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("unstable"), "{err}");
        // A General law can destabilize a point that is stable at mu.
        let err = Mg1CpuModel::new(CpuModelParams::paper_defaults())
            .with_service(ServiceDist::General {
                dist: Dist::Deterministic(2.0),
            })
            .evaluate()
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }), "{err}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let base = CpuModelParams::paper_defaults();
        for bad in [
            base.with_lambda(0.0),
            base.with_lambda(f64::NAN),
            base.with_mu(-1.0),
            base.with_power_down_threshold(-0.1),
            base.with_power_up_delay(f64::INFINITY),
        ] {
            let err = Mg1CpuModel::new(bad).evaluate().unwrap_err();
            assert!(matches!(err, CoreError::InvalidParameter { .. }), "{err}");
        }
        let err = Mg1CpuModel::new(base)
            .with_service(ServiceDist::Erlang { k: 0 })
            .evaluate()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidService { .. }), "{err}");
    }

    #[test]
    fn solver_is_seed_invariant_and_analytic() {
        let caps = Mg1Solver.capabilities();
        assert!(caps.analytic && caps.supports_service_dist && !caps.uses_seed);
        let p = CpuModelParams::paper_defaults();
        let a = Mg1Solver
            .solve(&p, &EvalOptions::default().with_seed(1))
            .unwrap();
        let b = Mg1Solver
            .solve(
                &p,
                &EvalOptions::default().with_seed(999).with_replications(2),
            )
            .unwrap();
        assert_eq!(a.fractions, b.fractions);
        assert_eq!(a.mean_latency, b.mean_latency);
        // The solver honors the service option.
        let det = Mg1Solver
            .solve(
                &p,
                &EvalOptions::default().with_service(ServiceDist::Deterministic),
            )
            .unwrap();
        assert!(det.mean_latency.unwrap() < a.mean_latency.unwrap());
    }
}
