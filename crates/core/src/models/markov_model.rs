//! The supplementary-variable Markov model behind the [`CpuModel`] trait.

use std::time::Instant;

use wsnem_markov::SupplementaryVariableModel;

use crate::backend::{
    require_exponential_service, BackendId, Capabilities, CpuSolver, EvalOptions,
};
use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation};
use crate::params::CpuModelParams;

/// Paper §4.1: the closed-form Markov model (Eqs. 11–24).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovCpuModel {
    params: CpuModelParams,
}

impl MarkovCpuModel {
    /// Wrap the shared parameters.
    pub fn new(params: CpuModelParams) -> Self {
        Self { params }
    }

    /// Access the underlying closed-form model.
    pub fn inner(&self) -> Result<SupplementaryVariableModel, CoreError> {
        self.params.validate()?;
        Ok(SupplementaryVariableModel::new(
            self.params.lambda,
            self.params.mu,
            self.params.power_down_threshold,
            self.params.power_up_delay,
        )?)
    }

    /// The parameters.
    pub fn params(&self) -> CpuModelParams {
        self.params
    }
}

impl CpuModel for MarkovCpuModel {
    fn kind(&self) -> BackendId {
        BackendId::Markov
    }

    fn evaluate(&self) -> Result<ModelEvaluation, CoreError> {
        let start = Instant::now();
        let m = self.inner()?;
        let fractions = m.fractions();
        Ok(ModelEvaluation {
            kind: BackendId::Markov,
            fractions,
            mean_jobs: Some(m.mean_jobs()),
            mean_latency: Some(m.mean_latency()),
            eval_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

/// The registry solver for [`BackendId::Markov`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MarkovSolver;

impl CpuSolver for MarkovSolver {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            id: BackendId::Markov,
            analytic: true,
            ground_truth: false,
            assumes_poisson: true,
            supports_service_dist: false,
            provides_mean_jobs: true,
            provides_latency: true,
            uses_seed: false,
            requires_positive_delays: false,
            cost_rank: 0,
        }
    }

    fn solve(
        &self,
        params: &CpuModelParams,
        opts: &EvalOptions,
    ) -> Result<ModelEvaluation, CoreError> {
        require_exponential_service(BackendId::Markov, opts)?;
        MarkovCpuModel::new(opts.apply(*params)).evaluate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_paper_defaults() {
        let m = MarkovCpuModel::new(CpuModelParams::paper_defaults());
        let eval = m.evaluate().unwrap();
        assert_eq!(eval.kind, BackendId::Markov);
        assert!(eval.fractions.is_normalized(1e-9));
        assert!(eval.mean_jobs.unwrap() > 0.0);
        assert!(eval.mean_latency.unwrap() > 0.0);
        assert!(eval.eval_seconds < 0.1, "closed form must be instant");
        assert_eq!(m.params().lambda, 1.0);
    }

    #[test]
    fn invalid_params_propagate() {
        let m = MarkovCpuModel::new(CpuModelParams::paper_defaults().with_lambda(-1.0));
        assert!(m.evaluate().is_err());
        assert!(m.inner().is_err());
    }
}
