//! The paper's EDSPN (Fig. 3 / Table 1) and its evaluation by token-game
//! simulation.
//!
//! Net structure, reconstructed from the paper's §4.2 firing walkthrough:
//!
//! ```text
//! places:  P0(1)  P1(0)  CPU_Buffer(0)  P6(0)
//!          Stand_By(1)  Power_Up(0)  CPU_ON(0)  Idle(1)  Active(0)
//!
//! AR  (exp λ, Table 1 "Arrivals")        : P0 → P1
//! T1  (immediate, priority 4)            : P1 → P0 + P6 + CPU_Buffer
//! T6  (immediate, priority 3)            : P6 + Stand_By → Power_Up + P6
//! PUT (deterministic D, "Power Up Delay"): Power_Up + P6 → CPU_ON
//! T5  (immediate, priority 2)            : P6 + CPU_ON → CPU_ON
//! T2  (immediate, priority 1)            : CPU_Buffer + CPU_ON + Idle → CPU_ON + Active
//! SR  (exp μ, "Service Rate")            : Active → Idle
//! PDT (deterministic T, "Power Down
//!      Threshold"; inhibited by Active
//!      and CPU_Buffer — the "small
//!      circles" of Fig. 3)               : CPU_ON → Stand_By
//! ```
//!
//! Two structural P-invariants carry the state semantics and are verified by
//! tests via the Farkas analyzer: `Stand_By + Power_Up + CPU_ON = 1` (the
//! power automaton) and `Idle + Active = 1` (the service unit). The four
//! paper measures are indicator rewards over the tangible marking:
//! PowerUp ⇔ `#Power_Up ≥ 1`, Standby ⇔ `#Stand_By ≥ 1`,
//! Active ⇔ `#Active ≥ 1`, Idle ⇔ `#CPU_ON ≥ 1 ∧ #Active = 0`.

use std::time::Instant;

use wsnem_energy::StateFractions;
use wsnem_petri::{simulate_replications, NetBuilder, PetriNet, PlaceId, Reward, SimConfig};
use wsnem_stats::dist::Dist;

use crate::backend::{BackendId, Capabilities, CpuSolver, EvalOptions};
use crate::error::CoreError;
use crate::evaluation::{CpuModel, ModelEvaluation};
use crate::params::CpuModelParams;

/// Handles to the places (and transition names) of the Fig. 3 net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuNetHandles {
    /// Workload-generator home place (token present ⇒ generator armed).
    pub p0: PlaceId,
    /// Arrival staging place between `AR` and `T1`.
    pub p1: PlaceId,
    /// Job buffer.
    pub cpu_buffer: PlaceId,
    /// Power-up trigger staging place.
    pub p6: PlaceId,
    /// CPU in standby.
    pub stand_by: PlaceId,
    /// CPU powering up.
    pub power_up: PlaceId,
    /// CPU operational.
    pub cpu_on: PlaceId,
    /// Service unit idle.
    pub idle: PlaceId,
    /// Service unit busy.
    pub active: PlaceId,
}

/// Build the paper's EDSPN for the given parameters (exponential service at
/// rate `mu`, as in Table 1).
pub fn build_cpu_edspn(
    lambda: f64,
    mu: f64,
    power_down_threshold: f64,
    power_up_delay: f64,
) -> Result<(PetriNet, CpuNetHandles), CoreError> {
    build_cpu_edspn_with_service(
        lambda,
        Dist::Exponential { rate: mu },
        power_down_threshold,
        power_up_delay,
    )
}

/// Build the paper's EDSPN with a general service-time distribution on the
/// `SR` transition — the token game executes any [`Dist`], which is what
/// lets this backend (unlike the analytic ones) honor a non-exponential
/// [`crate::ServiceDist`].
pub fn build_cpu_edspn_with_service(
    lambda: f64,
    service: Dist,
    power_down_threshold: f64,
    power_up_delay: f64,
) -> Result<(PetriNet, CpuNetHandles), CoreError> {
    let mut b = NetBuilder::new();
    let p0 = b.place("P0", 1);
    let p1 = b.place("P1", 0);
    let cpu_buffer = b.place("CPU_Buffer", 0);
    let p6 = b.place("P6", 0);
    let stand_by = b.place("Stand_By", 1);
    let power_up = b.place("Power_Up", 0);
    let cpu_on = b.place("CPU_ON", 0);
    let idle = b.place("Idle", 1);
    let active = b.place("Active", 0);

    // AR: open-workload generator (step 1 of §4.2).
    let ar = b.exponential("AR", lambda);
    b.input_arc(p0, ar, 1);
    b.output_arc(ar, p1, 1);

    // T1: fan a generated job out to P0 (re-arm), P6 (power trigger) and the
    // buffer (step 2). Highest priority.
    let t1 = b.immediate("T1", 4, 1.0);
    b.input_arc(p1, t1, 1);
    b.output_arc(t1, p0, 1);
    b.output_arc(t1, p6, 1);
    b.output_arc(t1, cpu_buffer, 1);

    // T6: a trigger token meeting Stand_By starts the power-up (step 3); the
    // trigger token is put back so PUT can consume it.
    let t6 = b.immediate("T6", 3, 1.0);
    b.input_arc(p6, t6, 1);
    b.input_arc(stand_by, t6, 1);
    b.output_arc(t6, power_up, 1);
    b.output_arc(t6, p6, 1);

    // PUT: constant Power Up Delay (step 4).
    let put = b.deterministic("PUT", power_up_delay);
    b.input_arc(power_up, put, 1);
    b.input_arc(p6, put, 1);
    b.output_arc(put, cpu_on, 1);

    // T5: discard redundant triggers while the CPU is already on (step 7).
    let t5 = b.immediate("T5", 2, 1.0);
    b.input_arc(p6, t5, 1);
    b.input_arc(cpu_on, t5, 1);
    b.output_arc(t5, cpu_on, 1);

    // T2: start service when a buffered job meets an idle, powered CPU
    // (step 5).
    let t2 = b.immediate("T2", 1, 1.0);
    b.input_arc(cpu_buffer, t2, 1);
    b.input_arc(cpu_on, t2, 1);
    b.input_arc(idle, t2, 1);
    b.output_arc(t2, cpu_on, 1);
    b.output_arc(t2, active, 1);

    // SR: service (step 6) — exponential in the paper; any distribution
    // under the generalized builder. SR is never disabled mid-service
    // (Active only drains through SR), so the race policy is irrelevant.
    let sr = b.transition("SR", wsnem_petri::TransitionKind::timed(service));
    b.input_arc(active, sr, 1);
    b.output_arc(sr, idle, 1);

    // PDT: constant Power Down Threshold with inverse-logic (inhibitor) arcs
    // from Active and CPU_Buffer (step 9). Race-resample semantics make any
    // arrival reset the countdown.
    let pdt = b.deterministic("PDT", power_down_threshold);
    b.input_arc(cpu_on, pdt, 1);
    b.inhibitor_arc(active, pdt, 1);
    b.inhibitor_arc(cpu_buffer, pdt, 1);
    b.output_arc(pdt, stand_by, 1);

    let net = b.build()?;
    Ok((
        net,
        CpuNetHandles {
            p0,
            p1,
            cpu_buffer,
            p6,
            stand_by,
            power_up,
            cpu_on,
            idle,
            active,
        },
    ))
}

/// The four state-indicator rewards in canonical order
/// `[standby, powerup, idle, active]`.
pub fn state_rewards(h: &CpuNetHandles) -> Vec<Reward> {
    let (sb, pu, on, ac) = (h.stand_by, h.power_up, h.cpu_on, h.active);
    vec![
        Reward::indicator("standby", move |m| m.tokens(sb) >= 1),
        Reward::indicator("powerup", move |m| m.tokens(pu) >= 1),
        Reward::indicator("idle", move |m| m.tokens(on) >= 1 && m.tokens(ac) == 0),
        Reward::indicator("active", move |m| m.tokens(ac) >= 1),
    ]
}

/// Paper §4.2: the EDSPN model evaluated by replicated token-game
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PetriCpuModel {
    params: CpuModelParams,
    threads: Option<usize>,
    /// `None` = exponential service at `params.mu` (the paper's net).
    service: Option<Dist>,
}

impl PetriCpuModel {
    /// Wrap the shared parameters (replications spread over all cores).
    pub fn new(params: CpuModelParams) -> Self {
        Self {
            params,
            threads: None,
            service: None,
        }
    }

    /// Pin the number of worker threads (e.g. `Some(1)` inside an outer
    /// parallel sweep).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Replace the service-time distribution of the `SR` transition
    /// (`None` = exponential at `params.mu`).
    pub fn with_service(mut self, service: Option<Dist>) -> Self {
        self.service = service;
        self
    }

    /// The parameters.
    pub fn params(&self) -> CpuModelParams {
        self.params
    }

    /// Build the underlying net.
    pub fn net(&self) -> Result<(PetriNet, CpuNetHandles), CoreError> {
        self.params.validate()?;
        build_cpu_edspn_with_service(
            self.params.lambda,
            self.service.unwrap_or(Dist::Exponential {
                rate: self.params.mu,
            }),
            self.params.power_down_threshold,
            self.params.power_up_delay,
        )
    }
}

impl CpuModel for PetriCpuModel {
    fn kind(&self) -> BackendId {
        BackendId::PetriNet
    }

    fn evaluate(&self) -> Result<ModelEvaluation, CoreError> {
        let start = Instant::now();
        let (net, handles) = self.net()?;
        let rewards = state_rewards(&handles);
        let cfg = SimConfig {
            horizon: self.params.horizon,
            warmup: self.params.warmup,
            ..SimConfig::default()
        };
        let summary = simulate_replications(
            &net,
            &cfg,
            &rewards,
            self.params.replications,
            self.params.master_seed,
            self.threads,
        )?;
        let fractions = StateFractions::new(
            summary.reward_mean(0),
            summary.reward_mean(1),
            summary.reward_mean(2),
            summary.reward_mean(3),
        );
        // Mean jobs in system = buffered + in service.
        let buffer_idx = handles.cpu_buffer.index();
        let active_idx = handles.active.index();
        let mean_jobs = summary.place_mean(buffer_idx) + summary.place_mean(active_idx);
        Ok(ModelEvaluation {
            kind: BackendId::PetriNet,
            fractions,
            mean_jobs: Some(mean_jobs),
            mean_latency: Some(mean_jobs / self.params.lambda), // Little's law
            eval_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

/// The registry solver for [`BackendId::PetriNet`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PetriSolver;

impl CpuSolver for PetriSolver {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            id: BackendId::PetriNet,
            analytic: false,
            ground_truth: false,
            assumes_poisson: true,
            supports_service_dist: true,
            provides_mean_jobs: true,
            provides_latency: true,
            uses_seed: true,
            requires_positive_delays: false,
            cost_rank: 3,
        }
    }

    fn solve(
        &self,
        params: &CpuModelParams,
        opts: &EvalOptions,
    ) -> Result<ModelEvaluation, CoreError> {
        let params = opts.apply(*params);
        opts.service.validate(params.mu)?;
        let service = (!opts.service.is_exponential()).then(|| opts.service.to_dist(params.mu));
        PetriCpuModel::new(params)
            .with_threads(opts.threads)
            .with_service(service)
            .evaluate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsnem_petri::analysis::p_semiflows;
    use wsnem_petri::TransitionKind;

    fn paper_net() -> (PetriNet, CpuNetHandles) {
        build_cpu_edspn(1.0, 10.0, 0.5, 0.001).unwrap()
    }

    #[test]
    fn structure_matches_table1() {
        let (net, _) = paper_net();
        assert_eq!(net.n_places(), 9);
        assert_eq!(net.n_transitions(), 8);
        // Table 1 kinds and priorities.
        let kind = |n: &str| net.kind(net.find_transition(n).unwrap());
        assert!(matches!(kind("AR"), TransitionKind::Timed { dist, .. }
            if dist.is_exponential()));
        assert!(matches!(kind("SR"), TransitionKind::Timed { dist, .. }
            if dist.is_exponential()));
        assert!(matches!(kind("PUT"), TransitionKind::Timed { dist, .. }
            if dist.is_deterministic()));
        assert!(matches!(kind("PDT"), TransitionKind::Timed { dist, .. }
            if dist.is_deterministic()));
        for (name, pri) in [("T1", 4u8), ("T6", 3), ("T5", 2), ("T2", 1)] {
            assert!(
                matches!(kind(name), TransitionKind::Immediate { priority, .. }
                    if priority == pri),
                "{name} priority"
            );
        }
        // PDT carries the two inverse-logic arcs of Fig. 3.
        let pdt = net.find_transition("PDT").unwrap();
        let inhibs: Vec<_> = net.inhibitors(pdt).collect();
        assert_eq!(inhibs.len(), 2);
    }

    #[test]
    fn invariants_of_fig3() {
        let (net, h) = paper_net();
        let inv = p_semiflows(&net).unwrap();
        // Power automaton: Stand_By + Power_Up + CPU_ON = 1.
        assert!(
            inv.iter().any(|x| {
                x[h.stand_by.index()] == 1
                    && x[h.power_up.index()] == 1
                    && x[h.cpu_on.index()] == 1
                    && x.iter().sum::<u64>() == 3
            }),
            "power-automaton invariant missing: {inv:?}"
        );
        // Service unit: Idle + Active = 1.
        assert!(
            inv.iter().any(|x| {
                x[h.idle.index()] == 1 && x[h.active.index()] == 1 && x.iter().sum::<u64>() == 2
            }),
            "service-unit invariant missing: {inv:?}"
        );
        // Workload generator: P0 + P1 = 1.
        assert!(
            inv.iter().any(|x| {
                x[h.p0.index()] == 1 && x[h.p1.index()] == 1 && x.iter().sum::<u64>() == 2
            }),
            "generator invariant missing: {inv:?}"
        );
    }

    #[test]
    fn state_rewards_are_exclusive_and_exhaustive() {
        // On every reachable tangible marking the four indicators sum to 1.
        // Drive the net for a while and spot-check at the final marking.
        use wsnem_petri::{simulate, SimConfig};
        use wsnem_stats::rng::Xoshiro256PlusPlus;
        let (net, h) = paper_net();
        let rewards = state_rewards(&h);
        for seed in 0..10u64 {
            let mut rng = Xoshiro256PlusPlus::new(seed);
            let out = simulate(&net, &SimConfig::for_horizon(200.0), &rewards, &mut rng).unwrap();
            let m = &out.final_marking;
            let total: f64 = rewards.iter().map(|r| r.eval(m)).sum();
            assert_eq!(total, 1.0, "marking {m} classifies ambiguously");
            // And their time averages partition the horizon.
            let s: f64 = out.reward_means.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "reward means sum to {s}");
        }
    }

    #[test]
    fn evaluation_normalizes_and_matches_markov_at_tiny_d() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(8)
            .with_horizon(3000.0)
            .with_warmup(100.0);
        let pn = PetriCpuModel::new(params).evaluate().unwrap();
        assert_eq!(pn.kind, BackendId::PetriNet);
        assert!(pn.fractions.is_normalized(1e-6), "{:?}", pn.fractions);
        let markov = crate::MarkovCpuModel::new(params).evaluate().unwrap();
        let delta = pn.fractions.mean_abs_delta_pct(&markov.fractions);
        assert!(delta < 1.5, "Δ = {delta} percentage points");
        assert!(pn.mean_jobs.unwrap() > 0.0);
    }

    #[test]
    fn utilization_stays_near_rho_even_for_huge_d() {
        // The PN (like the DES, unlike the Markov approximation) keeps
        // utilization ≈ ρ at D = 10 s — the paper's Table 4 point.
        let params = CpuModelParams::paper_defaults()
            .with_power_up_delay(10.0)
            .with_replications(6)
            .with_horizon(5000.0)
            .with_warmup(500.0);
        let pn = PetriCpuModel::new(params).evaluate().unwrap();
        assert!(
            (pn.fractions.active - 0.1).abs() < 0.02,
            "active = {}",
            pn.fractions.active
        );
        assert!(
            pn.fractions.powerup > 0.2,
            "powerup = {}",
            pn.fractions.powerup
        );
    }

    #[test]
    fn deterministic_under_threads() {
        let params = CpuModelParams::paper_defaults()
            .with_replications(6)
            .with_horizon(300.0);
        let a = PetriCpuModel::new(params)
            .with_threads(Some(1))
            .evaluate()
            .unwrap();
        let b = PetriCpuModel::new(params)
            .with_threads(Some(3))
            .evaluate()
            .unwrap();
        assert_eq!(a.fractions, b.fractions);
    }

    #[test]
    fn net_reachability_is_bounded_except_buffer() {
        // With the buffer and P6 capped, exploration terminates: the control
        // skeleton is finite. (Full net is unbounded in CPU_Buffer only.)
        use wsnem_petri::analysis::{explore, ReachOptions};
        let (net, h) = paper_net();
        let g = explore(
            &net,
            ReachOptions {
                max_markings: 200_000,
                max_tokens: 12,
            },
        );
        // The open workload grows CPU_Buffer beyond any bound eventually.
        match g {
            Err(wsnem_petri::PetriError::Unbounded { place, .. }) => {
                assert!(
                    place == "CPU_Buffer" || place == "P6",
                    "unbounded at {place}"
                );
            }
            Ok(g) => {
                // If exploration completed within 12 tokens, invariant places
                // must never exceed 1 token.
                for m in &g.markings {
                    assert!(m.tokens(h.stand_by) <= 1);
                    assert!(m.tokens(h.idle) <= 1);
                    assert!(m.tokens(h.cpu_on) <= 1);
                }
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
